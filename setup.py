"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` (PEP 660) needs ``wheel``, which is unavailable in
this offline environment; ``python setup.py develop`` installs the same
editable egg-link without it.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
