"""Tests for forest, linear, and baseline regressors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    DecisionTreeRegressor,
    LinearRegression,
    MeanPredictor,
    RandomForestRegressor,
    RidgeRegression,
    mean_absolute_error,
)


def _data(n=500, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    Y = np.column_stack([2 * X[:, 0] - X[:, 1], np.abs(X[:, 2])])
    return X, Y + 0.05 * rng.normal(size=Y.shape)


class TestDecisionTree:
    def test_fit_predict(self):
        X, Y = _data()
        m = DecisionTreeRegressor(max_depth=8).fit(X, Y)
        assert mean_absolute_error(Y, m.predict(X)) < 0.25

    def test_importances_normalized(self):
        X, Y = _data()
        m = DecisionTreeRegressor(max_depth=6).fit(X, Y)
        assert m.feature_importances().sum() == pytest.approx(1.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((1, 4)))

    def test_single_output(self):
        X, Y = _data()
        m = DecisionTreeRegressor().fit(X, Y[:, 0])
        assert m.predict(X).shape == (len(X), 1)


class TestRandomForest:
    def test_beats_single_tree_out_of_sample(self):
        X, Y = _data(n=800)
        Xtr, Ytr, Xte, Yte = X[:600], Y[:600], X[600:], Y[600:]
        tree = DecisionTreeRegressor(max_depth=12).fit(Xtr, Ytr)
        forest = RandomForestRegressor(
            n_estimators=30, max_depth=12, random_state=0
        ).fit(Xtr, Ytr)
        assert mean_absolute_error(Yte, forest.predict(Xte)) <= \
            mean_absolute_error(Yte, tree.predict(Xte)) + 0.01

    def test_deterministic(self):
        X, Y = _data()
        p1 = RandomForestRegressor(n_estimators=5, random_state=3).fit(X, Y).predict(X)
        p2 = RandomForestRegressor(n_estimators=5, random_state=3).fit(X, Y).predict(X)
        np.testing.assert_array_equal(p1, p2)

    def test_no_bootstrap_trees_identical(self):
        X, Y = _data()
        m = RandomForestRegressor(
            n_estimators=3, bootstrap=False, max_features=1.0, random_state=0
        ).fit(X, Y)
        p0 = m.trees_[0].predict_binned(m.binner_.transform(X))
        p1 = m.trees_[1].predict_binned(m.binner_.transform(X))
        np.testing.assert_array_equal(p0, p1)

    def test_max_features(self):
        X, Y = _data()
        m = RandomForestRegressor(
            n_estimators=10, max_features=0.5, random_state=0
        ).fit(X, Y)
        assert mean_absolute_error(Y, m.predict(X)) < 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            RandomForestRegressor(max_features=0.0)

    def test_importances(self):
        X, Y = _data()
        m = RandomForestRegressor(n_estimators=5, random_state=0).fit(X, Y)
        imp = m.feature_importances()
        assert imp.shape == (4,)
        assert imp.sum() == pytest.approx(1.0)


class TestLinear:
    def test_exact_on_linear_data(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        W = np.array([[1.0, -2.0], [0.5, 0.0], [0.0, 3.0]])
        Y = X @ W + np.array([5.0, -1.0])
        m = LinearRegression().fit(X, Y)
        np.testing.assert_allclose(m.predict(X), Y, atol=1e-8)
        np.testing.assert_allclose(m.coef_, W, atol=1e-8)

    def test_1d_target(self):
        X = np.array([[0.0], [1.0], [2.0]])
        m = LinearRegression().fit(X, np.array([1.0, 3.0, 5.0]))
        assert m.predict(np.array([[3.0]]))[0, 0] == pytest.approx(7.0)

    def test_rank_deficient_does_not_crash(self):
        X = np.ones((10, 3))  # constant features
        y = np.arange(10.0)
        m = LinearRegression().fit(X, y)
        assert np.isfinite(m.predict(X)).all()

    def test_feature_count_mismatch_raises(self):
        m = LinearRegression().fit(np.zeros((5, 2)), np.zeros(5))
        with pytest.raises(ValueError):
            m.predict(np.zeros((5, 3)))

    def test_ridge_shrinks_towards_zero(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 5))
        y = X[:, 0] * 10
        ols = LinearRegression().fit(X, y)
        ridge = RidgeRegression(alpha=1000.0).fit(X, y)
        assert np.abs(ridge.coef_).sum() < np.abs(ols.coef_).sum()

    def test_ridge_alpha_zero_matches_ols(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(60, 3))
        Y = rng.normal(size=(60, 2))
        np.testing.assert_allclose(
            RidgeRegression(alpha=0.0).fit(X, Y).predict(X),
            LinearRegression().fit(X, Y).predict(X),
            atol=1e-8,
        )

    def test_ridge_negative_alpha(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)


class TestMeanPredictor:
    def test_predicts_training_mean(self):
        X, Y = _data()
        m = MeanPredictor().fit(X, Y)
        pred = m.predict(X[:7])
        np.testing.assert_allclose(pred, np.tile(Y.mean(axis=0), (7, 1)))

    def test_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MeanPredictor().predict(np.zeros((1, 2)))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MeanPredictor().fit(np.zeros((3, 2)), np.zeros(4))


@given(seed=st.integers(0, 5000), alpha=st.floats(0.01, 100))
@settings(max_examples=25, deadline=None)
def test_property_ridge_prediction_finite(seed, alpha):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(30, 4))
    Y = rng.normal(size=(30, 2))
    m = RidgeRegression(alpha=alpha).fit(X, Y)
    assert np.isfinite(m.predict(X)).all()


@given(seed=st.integers(0, 5000))
@settings(max_examples=25, deadline=None)
def test_property_forest_prediction_within_target_range(seed):
    """Bagged means of means can never exceed the target envelope."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(80, 3))
    y = rng.normal(size=80)
    m = RandomForestRegressor(n_estimators=5, max_depth=4,
                              random_state=seed).fit(X, y)
    pred = m.predict(X)[:, 0]
    assert pred.min() >= y.min() - 1e-9
    assert pred.max() <= y.max() + 1e-9
