"""Flat vectorized ensemble inference must match per-tree traversal exactly.

:class:`repro.ml.tree.FlatEnsemble` stacks every tree of a model into
one struct-of-arrays and routes all (tree, row) states level by level.
Because routing decisions are integer bin comparisons and leaf values
are gathered (not recomputed), the result must be *bit-identical* —
``np.array_equal``, not ``allclose`` — to running each tree's own
``predict_binned`` and combining in the original accumulation order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.boosting import GradientBoostedTrees
from repro.ml.forest import DecisionTreeRegressor, RandomForestRegressor
from repro.ml.serialization import model_from_dict, model_to_dict
from repro.ml.tree import FlatEnsemble


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(600, 9))
    Y = np.stack([
        X[:, 0] * 2 + np.sin(X[:, 1]),
        X[:, 2] ** 2 - X[:, 3],
        rng.normal(size=600),
    ], axis=1)
    return X, Y


def _gbt_reference_predict(gbt, Xb):
    """The pre-optimization per-tree accumulation, reproduced inline."""
    pred = np.tile(gbt.base_score_, (Xb.shape[0], 1))
    for round_trees in gbt.trees_:
        if len(round_trees) == 1 and gbt.multi_strategy == "multi_output_tree":
            pred += round_trees[0].predict_binned(Xb)
        else:
            for out, tree in enumerate(round_trees):
                pred[:, out] += tree.predict_binned(Xb)[:, 0]
    return pred


class TestFlatEnsemble:
    def test_leaves_match_per_tree_traversal(self, data):
        X, Y = data
        rf = RandomForestRegressor(n_estimators=12, max_depth=7,
                                   random_state=0).fit(X, Y)
        Xb = rf.binner_.transform(X)
        flat = FlatEnsemble(rf.trees_)
        leaves = flat.predict_leaves(Xb)
        assert leaves.shape == (len(rf.trees_), X.shape[0])
        # Gathered values == each tree's own traversal, bit for bit.
        for ti, tree in enumerate(rf.trees_):
            assert np.array_equal(flat.values[leaves[ti]],
                                  tree.predict_binned(Xb))

    def test_single_node_trees(self, data):
        X, Y = data
        # Depth-0 trees are pure leaves: routing must park at the root.
        rf = RandomForestRegressor(n_estimators=3, max_depth=0,
                                   random_state=1).fit(X, Y)
        Xb = rf.binner_.transform(X)
        flat = FlatEnsemble(rf.trees_)
        assert flat.max_depth == 0
        leaves = flat.predict_leaves(Xb)
        assert np.array_equal(np.unique(leaves), np.asarray(flat.roots))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FlatEnsemble([])

    def test_mixed_output_width_rejected(self, data):
        X, Y = data
        a = RandomForestRegressor(n_estimators=1, random_state=0).fit(X, Y)
        b = RandomForestRegressor(n_estimators=1, random_state=0).fit(
            X, Y[:, 0])
        with pytest.raises(ValueError):
            FlatEnsemble([a.trees_[0], b.trees_[0]])


class TestForestFlatPredict:
    def test_per_tree_exact(self, data):
        X, Y = data
        rf = RandomForestRegressor(n_estimators=15, max_depth=8,
                                   random_state=3).fit(X, Y)
        Xb = rf.binner_.transform(X)
        stacked = np.stack([t.predict_binned(Xb) for t in rf.trees_])
        assert np.array_equal(rf.predict_binned_per_tree(Xb), stacked)
        assert np.array_equal(rf.predict_per_tree(X), stacked)
        assert np.array_equal(rf.predict(X), stacked.mean(axis=0))

    def test_flat_cache_invalidated_on_tree_swap(self, data):
        X, Y = data
        rf = RandomForestRegressor(n_estimators=6, max_depth=5,
                                   random_state=4).fit(X, Y)
        first = rf.predict(X)
        assert rf._flat_cache is not None
        # Truncating the ensemble must invalidate the cached stack.
        rf.trees_ = rf.trees_[:2]
        truncated = rf.predict(X)
        expected = np.stack(
            [t.predict_binned(rf.binner_.transform(X)) for t in rf.trees_]
        ).mean(axis=0)
        assert np.array_equal(truncated, expected)
        assert not np.array_equal(first, truncated)

    def test_decision_tree_predict_binned(self, data):
        X, Y = data
        dt = DecisionTreeRegressor(max_depth=6).fit(X, Y)
        Xb = dt.binner_.transform(X)
        assert np.array_equal(dt.predict_binned(Xb), dt.predict(X))


class TestBoostingFlatPredict:
    @pytest.mark.parametrize("mode", ("per_output", "multi_output_tree"))
    def test_exact_vs_reference_accumulation(self, data, mode):
        X, Y = data
        gbt = GradientBoostedTrees(n_estimators=25, max_depth=4,
                                   multi_strategy=mode,
                                   random_state=0).fit(X, Y)
        Xb = gbt.binner_.transform(X)
        assert np.array_equal(gbt.predict_binned(Xb),
                              _gbt_reference_predict(gbt, Xb))
        assert np.array_equal(gbt.predict(X),
                              _gbt_reference_predict(gbt, Xb))

    def test_subsampled_model_exact(self, data):
        X, Y = data
        gbt = GradientBoostedTrees(n_estimators=20, max_depth=5,
                                   subsample=0.7, colsample_bytree=0.6,
                                   random_state=2).fit(X, Y)
        Xb = gbt.binner_.transform(X)
        assert np.array_equal(gbt.predict_binned(Xb),
                              _gbt_reference_predict(gbt, Xb))

    def test_serialization_roundtrip_exact(self, data):
        X, Y = data
        for model in (
            GradientBoostedTrees(n_estimators=10, max_depth=4,
                                 random_state=5).fit(X, Y),
            RandomForestRegressor(n_estimators=8, max_depth=6,
                                  random_state=5).fit(X, Y),
        ):
            restored = model_from_dict(model_to_dict(model))
            assert np.array_equal(restored.predict(X), model.predict(X))


class TestTreeNodeStatCaches:
    def test_n_leaves_and_depth_cached_consistent(self, data):
        X, Y = data
        rf = RandomForestRegressor(n_estimators=5, max_depth=7,
                                   random_state=6).fit(X, Y)
        for tree in rf.trees_:
            # Recompute from the raw arrays and compare to the cached
            # construction-time values.
            assert tree.n_leaves == int(np.count_nonzero(tree._feat < 0))
            assert tree.n_leaves == tree._n_leaves
            assert tree.max_depth_reached == tree._max_depth_reached
            assert 0 <= tree.max_depth_reached <= 7
