"""Tests for evaluation metrics (MAE, MSE, R2, SOS)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    same_order_score,
)


class TestMAE:
    def test_known_value(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 4.0]) == pytest.approx(1.5)

    def test_zero_for_exact(self):
        y = np.random.default_rng(0).normal(size=(10, 3))
        assert mean_absolute_error(y, y) == 0.0

    def test_multi_output_averages_components(self):
        y = np.zeros((2, 2))
        p = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert mean_absolute_error(y, p) == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_error(np.zeros(3), np.zeros(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_absolute_error(np.zeros((0, 2)), np.zeros((0, 2)))


class TestMSEAndR2:
    def test_mse_known(self):
        assert mean_squared_error([0.0, 0.0], [1.0, 3.0]) == pytest.approx(5.0)

    def test_r2_perfect(self):
        y = np.arange(10.0)
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_r2_mean_prediction_is_zero(self):
        y = np.arange(10.0)
        p = np.full(10, y.mean())
        assert r2_score(y, p) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        y = np.full(5, 2.0)
        assert r2_score(y, y) == pytest.approx(1.0)
        assert r2_score(y, y + 1.0) == pytest.approx(0.0)


class TestSOS:
    def test_identical_orders(self):
        y = np.array([[1.0, 0.5, 2.0]])
        p = np.array([[0.9, 0.1, 5.0]])  # same ranking
        assert same_order_score(y, p) == 1.0

    def test_swapped_order(self):
        y = np.array([[1.0, 2.0]])
        p = np.array([[2.0, 1.0]])
        assert same_order_score(y, p) == 0.0

    def test_fractional(self):
        y = np.array([[1.0, 2.0], [1.0, 2.0]])
        p = np.array([[1.5, 2.5], [3.0, 2.0]])
        assert same_order_score(y, p) == pytest.approx(0.5)

    def test_paper_example_vector(self):
        # RPV [1.0, 0.8, 2.1] (times 10/8/21 rel. X): any prediction
        # preserving Y < X < Z counts as same order.
        y = np.array([[1.0, 0.8, 2.1]])
        p = np.array([[0.95, 0.7, 3.0]])
        assert same_order_score(y, p) == 1.0

    def test_requires_vector_targets(self):
        with pytest.raises(ValueError):
            same_order_score(np.zeros(5), np.zeros(5))

    def test_ties_resolve_consistently(self):
        y = np.array([[1.0, 1.0, 2.0]])
        assert same_order_score(y, y) == 1.0


@given(
    st.lists(
        st.lists(st.floats(-1e6, 1e6), min_size=3, max_size=3),
        min_size=1, max_size=20,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_mae_symmetry_and_nonnegativity(rows):
    a = np.array(rows)
    b = np.zeros_like(a)
    assert mean_absolute_error(a, b) == mean_absolute_error(b, a) >= 0


@given(st.integers(0, 5000))
@settings(max_examples=30, deadline=None)
def test_property_sos_reflexive(seed):
    y = np.random.default_rng(seed).normal(size=(10, 4))
    assert same_order_score(y, y) == 1.0


@given(st.integers(0, 5000), st.floats(0.1, 10.0))
@settings(max_examples=30, deadline=None)
def test_property_sos_invariant_to_positive_scaling(seed, scale):
    """Rank order is unchanged by positive scaling of predictions."""
    rng = np.random.default_rng(seed)
    y = rng.normal(size=(10, 4))
    p = rng.normal(size=(10, 4))
    assert same_order_score(y, p) == same_order_score(y, p * scale)


@given(st.integers(0, 5000))
@settings(max_examples=30, deadline=None)
def test_property_mae_le_sqrt_mse(seed):
    """Jensen: MAE <= sqrt(MSE)."""
    rng = np.random.default_rng(seed)
    y = rng.normal(size=(20, 3))
    p = rng.normal(size=(20, 3))
    assert mean_absolute_error(y, p) <= np.sqrt(mean_squared_error(y, p)) + 1e-12
