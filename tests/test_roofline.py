"""Tests for roofline analysis utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import APPLICATIONS, generate_inputs
from repro.arch import CORONA, LASSEN, QUARTZ, RUBY
from repro.perfsim import (
    Roofline,
    app_operational_intensity,
    attainable_gflops,
    classify_bound,
    cpu_roofline,
    gpu_roofline,
)
from repro.perfsim.config import make_run_config


class TestRoofline:
    def test_ridge_point(self):
        r = Roofline("x", peak_gflops=100.0, bandwidth_gbs=50.0)
        assert r.ridge_point == pytest.approx(2.0)

    def test_attainable_below_and_above_ridge(self):
        r = Roofline("x", peak_gflops=100.0, bandwidth_gbs=50.0)
        assert r.attainable(1.0) == pytest.approx(50.0)   # memory bound
        assert r.attainable(10.0) == pytest.approx(100.0)  # compute bound

    def test_attainable_invalid_intensity(self):
        r = Roofline("x", 1.0, 1.0)
        with pytest.raises(ValueError):
            r.attainable(0.0)

    def test_vectorized_curve_monotone(self):
        r = cpu_roofline(QUARTZ)
        xs = np.logspace(-2, 2, 50)
        ys = attainable_gflops(r, xs)
        assert (np.diff(ys) >= -1e-9).all()
        assert ys[-1] == pytest.approx(r.peak_gflops)

    def test_cpu_rooflines_ordered(self):
        # Ruby's AVX-512 node out-peaks Quartz's AVX2 node.
        assert cpu_roofline(RUBY).peak_gflops > cpu_roofline(QUARTZ).peak_gflops

    def test_gpu_roofline_dwarfs_cpu(self):
        for machine in (LASSEN, CORONA):
            assert gpu_roofline(machine, "sp").peak_gflops > \
                10 * cpu_roofline(machine, "sp").peak_gflops

    def test_gpu_roofline_requires_gpu(self):
        with pytest.raises(ValueError):
            gpu_roofline(QUARTZ)

    def test_precision_validation(self):
        with pytest.raises(ValueError):
            cpu_roofline(QUARTZ, "fp16")


class TestOperationalIntensity:
    def test_dense_codes_higher_than_graph_codes(self):
        dense = app_operational_intensity(APPLICATIONS["Nekbone"])
        graph = app_operational_intensity(APPLICATIONS["miniVite"])
        assert dense > graph

    def test_positive_for_all_apps(self):
        for app in APPLICATIONS.values():
            assert app_operational_intensity(app) > 0


class TestClassifyBound:
    def test_shares_sum_to_one(self):
        app = APPLICATIONS["SW4lite"]
        inp = generate_inputs(app, 1, seed=0)[0]
        config = make_run_config(app, QUARTZ, "1node")
        c = classify_bound(app, inp, QUARTZ, config)
        assert sum(c.shares.values()) == pytest.approx(1.0)
        assert c.bound in c.shares

    def test_comm_benchmark_is_comm_bound_at_two_nodes(self):
        app = APPLICATIONS["Ember"]
        inp = generate_inputs(app, 1, seed=0)[0]
        config = make_run_config(app, QUARTZ, "2node")
        c = classify_bound(app, inp, QUARTZ, config)
        assert c.bound == "communication"

    def test_gpu_run_classified_on_device(self):
        app = APPLICATIONS["CANDLE"]
        inp = generate_inputs(app, 1, seed=0)[0]
        config = make_run_config(app, LASSEN, "1node")
        c = classify_bound(app, inp, LASSEN, config)
        assert set(c.shares) == {"compute", "bandwidth", "launch"}

    def test_single_core_not_comm_bound(self):
        app = APPLICATIONS["Ember"]
        inp = generate_inputs(app, 1, seed=0)[0]
        config = make_run_config(app, QUARTZ, "1core")
        c = classify_bound(app, inp, QUARTZ, config)
        assert c.shares["communication"] == 0.0
