"""Tests for the analytical performance simulator.

These assert *directional physics* — the cross-architecture structure
the ML model is supposed to learn — rather than absolute times.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import APPLICATIONS, generate_inputs
from repro.arch import CORONA, LASSEN, MACHINES, QUARTZ, RUBY
from repro.perfsim import (
    NoiseModel,
    RunConfig,
    SCALES,
    hierarchy_miss_ratios,
    miss_ratio,
    run_configs_for,
    simulate_run,
)
from repro.perfsim.config import make_run_config
from repro.perfsim.cpu import simulate_cpu
from repro.perfsim.gpu import simulate_gpu


def _input(app_name: str, seed: int = 0):
    app = APPLICATIONS[app_name]
    return app, generate_inputs(app, 1, seed=seed)[0]


def _time(app, inp, machine, scale, trial=0, stack_effects=True):
    config = make_run_config(app, machine, scale)
    return simulate_run(app, inp, machine, config, seed=0, trial=trial,
                        stack_effects=stack_effects).time_seconds


class TestCacheModel:
    def test_fits_in_cache_small_miss(self):
        assert miss_ratio(16 * 1024, 32 * 1024) < 0.05

    def test_monotone_in_working_set(self):
        cache = 1 << 20
        ratios = [miss_ratio(ws, cache) for ws in (1e5, 1e6, 1e7, 1e9)]
        assert ratios == sorted(ratios)

    def test_monotone_in_cache_size(self):
        ws = 1e9
        ratios = [miss_ratio(ws, c) for c in (1e5, 1e7, 1e9, 1e10)]
        assert ratios == sorted(ratios, reverse=True)

    def test_irregularity_increases_misses(self):
        assert miss_ratio(1e9, 1e6, 3.0) > miss_ratio(1e9, 1e6, 0.5)

    def test_bounded(self):
        assert 0.002 <= miss_ratio(1e12, 1e3, 5.0) <= 0.98

    def test_hierarchy_monotone(self):
        g1, g2, g3 = hierarchy_miss_ratios(1e8, 1e9, 32e3, 1e6, 4e7)
        assert g1 >= g2 >= g3 > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            miss_ratio(0, 100)
        with pytest.raises(ValueError):
            miss_ratio(100, 100, irregularity=0)


class TestRunConfig:
    def test_three_scales(self):
        app = APPLICATIONS["AMG"]
        configs = run_configs_for(app, QUARTZ)
        assert [c.scale for c in configs] == list(SCALES)

    def test_one_core_config(self):
        app = APPLICATIONS["AMG"]  # GPU app
        c = make_run_config(app, LASSEN, "1core")
        assert c.cores == 1 and c.ranks == 1 and c.gpus == 1
        assert c.uses_gpu

    def test_one_node_gpu_ranks_match_gpus(self):
        app = APPLICATIONS["AMG"]
        c = make_run_config(app, CORONA, "1node")
        assert c.gpus == 8 and c.ranks == 8
        assert c.cores == 48

    def test_cpu_app_on_gpu_machine_is_cpu_run(self):
        app = APPLICATIONS["CoMD"]  # CPU-only
        c = make_run_config(app, LASSEN, "1node")
        assert not c.uses_gpu and c.gpus == 0
        assert c.ranks == 44

    def test_two_node_doubles(self):
        app = APPLICATIONS["CoMD"]
        c1 = make_run_config(app, RUBY, "1node")
        c2 = make_run_config(app, RUBY, "2node")
        assert c2.cores == 2 * c1.cores and c2.nodes == 2

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            make_run_config(APPLICATIONS["CoMD"], RUBY, "4node")

    def test_runconfig_validation(self):
        with pytest.raises(ValueError):
            RunConfig(scale="1core", nodes=0, cores=1, ranks=1, gpus=0,
                      uses_gpu=False)
        with pytest.raises(ValueError):
            RunConfig(scale="1core", nodes=1, cores=1, ranks=1, gpus=0,
                      uses_gpu=True)


class TestNoise:
    def test_runtime_factor_deterministic(self):
        a = NoiseModel("x", "y", seed=1).runtime_factor(0.1)
        b = NoiseModel("x", "y", seed=1).runtime_factor(0.1)
        assert a == b

    def test_zero_sigma_is_unity(self):
        assert NoiseModel("x", seed=0).runtime_factor(0.0) == 1.0

    def test_counter_bias_is_machine_specific(self):
        n = NoiseModel("r", seed=0)
        a = n.counter_factor("PAPI_BR_INS", "Quartz", 0.0)
        b = NoiseModel("r", seed=0).counter_factor("PAPI_BR_INS", "Ruby", 0.0)
        assert a != b
        assert 0.8 < a < 1.2

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel("x", seed=0).runtime_factor(-0.1)


class TestExecutionPhysics:
    def test_deterministic(self):
        app, inp = _input("AMG")
        assert _time(app, inp, QUARTZ, "1node") == _time(app, inp, QUARTZ, "1node")

    def test_trials_differ(self):
        app, inp = _input("AMG")
        assert _time(app, inp, QUARTZ, "1node", trial=0) != \
            _time(app, inp, QUARTZ, "1node", trial=1)

    def test_one_node_faster_than_one_core(self):
        for name in ("AMG", "CoMD", "Nekbone", "CANDLE"):
            app, inp = _input(name)
            assert _time(app, inp, QUARTZ, "1node") < \
                _time(app, inp, QUARTZ, "1core")

    def test_gpu_app_much_faster_on_gpu_machine_at_one_core(self):
        # 1 core + 1 V100 vs 1 Broadwell core: order-of-magnitude gap.
        app, inp = _input("CANDLE")
        assert _time(app, inp, QUARTZ, "1core") > \
            5 * _time(app, inp, LASSEN, "1core")

    def test_branchy_app_benefits_less_from_gpu(self):
        """GPU speedup of branchy XSBench < GPU speedup of dense CANDLE.

        Evaluated on the pure hardware model (stack_effects=False): the
        per-(app, machine) software-stack factor is an orthogonal effect
        that can mask single-pair physics comparisons.
        """
        xs_app, xs_inp = _input("XSBench")
        ca_app, ca_inp = _input("CANDLE")
        xs_speedup = _time(xs_app, xs_inp, QUARTZ, "1node", stack_effects=False) / \
            _time(xs_app, xs_inp, LASSEN, "1node", stack_effects=False)
        ca_speedup = _time(ca_app, ca_inp, QUARTZ, "1node", stack_effects=False) / \
            _time(ca_app, ca_inp, LASSEN, "1node", stack_effects=False)
        assert ca_speedup > xs_speedup

    def test_gpu_run_collects_gpu_counters(self):
        app, inp = _input("AMG")
        config = make_run_config(app, LASSEN, "1node")
        res = simulate_run(app, inp, LASSEN, config, seed=0)
        assert res.counts.from_gpu

    def test_cpu_only_app_collects_cpu_counters_everywhere(self):
        app, inp = _input("CoMD")
        for machine in MACHINES.values():
            config = make_run_config(app, machine, "1node")
            res = simulate_run(app, inp, machine, config, seed=0)
            assert not res.counts.from_gpu

    def test_counts_reflect_mix(self):
        app, inp = _input("SW4lite")
        config = make_run_config(app, QUARTZ, "1core")
        res = simulate_run(app, inp, QUARTZ, config, seed=0)
        c = res.counts
        assert c.branch / c.total_instructions == pytest.approx(
            inp.mix.branch
        )
        assert c.fp_dp > c.fp_sp  # fp64 stencil code

    def test_counts_scale_with_ranks(self):
        """Per-rank mean counters shrink as ranks increase."""
        app, inp = _input("CoMD")
        c1 = simulate_run(app, inp, QUARTZ,
                          make_run_config(app, QUARTZ, "1core"), seed=0).counts
        cn = simulate_run(app, inp, QUARTZ,
                          make_run_config(app, QUARTZ, "1node"), seed=0).counts
        assert cn.total_instructions < c1.total_instructions

    def test_l1_misses_exceed_l2_misses(self):
        app, inp = _input("miniFE")
        res = simulate_run(app, inp, QUARTZ,
                           make_run_config(app, QUARTZ, "1node"), seed=0)
        assert res.counts.l1_load_miss >= res.counts.l2_load_miss

    def test_python_stack_has_bigger_page_tables(self):
        ml_app, ml_inp = _input("CANDLE")
        c_app, c_inp = _input("CoMD")
        ml = simulate_run(ml_app, ml_inp, QUARTZ,
                          make_run_config(ml_app, QUARTZ, "1core"), seed=0)
        cc = simulate_run(c_app, c_inp, QUARTZ,
                          make_run_config(c_app, QUARTZ, "1core"), seed=0)
        assert ml.counts.ept_bytes > cc.counts.ept_bytes

    def test_comm_bound_app_scales_worst(self):
        """Ember's 2-node slowdown factor is the worst among apps."""
        def two_node_gain(name):
            app, inp = _input(name)
            return _time(app, inp, QUARTZ, "1node") / \
                _time(app, inp, QUARTZ, "2node")
        assert two_node_gain("Ember") < two_node_gain("Nekbone")

    def test_wrong_input_app_rejected(self):
        app, inp = _input("AMG")
        other = APPLICATIONS["CoMD"]
        with pytest.raises(ValueError):
            simulate_run(other, inp, QUARTZ,
                         make_run_config(other, QUARTZ, "1core"), seed=0)


class TestCPUModelDirect:
    def test_bandwidth_bound_detected(self):
        app = APPLICATIONS["SW4lite"]
        run = simulate_cpu(
            app, app.mix, QUARTZ, instructions=1e12,
            working_set=8e9, nodes=1, cores=36, ranks=36,
            io_bytes=0, comm_active=False,
        )
        assert run.time >= run.time_bandwidth

    def test_negative_instructions_rejected(self):
        app = APPLICATIONS["SW4lite"]
        with pytest.raises(ValueError):
            simulate_cpu(app, app.mix, QUARTZ, instructions=-1,
                         working_set=1e9, nodes=1, cores=1, ranks=1,
                         io_bytes=0, comm_active=False)

    def test_vector_machine_faster_on_dense_fp(self):
        app = APPLICATIONS["Nekbone"]  # vectorizable 0.9
        kwargs = dict(instructions=1e12, working_set=1.6e9, nodes=1,
                      io_bytes=0, comm_active=False)
        t_ruby = simulate_cpu(app, app.mix, RUBY, cores=56, ranks=56,
                              **kwargs).time
        t_quartz = simulate_cpu(app, app.mix, QUARTZ, cores=36, ranks=36,
                                **kwargs).time
        assert t_ruby < t_quartz


class TestGPUModelDirect:
    def test_divergence_penalty_grows_with_branching(self):
        xs = APPLICATIONS["XSBench"]
        ca = APPLICATIONS["CANDLE"]
        r_xs = simulate_gpu(xs, xs.mix, LASSEN, 1e12, 5e9, gpus=4,
                            size_scale=1.0)
        r_ca = simulate_gpu(ca, ca.mix, LASSEN, 1e12, 5e9, gpus=4,
                            size_scale=1.0)
        assert r_xs.divergence_factor > r_ca.divergence_factor

    def test_small_problems_underutilize(self):
        app = APPLICATIONS["CANDLE"]
        small = simulate_gpu(app, app.mix, LASSEN, 1e11, 1e8, gpus=4,
                             size_scale=0.1)
        big = simulate_gpu(app, app.mix, LASSEN, 1e11, 1e10, gpus=4,
                           size_scale=4.0)
        assert small.utilization < big.utilization

    def test_no_gpu_machine_rejected(self):
        app = APPLICATIONS["CANDLE"]
        with pytest.raises(ValueError):
            simulate_gpu(app, app.mix, QUARTZ, 1e10, 1e9, gpus=1,
                         size_scale=1.0)


@given(scale=st.sampled_from(list(SCALES)),
       app_name=st.sampled_from(sorted(APPLICATIONS)),
       trial=st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_property_times_positive_and_finite(scale, app_name, trial):
    app, inp = _input(app_name)
    for machine in MACHINES.values():
        config = make_run_config(app, machine, scale)
        res = simulate_run(app, inp, machine, config, seed=0, trial=trial)
        assert np.isfinite(res.time_seconds) and res.time_seconds > 0
        assert res.counts.total_instructions > 0


@given(size=st.floats(0.25, 8.0))
@settings(max_examples=20, deadline=None)
def test_property_bigger_inputs_run_longer(size):
    app = APPLICATIONS["CoMD"]
    from repro.apps.inputs import InputConfig
    small = InputConfig(app.name, "a", size_scale=size, mix=app.mix)
    large = InputConfig(app.name, "a", size_scale=size * 2, mix=app.mix)
    config = make_run_config(app, QUARTZ, "1node")
    t_small = simulate_run(app, small, QUARTZ, config, seed=0).time_seconds
    t_large = simulate_run(app, large, QUARTZ, config, seed=0).time_seconds
    assert t_large > t_small
