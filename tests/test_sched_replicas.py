"""Sharded simulation replicas: golden digests pin the ordered merge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.machines import SYSTEM_ORDER
from repro.sched import Job, ReplicaSpec, run_replicas, schedule_digest

STRATEGIES = ("round_robin", "random", "user_rr", "model")


def _jobs(n: int = 200, seed: int = 3) -> list[Job]:
    rng = np.random.default_rng(seed)
    jobs = []
    t = 0.0
    for i in range(n):
        t += float(rng.exponential(5.0))
        rpv = rng.uniform(0.5, 3.0, size=len(SYSTEM_ORDER))
        base = float(rng.uniform(20.0, 400.0))
        jobs.append(Job(
            job_id=i, app="CoMD", uses_gpu=bool(rng.integers(2)),
            nodes_required=int(rng.integers(1, 8)),
            runtimes={s: base * float(r)
                      for s, r in zip(SYSTEM_ORDER, rpv)},
            submit_time=t,
            predicted_rpv=rpv,
            true_rpv=rpv,
        ))
    return jobs


def test_sharded_equals_sequential_golden_digest():
    """workers=k replicas hash identically to the inline loop."""
    jobs = _jobs()
    specs = [ReplicaSpec(strategy=s, seed=11, label=s)
             for s in STRATEGIES]
    sequential = run_replicas(jobs, specs, workers=1)
    sharded = run_replicas(jobs, specs, workers=2)

    seq_digests = [schedule_digest(r) for r in sequential]
    shard_digests = [schedule_digest(r) for r in sharded]
    assert seq_digests == shard_digests
    # Results come back in spec order with labels intact — the merge is
    # ordered, not completion-ordered.
    for spec, result in zip(specs, sharded):
        assert result.strategy_name
        assert result.extra["replica_label"] == spec.label


def test_replica_digest_distinguishes_strategies():
    jobs = _jobs(120)
    specs = [ReplicaSpec(strategy=s, seed=11) for s in STRATEGIES]
    digests = [schedule_digest(r) for r in run_replicas(jobs, specs)]
    assert len(set(digests)) == len(digests)


def test_replica_digest_is_deterministic():
    jobs = _jobs(100)
    spec = ReplicaSpec(strategy="model", seed=5)
    a = run_replicas(jobs, [spec], workers=1)[0]
    b = run_replicas(jobs, [spec], workers=1)[0]
    assert schedule_digest(a) == schedule_digest(b)


def test_replica_spec_knobs_reach_the_scheduler():
    """Queue policy and node counts on the spec change the schedule."""
    jobs = _jobs(150)
    # A small cluster keeps a queue standing, so ordering policies bite.
    nodes = {m: 8 for m in SYSTEM_ORDER}
    base = ReplicaSpec(strategy="round_robin", seed=1, node_counts=nodes)
    sjf = ReplicaSpec(strategy="round_robin", seed=1, node_counts=nodes,
                      queue_policy="sjf")
    big = ReplicaSpec(strategy="round_robin", seed=1)
    results = run_replicas(jobs, [base, sjf, big], workers=1)
    digests = [schedule_digest(r) for r in results]
    assert digests[0] != digests[1]
    assert digests[0] != digests[2]


def test_replica_spec_is_hashable_and_frozen():
    spec = ReplicaSpec(strategy="model", seed=2)
    with pytest.raises(AttributeError):
        spec.seed = 3  # type: ignore[misc]
