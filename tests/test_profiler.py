"""Tests for counter schemas and the simulated profiler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import APPLICATIONS, generate_inputs
from repro.arch import CORONA, LASSEN, MACHINES, QUARTZ, RUBY
from repro.perfsim.config import make_run_config
from repro.perfsim.execution import simulate_run
from repro.perfsim.noise import NoiseModel
from repro.profiler import (
    Profile,
    load_profile,
    profile_run,
    save_profile,
    schema_for,
)
from repro.profiler.counters import (
    CANONICAL_FIELDS,
    RateMissRule,
    SumRule,
    TccSplitRule,
)


def _raw_counts(app_name="AMG", machine=QUARTZ, scale="1node"):
    app = APPLICATIONS[app_name]
    inp = generate_inputs(app, 1, seed=0)[0]
    config = make_run_config(app, machine, scale)
    return app, inp, config, simulate_run(app, inp, machine, config, seed=0)


class TestSchemas:
    def test_papi_names_on_cpu_systems(self):
        schema = schema_for(QUARTZ, from_gpu=False)
        names = schema.counter_names()
        assert "PAPI_BR_INS" in names
        assert "PAPI_TOT_INS" in names
        assert "bdw::ARITH" in names

    def test_arith_prefix_differs_per_cpu(self):
        assert "clx::ARITH" in schema_for(RUBY, False).counter_names()
        assert "pwr9::ARITH" in schema_for(LASSEN, False).counter_names()
        assert "zen2::ARITH" in schema_for(CORONA, False).counter_names()

    def test_cupti_names_on_lassen_gpu(self):
        names = schema_for(LASSEN, from_gpu=True).counter_names()
        assert "cf_executed" in names
        assert "inst_executed_global_loads" in names
        assert "flop_count_sp" in names
        assert "local_load_hit_rate" in names

    def test_rocprof_names_on_corona_gpu(self):
        names = schema_for(CORONA, from_gpu=True).counter_names()
        assert "TCC_MISS_sum" in names
        assert "TCC_EA_RDREQ" in names
        assert "SQ_INSTS_VALU_FP64" in names
        assert "MemUnitStalled" in names

    def test_gpu_schema_on_cpu_machine_rejected(self):
        with pytest.raises(ValueError):
            schema_for(QUARTZ, from_gpu=True)

    @pytest.mark.parametrize("machine,gpu", [
        (QUARTZ, False), (RUBY, False), (LASSEN, False), (CORONA, False),
        (LASSEN, True), (CORONA, True),
    ])
    def test_encode_decode_roundtrip(self, machine, gpu):
        """decode(encode(x)) recovers canonical fields up to noise/bias."""
        app_name = "AMG" if gpu else "CoMD"
        app, inp, config, res = _raw_counts(app_name, machine)
        schema = schema_for(machine, gpu and res.counts.from_gpu)
        noise = NoiseModel("t", seed=0)
        # Zero noise isolates the deterministic bias, bounded in [0.85, 1.18].
        encoded = schema.encode(res.counts, noise, sigma=0.0)
        decoded = schema.decode(encoded)
        for field in CANONICAL_FIELDS:
            truth = getattr(res.counts, field)
            if truth == 0:
                continue
            ratio = decoded[field] / truth
            assert 0.7 < ratio < 1.4, (field, ratio)

    def test_all_canonical_fields_covered(self):
        for machine, gpu in [(QUARTZ, False), (LASSEN, True), (CORONA, True)]:
            schema = schema_for(machine, gpu)
            decoded_fields = set(schema.rules)
            if schema.tcc:
                decoded_fields |= {"l2_load_miss", "l2_store_miss"}
            assert set(CANONICAL_FIELDS) <= decoded_fields


class TestRules:
    def test_sum_rule_shares_roundtrip(self):
        rule = SumRule("load", ("a", "b"), (0.7, 0.3))
        enc = rule.encode(100.0, lambda n, v: v)
        assert enc == {"a": 70.0, "b": 30.0}
        assert rule.decode(enc) == pytest.approx(100.0)

    def test_sum_rule_bad_shares(self):
        with pytest.raises(ValueError):
            SumRule("x", ("a", "b"), (0.5, 0.6))

    def test_rate_miss_rule_roundtrip(self):
        rule = RateMissRule("l1", "reqs", "hit_rate")
        enc = rule.encode(500.0, lambda n, v: v)
        assert rule.decode(enc) == pytest.approx(500.0)
        assert 0.55 <= enc["hit_rate"] <= 0.85

    def test_tcc_split_roundtrip(self):
        rule = TccSplitRule()
        enc = rule.encode(300.0, 100.0, lambda n, v: v)
        ld, st = rule.decode(enc)
        assert ld == pytest.approx(300.0)
        assert st == pytest.approx(100.0)

    def test_tcc_split_zero_requests(self):
        rule = TccSplitRule()
        assert rule.decode(
            {"TCC_MISS_sum": 0.0, "TCC_EA_RDREQ": 0.0, "TCC_EA_WRREQ": 0.0}
        ) == (0.0, 0.0)


class TestProfileRun:
    def test_deterministic(self):
        app, inp, config, _ = _raw_counts()
        p1 = profile_run(app, inp, QUARTZ, config, seed=0)
        p2 = profile_run(app, inp, QUARTZ, config, seed=0)
        assert p1.run_totals() == p2.run_totals()
        assert p1.meta == p2.meta

    def test_meta_fields(self):
        app, inp, config, _ = _raw_counts()
        p = profile_run(app, inp, QUARTZ, config, seed=0)
        assert p.meta["app"] == "AMG"
        assert p.meta["machine"] == "Quartz"
        assert p.meta["profiler"] == "papi"
        assert p.meta["time_seconds"] > 0

    def test_profiler_field_per_arch(self):
        app = APPLICATIONS["AMG"]
        inp = generate_inputs(app, 1, seed=0)[0]
        for machine, expect in [(LASSEN, "cupti"), (CORONA, "rocprof")]:
            config = make_run_config(app, machine, "1node")
            p = profile_run(app, inp, machine, config, seed=0)
            assert p.meta["profiler"] == expect

    def test_counters_attributed_to_kernels(self):
        app, inp, config, _ = _raw_counts()
        p = profile_run(app, inp, QUARTZ, config, seed=0)
        solve = p.root.child("solve")
        kernel_share = solve.inclusive("PAPI_TOT_INS")
        total = p.run_totals()["PAPI_TOT_INS"]
        assert kernel_share / total > 0.9  # most work in kernels

    def test_root_inclusive_recovers_encoded_totals(self):
        app, inp, config, res = _raw_counts()
        p = profile_run(app, inp, QUARTZ, config, seed=0)
        totals = p.run_totals()
        # Total instructions should be within bias+noise of the raw count.
        ratio = totals["PAPI_TOT_INS"] / res.counts.total_instructions
        assert 0.7 < ratio < 1.4

    def test_hit_rates_not_summed(self):
        app = APPLICATIONS["AMG"]
        inp = generate_inputs(app, 1, seed=0)[0]
        config = make_run_config(app, LASSEN, "1node")
        p = profile_run(app, inp, LASSEN, config, seed=0)
        totals = p.run_totals()
        assert 0.0 < totals["local_load_hit_rate"] < 1.0


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        app, inp, config, _ = _raw_counts()
        p = profile_run(app, inp, QUARTZ, config, seed=0)
        path = tmp_path / "profile.json"
        save_profile(p, path)
        p2 = load_profile(path)
        assert p2.meta == p.meta
        assert p2.run_totals() == pytest.approx(p.run_totals())
        assert [n.path for n in p2.root.walk()] == \
            [n.path for n in p.root.walk()]

    def test_from_dict_requires_root_first(self):
        with pytest.raises(ValueError):
            Profile.from_dict({"meta": {}, "nodes": [
                {"id": 0, "parent": 0, "name": "x", "metrics": {}}
            ]})
