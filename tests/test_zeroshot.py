"""The descriptor-conditioned zero-shot predictor.

What must hold:

* it scores machines through their descriptors, so a machine held out
  of training (or invented on the spot) still gets a prediction;
* ``predict_with_uncertainty``'s mean is bit-identical to ``predict``;
* the wide-row expansion path (``predict_wide`` — the serve path)
  agrees with scoring long rows directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.descriptor import MachineDescriptor, descriptor_from_spec
from repro.arch.machines import MACHINES, SYSTEM_ORDER
from repro.core.zeroshot import DescriptorConditionedPredictor
from repro.dataset.longform import build_longform
from repro.dataset.schema import FEATURE_COLUMNS, LONG_FEATURE_COLUMNS
from repro.serve.loadgen import synthesize_payloads


@pytest.fixture(scope="module")
def longform(small_dataset):
    return build_longform(small_dataset)


@pytest.fixture(scope="module")
def zeroshot(longform) -> DescriptorConditionedPredictor:
    return DescriptorConditionedPredictor.train(
        longform, n_estimators=40, max_depth=4, n_quantile_rounds=40,
    )


@pytest.fixture(scope="module")
def holdout_zeroshot(longform) -> DescriptorConditionedPredictor:
    """Trained with Corona completely absent (source AND target)."""
    return DescriptorConditionedPredictor.train(
        longform.exclude_machine("Corona"),
        n_estimators=40, max_depth=4, n_quantile_rounds=40,
    )


def _descriptors(names=SYSTEM_ORDER):
    return [descriptor_from_spec(MACHINES[n]) for n in names]


class TestPredict:
    def test_long_row_prediction_shape(self, zeroshot, longform):
        X = longform.X()[:32]
        pred = zeroshot.predict(X)
        assert pred.shape == (32,)
        assert np.isfinite(pred).all()

    def test_learns_rel_time(self, zeroshot, longform):
        """In-sample fit must beat the trivial all-ones predictor."""
        X, y = longform.X(), longform.y()
        model_mae = np.abs(zeroshot.predict(X) - y).mean()
        ones_mae = np.abs(1.0 - y).mean()
        # rel_time is heavy-tailed (CPU<->GPU ratios span ~100x), so
        # the bar is a clear improvement, not a tight fit.
        assert model_mae < 0.8 * ones_mae

    def test_rejects_wrong_width(self, zeroshot):
        with pytest.raises(ValueError, match="expected"):
            zeroshot.predict(np.zeros((3, len(LONG_FEATURE_COLUMNS) + 1)))

    def test_uncertainty_mean_bit_identical(self, zeroshot, longform):
        X = longform.X()[:64]
        mean, spread = zeroshot.predict_with_uncertainty(X)
        assert np.array_equal(mean, zeroshot.predict(X))
        assert spread.shape == mean.shape
        assert (spread >= 0).all()

    def test_forest_model_uncertainty(self, longform):
        forest = DescriptorConditionedPredictor.train(
            longform, model="forest", n_estimators=8, max_depth=6,
        )
        X = longform.X()[:16]
        mean, spread = forest.predict_with_uncertainty(X)
        assert np.array_equal(mean, forest.predict(X))
        assert (spread >= 0).all() and spread.any()

    def test_no_uncertainty_model_raises(self, longform):
        linear = DescriptorConditionedPredictor.train(longform,
                                                      model="linear")
        assert not linear.has_uncertainty
        with pytest.raises(TypeError, match="uncertainty"):
            linear.predict_with_uncertainty(longform.X()[:2])


class TestWideExpansion:
    def test_predict_wide_matches_long_path(self, zeroshot, small_dataset,
                                            longform):
        """Scoring wide rows against SYSTEM_ORDER descriptors must equal
        scoring the equivalent long rows directly."""
        n = 8
        wide = zeroshot.predict_wide(small_dataset.X()[:n], _descriptors())
        direct = zeroshot.predict(
            longform.X()[:n * len(SYSTEM_ORDER)]
        ).reshape(n, len(SYSTEM_ORDER))
        assert np.array_equal(wide, direct)

    def test_wide_uncertainty_shapes(self, zeroshot, small_dataset):
        descs = _descriptors(("Ruby", "Corona"))
        scores, spread = zeroshot.predict_wide_with_uncertainty(
            small_dataset.X()[:5], descs
        )
        assert scores.shape == spread.shape == (5, 2)
        assert (spread >= 0).all()

    def test_rejects_bad_onehot(self, zeroshot):
        X = np.zeros((1, len(FEATURE_COLUMNS)))  # no source machine set
        with pytest.raises(ValueError, match="one-hot"):
            zeroshot.predict_wide(X, _descriptors())

    def test_rejects_empty_machines(self, zeroshot, small_dataset):
        with pytest.raises(ValueError, match="at least one"):
            zeroshot.predict_wide(small_dataset.X()[:1], [])


class TestZeroShotGeneralization:
    def test_scores_held_out_machine(self, holdout_zeroshot,
                                     small_dataset):
        """The model never saw a Corona measurement, yet scores it."""
        assert "Corona" not in holdout_zeroshot.train_targets
        rows = small_dataset.frame["machine"].astype(str) != "Corona"
        X = small_dataset.X()[np.flatnonzero(rows)[:16]]
        scores, spread = holdout_zeroshot.predict_wide_with_uncertainty(
            X, _descriptors()
        )
        corona = list(SYSTEM_ORDER).index("Corona")
        assert np.isfinite(scores[:, corona]).all()
        assert np.isfinite(spread[:, corona]).all()

    def test_scores_invented_machine(self, zeroshot, small_dataset):
        """A descriptor for hardware that never existed still scores —
        the whole point of conditioning on descriptors."""
        ruby = descriptor_from_spec(MACHINES["Ruby"]).to_dict()
        ruby.update(name="RubyPrime", cores=ruby["cores"] * 2,
                    mem_bw_gbs=ruby["mem_bw_gbs"] * 2)
        invented = MachineDescriptor.from_dict(ruby)
        scores = zeroshot.predict_wide(small_dataset.X()[:4], [invented])
        assert scores.shape == (4, 1)
        assert np.isfinite(scores).all()

    def test_score_record(self, zeroshot):
        record = synthesize_payloads(1, seed=3)[0]["record"]
        scores, spread = zeroshot.score_record(record, _descriptors())
        assert scores.shape == spread.shape == (len(SYSTEM_ORDER),)
        assert np.isfinite(scores).all()

    def test_ranking_consistency_with_rel_time(self, zeroshot, longform):
        """argmin over machine scores = predicted-fastest machine; the
        scalar rel_time target makes rankings fall out of one argsort."""
        X = longform.X()[:4 * len(SYSTEM_ORDER)]
        per_row = zeroshot.predict(X).reshape(-1, len(SYSTEM_ORDER))
        fastest = per_row.argmin(axis=1)
        assert fastest.shape == (4,)
        assert (fastest < len(SYSTEM_ORDER)).all()


class TestPersistence:
    def test_pickle_round_trip(self, zeroshot, longform, tmp_path):
        path = tmp_path / "zeroshot.pkl"
        zeroshot.save(path)
        loaded = DescriptorConditionedPredictor.load(path)
        X = longform.X()[:16]
        assert np.array_equal(loaded.predict(X), zeroshot.predict(X))
        assert loaded.train_targets == zeroshot.train_targets

    def test_load_rejects_wrong_type(self, tmp_path):
        import pickle

        path = tmp_path / "junk.pkl"
        path.write_bytes(pickle.dumps({"not": "a predictor"}))
        with pytest.raises(TypeError, match="DescriptorConditioned"):
            DescriptorConditionedPredictor.load(path)
