"""End-to-end integration tests: the paper's full pipeline at small scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CrossArchPredictor,
    Scheduler,
    average_bounded_slowdown,
    build_workload,
    makespan,
    strategy_by_name,
)
from repro.core.evaluation import (
    app_holdout_study,
    feature_importance_study,
    model_comparison_study,
    per_architecture_study,
    scale_holdout_study,
)
from repro.sched.machines import ClusterState


#: Light tree settings so the studies stay fast in unit tests; the
#: benchmarks run them at full strength.
LIGHT = {"n_estimators": 60, "max_depth": 6}


class TestEvaluationStudies:
    """Each study returns the frame backing one paper figure."""

    def test_model_comparison_fig2(self, small_dataset):
        frame = model_comparison_study(small_dataset, seed=11,
                                       model_kwargs=LIGHT)
        assert list(frame["model"]) == ["mean", "linear", "forest", "xgboost"]
        by_model = dict(zip(frame["model"], frame["mae"]))
        assert by_model["xgboost"] < by_model["mean"]
        sos = dict(zip(frame["model"], frame["sos"]))
        assert sos["xgboost"] > sos["mean"]

    def test_per_architecture_fig3(self, small_dataset):
        frame = per_architecture_study(small_dataset, seed=11,
                                       model_kwargs=LIGHT)
        assert frame.num_rows == 16  # 4 models x 4 archs
        assert set(frame.unique("source_arch")) == {
            "Quartz", "Ruby", "Lassen", "Corona"
        }
        # Structural checks only at this tiny dataset size; the
        # directional Fig. 3 assertions live in the benchmark (see
        # EXPERIMENTS.md for the partial-reproduction discussion).
        xgb = frame.filter(
            np.array([m == "xgboost" for m in frame["model"]])
        )
        mean_rows = frame.filter(
            np.array([m == "mean" for m in frame["model"]])
        )
        # The learned model beats the mean baseline from every source.
        for arch, mae in zip(xgb["source_arch"], xgb["mae"]):
            base = [m for a, m in zip(mean_rows["source_arch"],
                                      mean_rows["mae"]) if a == arch][0]
            assert mae < base

    def test_scale_holdout_fig4(self, small_dataset):
        frame = scale_holdout_study(small_dataset, seed=11,
                                    model_kwargs=LIGHT)
        assert set(frame.unique("held_out_scale")) == {
            "1core", "1node", "2node"
        }
        assert (frame.to_matrix(["mae"]) > 0).all()

    def test_app_holdout_fig5(self, small_dataset):
        frame = app_holdout_study(small_dataset, seed=11,
                                  apps=["CoMD", "CANDLE"],
                                  model_kwargs=LIGHT)
        assert frame.num_rows == 2
        assert (frame.to_matrix(["mae"]) > 0).all()

    def test_app_holdout_unknown_app(self, small_dataset):
        with pytest.raises(KeyError):
            app_holdout_study(small_dataset, apps=["HPL"])

    def test_feature_importance_fig6(self, small_dataset):
        frame = feature_importance_study(small_dataset, seed=11,
                                         model_kwargs=LIGHT)
        assert frame.num_rows == 21
        imps = frame.to_matrix(["importance"])[:, 0]
        assert imps.sum() == pytest.approx(1.0)
        assert (np.diff(imps) <= 1e-12).all()  # sorted descending
        assert "Branch Intensity" in list(frame["label"])


class TestSchedulingPipeline:
    @pytest.fixture(scope="class")
    def sched_results(self, small_dataset, trained_xgb):
        jobs = build_workload(small_dataset, n_jobs=1500, seed=21,
                              predictor=trained_xgb)
        results = {}
        for name in ("round_robin", "random", "user_rr", "model"):
            cluster = ClusterState({"Quartz": 120, "Ruby": 60,
                                    "Lassen": 32, "Corona": 12})
            strategy = strategy_by_name(name, seed=5)
            results[name] = Scheduler(strategy, cluster).run(list(jobs))
        return results

    def test_all_strategies_complete_workload(self, sched_results):
        for result in sched_results.values():
            assert result.num_jobs == 1500

    def test_model_based_has_best_makespan(self, sched_results):
        spans = {n: makespan(r) for n, r in sched_results.items()}
        assert spans["model"] <= min(spans["round_robin"], spans["random"])

    def test_model_based_has_best_slowdown(self, sched_results):
        slow = {n: average_bounded_slowdown(r)
                for n, r in sched_results.items()}
        assert slow["model"] <= min(slow["round_robin"], slow["random"])

    def test_user_rr_beats_blind_strategies_on_slowdown(self, sched_results):
        slow = {n: average_bounded_slowdown(r)
                for n, r in sched_results.items()}
        assert slow["user_rr"] <= max(slow["round_robin"], slow["random"])


class TestDeploymentRoundTrip:
    def test_profile_predict_schedule(self, small_dataset, trained_xgb,
                                      tmp_path):
        """The full deployment story: save model, reload, predict, place."""
        path = tmp_path / "predictor.pkl"
        trained_xgb.save(path)
        predictor = CrossArchPredictor.load(path)

        from repro.apps import APPLICATIONS, generate_inputs
        from repro.arch import RUBY
        from repro.hatchet_lite import run_record
        from repro.perfsim.config import make_run_config
        from repro.profiler import profile_run

        app = APPLICATIONS["XSBench"]
        inp = generate_inputs(app, 1, seed=404)[0]
        config = make_run_config(app, RUBY, "1node")
        profile = profile_run(app, inp, RUBY, config, seed=404)
        record = run_record(profile)

        order = predictor.rank_systems(record)
        assert len(order) == 4
        rpv = predictor.predict_record(record)
        assert np.argsort(rpv)[0] == list(predictor.systems).index(order[0])
