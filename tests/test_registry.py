"""Tests for the generic named-plugin registry (repro.registry)."""

import pytest

from repro.errors import ReproError, UnknownNameError
from repro.registry import Registry


@pytest.fixture
def reg():
    r = Registry("widget")
    r.register("Alpha", 1)
    r.register("beta", 2, aliases=("b",))
    return r


class TestRegistration:
    def test_direct_register_returns_object(self):
        r = Registry("thing")
        obj = object()
        assert r.register("x", obj) is obj

    def test_decorator_with_explicit_name(self):
        r = Registry("thing")

        @r.register("fancy")
        def factory():
            return 42

        assert r["fancy"] is factory

    def test_decorator_infers_name_attribute(self):
        r = Registry("strategy")

        @r.register()
        class Strat:
            name = "round_robin"

        assert r["round_robin"] is Strat

    def test_decorator_falls_back_to_dunder_name(self):
        r = Registry("thing")

        @r.register()
        def helper():
            pass

        assert r["helper"] is helper

    def test_duplicate_name_rejected(self, reg):
        with pytest.raises(ValueError, match="duplicate widget"):
            reg.register("alpha", 9)  # case-insensitive collision

    def test_duplicate_alias_rejected(self, reg):
        with pytest.raises(ValueError, match="duplicate widget alias"):
            reg.register("gamma", 3, aliases=("B",))

    def test_obj_without_name_rejected(self):
        r = Registry("thing")
        with pytest.raises(ValueError, match="requires a name"):
            r.register(obj=object())


class TestLookup:
    def test_mapping_protocol(self, reg):
        assert reg["Alpha"] == 1
        assert len(reg) == 2
        assert list(reg) == ["Alpha", "beta"]
        assert "Alpha" in reg
        assert "nope" not in reg
        assert reg.names() == ("Alpha", "beta")

    def test_case_insensitive_lookup_keeps_canonical_spelling(self, reg):
        assert reg["ALPHA"] == 1
        assert reg.canonical("alpha") == "Alpha"
        assert "aLpHa" in reg

    def test_alias_resolves_but_stays_hidden(self, reg):
        assert reg["b"] == 2
        assert "b" in reg
        assert "b" not in reg.names()
        assert list(reg) == ["Alpha", "beta"]

    def test_unknown_name_error_type(self, reg):
        with pytest.raises(UnknownNameError):
            reg["gamma"]
        # The bridge classes: old call sites catch KeyError or ValueError.
        with pytest.raises(KeyError):
            reg["gamma"]
        with pytest.raises(ValueError):
            reg["gamma"]
        with pytest.raises(ReproError):
            reg["gamma"]

    def test_unknown_name_message_lists_known(self, reg):
        with pytest.raises(UnknownNameError, match="known widgets"):
            reg["gamma"]
        err = reg.unknown("gamma")
        assert "unknown widget 'gamma'" in str(err)
        assert "Alpha" in str(err)

    def test_did_you_mean_suggestion(self, reg):
        err = reg.unknown("alpa")
        assert err.suggestions == ("Alpha",)
        assert "did you mean" in str(err)

    def test_non_string_lookup_is_typed(self, reg):
        with pytest.raises(UnknownNameError):
            reg.canonical(None)


class TestMutation:
    def test_setitem_replaces_in_place(self, reg):
        reg["ALPHA"] = 99
        assert reg["alpha"] == 99
        assert reg.names() == ("Alpha", "beta")  # spelling/pos preserved

    def test_setitem_registers_new(self, reg):
        reg["gamma"] = 3
        assert reg["Gamma"] == 3
        assert "gamma" in reg.names()

    def test_delitem_removes_entry_and_aliases(self, reg):
        del reg["BETA"]
        assert "beta" not in reg
        assert "b" not in reg
        with pytest.raises(UnknownNameError):
            reg["beta"]


class TestAdoptedRegistries:
    """The package registries all route through Registry."""

    def test_applications(self):
        from repro.apps import APPLICATIONS, get_app

        assert "AMG" in APPLICATIONS
        assert get_app("amg").name == "AMG"
        with pytest.raises(UnknownNameError, match="application"):
            get_app("HPL")

    def test_machines(self):
        from repro.arch import MACHINES, get_machine

        assert set(MACHINES) == {"Quartz", "Ruby", "Lassen", "Corona"}
        assert get_machine("quartz").name == "Quartz"
        with pytest.raises(UnknownNameError, match="machine"):
            get_machine("Summit")

    def test_models(self):
        from repro.ml import MODELS

        assert {"xgboost", "forest", "linear", "mean"} <= set(MODELS)
        with pytest.raises(UnknownNameError, match="model"):
            MODELS["svm"]

    def test_strategies(self):
        from repro.sched.strategies import STRATEGIES, strategy_by_name

        assert {"random", "round_robin", "user_rr", "model",
                "oracle"} <= set(STRATEGIES)
        assert strategy_by_name("round_robin").name == "round_robin"
        with pytest.raises(UnknownNameError, match="strategy"):
            strategy_by_name("fifo")

    def test_fault_profiles(self):
        from repro.resilience import FaultProfile
        from repro.resilience.faults import FAULT_PROFILES

        assert set(FAULT_PROFILES) == {"none", "light", "heavy"}
        assert FaultProfile.preset("light").name == "light"
        with pytest.raises(UnknownNameError, match="fault profile"):
            FaultProfile.preset("extreme")

    def test_suggestion_for_near_miss_strategy(self):
        from repro.sched.strategies import STRATEGIES

        err = STRATEGIES.unknown("round-robin")
        assert "round_robin" in err.suggestions
