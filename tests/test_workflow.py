"""Tests for workflow (task-DAG) scheduling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.workflow import (
    Workflow,
    WorkflowTask,
    critical_path_lower_bound,
    make_ensemble_workflow,
    make_pipeline_workflow,
    schedule_workflow,
)

SYSTEMS = ("Quartz", "Ruby", "Lassen", "Corona")


def _task(name, times=(10.0, 8.0, 4.0, 6.0), rpv=None):
    runtimes = dict(zip(SYSTEMS, times))
    if rpv is None:
        arr = np.array(times, dtype=np.float64)
        rpv = arr / arr.max()
    return WorkflowTask(name=name, runtimes=runtimes,
                        rpv=np.asarray(rpv, dtype=np.float64))


class TestWorkflowConstruction:
    def test_pipeline_shape(self):
        wf = make_pipeline_workflow([_task("a"), _task("b"), _task("c")])
        assert len(wf) == 3
        assert [t.name for t in wf.tasks] == ["a", "b", "c"]

    def test_ensemble_shape(self):
        wf = make_ensemble_workflow(
            _task("setup"), [_task(f"m{i}") for i in range(4)],
            _task("analysis"),
        )
        assert len(wf) == 6
        assert wf.graph.out_degree("setup") == 4
        assert wf.graph.in_degree("analysis") == 4

    def test_duplicate_task_rejected(self):
        wf = Workflow()
        wf.add_task(_task("a"))
        with pytest.raises(ValueError):
            wf.add_task(_task("a"))

    def test_unknown_dependency_rejected(self):
        wf = Workflow()
        with pytest.raises(KeyError):
            wf.add_task(_task("a"), after=["ghost"])

    def test_cycle_rejected(self):
        wf = Workflow()
        wf.add_task(_task("a"))
        wf.add_task(_task("b"), after=["a"])
        # Creating a back edge to an ancestor must fail; since add_task
        # only adds edges into the *new* node, simulate via graph check.
        wf.graph.add_edge("b", "a")
        import networkx as nx
        assert not nx.is_directed_acyclic_graph(wf.graph)

    def test_bad_task_validation(self):
        with pytest.raises(ValueError):
            WorkflowTask(name="x", runtimes={})
        with pytest.raises(ValueError):
            WorkflowTask(name="x", runtimes={"Quartz": -1.0})


class TestScheduling:
    def test_pipeline_makespan_is_sum_of_chosen_times(self):
        wf = make_pipeline_workflow([_task("a"), _task("b")])
        sched = schedule_workflow(wf, policy="model")
        # model places on Lassen (fastest, 4.0) both times
        assert sched.makespan == pytest.approx(8.0)
        assert sched.placements == {"a": "Lassen", "b": "Lassen"}

    def test_dependencies_respected(self):
        wf = make_pipeline_workflow([_task("a"), _task("b"), _task("c")])
        sched = schedule_workflow(wf)
        assert sched.start_times["b"] >= sched.end_times["a"]
        assert sched.start_times["c"] >= sched.end_times["b"]

    def test_ensemble_parallelism(self):
        members = [_task(f"m{i}") for i in range(4)]
        wf = make_ensemble_workflow(_task("setup"), members, _task("done"))
        sched = schedule_workflow(wf, policy="model", nodes_per_machine=1)
        # 4 members over 4 machines run concurrently after setup.
        member_starts = [sched.start_times[f"m{i}"] for i in range(4)]
        assert max(member_starts) == pytest.approx(min(member_starts))

    def test_capacity_forces_spill(self):
        # One node per machine and model policy: two identical ready
        # tasks cannot share Lassen; the second spills to Corona.
        wf = make_ensemble_workflow(
            _task("setup"), [_task("m0"), _task("m1")], _task("done")
        )
        sched = schedule_workflow(wf, policy="model", nodes_per_machine=1)
        placed = {sched.placements["m0"], sched.placements["m1"]}
        assert placed == {"Lassen", "Corona"}

    def test_model_beats_single_machine_policy(self):
        stages = [
            _task("sim", times=(10.0, 9.0, 3.0, 4.0)),    # GPU-friendly
            _task("analyze", times=(4.0, 3.0, 9.0, 9.0)),  # CPU-friendly
        ]
        wf = make_pipeline_workflow(stages)
        model = schedule_workflow(wf, policy="model")
        single = schedule_workflow(wf, policy="first_machine")
        assert model.makespan < single.makespan

    def test_model_matches_oracle_with_true_rpv(self):
        wf = make_pipeline_workflow([_task("a"), _task("b")])
        model = schedule_workflow(wf, policy="model")
        oracle = schedule_workflow(wf, policy="best_true")
        assert model.makespan == pytest.approx(oracle.makespan)

    def test_unknown_policy(self):
        wf = make_pipeline_workflow([_task("a")])
        with pytest.raises(ValueError):
            schedule_workflow(wf, policy="greedy")

    def test_model_policy_requires_rpv(self):
        task = WorkflowTask("a", dict(zip(SYSTEMS, (1.0, 1.0, 1.0, 1.0))))
        wf = make_pipeline_workflow([task])
        with pytest.raises(ValueError):
            schedule_workflow(wf, policy="model")

    def test_empty_workflow_rejected(self):
        with pytest.raises(ValueError):
            schedule_workflow(Workflow())


class TestCriticalPath:
    def test_pipeline_bound_is_sum_of_bests(self):
        wf = make_pipeline_workflow([_task("a"), _task("b")])
        assert critical_path_lower_bound(wf) == pytest.approx(8.0)

    def test_ensemble_bound_ignores_width(self):
        members = [_task(f"m{i}") for i in range(10)]
        wf = make_ensemble_workflow(_task("s"), members, _task("d"))
        # bound = best(s) + best(member) + best(d) = 4 + 4 + 4
        assert critical_path_lower_bound(wf) == pytest.approx(12.0)

    def test_schedule_never_beats_bound(self):
        rng = np.random.default_rng(0)
        members = [
            _task(f"m{i}", times=tuple(rng.uniform(2, 20, size=4)))
            for i in range(6)
        ]
        wf = make_ensemble_workflow(_task("s"), members, _task("d"))
        sched = schedule_workflow(wf, policy="model", nodes_per_machine=1)
        assert sched.makespan >= critical_path_lower_bound(wf) - 1e-9
