"""uint8 packing end-to-end: roundtrip bit-identity, typed rejection,
native-kernel equality, and the flat-cache lifecycle."""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import native
from repro.errors import PackingError
from repro.ml.boosting import GradientBoostedTrees
from repro.ml.tree import Binner

_N_FEATURES = 5


def _fit_gbt(seed: int, n_bins: int = 64) -> tuple[GradientBoostedTrees,
                                                   np.ndarray]:
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(300, _N_FEATURES))
    Y = rng.normal(size=(300, 2))
    gbt = GradientBoostedTrees(n_estimators=8, max_depth=3, n_bins=n_bins,
                               random_state=seed).fit(X, Y)
    return gbt, X


# ----------------------------------------------------------------------
# Property: pack -> predict_binned is bit-identical to float predict,
# across bin counts (including the uint8 edges 2 and 256) and across
# in-range / out-of-range query values.
# ----------------------------------------------------------------------
@given(
    seed=st.integers(0, 10),
    n_bins=st.sampled_from([2, 3, 64, 255, 256]),
    query_scale=st.sampled_from([0.5, 1.0, 10.0]),
    n_rows=st.integers(1, 40),
)
@settings(max_examples=25, deadline=None)
def test_property_pack_predict_roundtrip(seed, n_bins, query_scale, n_rows):
    gbt, _ = _fit_gbt(seed, n_bins=n_bins)
    rng = np.random.default_rng(seed + 1000)
    Xq = rng.normal(scale=query_scale, size=(n_rows, _N_FEATURES))
    packed = gbt.binner_.transform(Xq)
    assert packed.dtype == np.uint8
    assert packed.shape == Xq.shape
    # Bit-identical, not approximately equal: predict() bins the floats
    # through the very same transform before traversal.
    assert np.array_equal(gbt.predict_binned(packed), gbt.predict(Xq))


@given(n_bins=st.one_of(st.integers(-5, 1), st.integers(257, 400)))
@settings(max_examples=20, deadline=None)
def test_property_bin_count_outside_uint8_rejected(n_bins):
    with pytest.raises(PackingError):
        Binner(n_bins=n_bins)
    # PackingError stays catchable as the ValueError it used to be.
    with pytest.raises(ValueError):
        Binner(n_bins=n_bins)


def test_predictor_pack_rejections():
    from repro.core.predictor import CrossArchPredictor
    from repro.dataset.generate import generate_dataset

    dataset = generate_dataset(inputs_per_app=1, seed=0)
    predictor = CrossArchPredictor.train(dataset, n_estimators=4)
    n_feat = len(predictor.feature_columns)

    with pytest.raises(PackingError, match="shape"):
        predictor.pack(np.zeros((3, n_feat + 1)))
    with pytest.raises(PackingError, match="uint8"):
        predictor.predict_packed(np.zeros((3, n_feat), dtype=np.float64))
    with pytest.raises(PackingError, match="shape"):
        predictor.predict_packed(
            np.zeros((3, n_feat + 2), dtype=np.uint8))

    Xf = dataset.frame.to_matrix(list(predictor.feature_columns))
    packed = predictor.pack(Xf)
    assert np.array_equal(predictor.predict_packed(packed),
                          predictor.predict(Xf))


def test_predictor_pack_requires_binner():
    from repro.core.predictor import CrossArchPredictor
    from repro.dataset.generate import generate_dataset

    dataset = generate_dataset(inputs_per_app=1, seed=0)
    predictor = CrossArchPredictor.train(dataset, model="linear")
    with pytest.raises(PackingError, match="binner"):
        predictor.pack(np.zeros((2, len(predictor.feature_columns))))


# ----------------------------------------------------------------------
# Native routing kernel: equal to the numpy fallback, leaf for leaf.
# ----------------------------------------------------------------------
def test_native_kernel_matches_numpy_fallback():
    gbt, _ = _fit_gbt(3)
    rng = np.random.default_rng(99)
    Xb = gbt.binner_.transform(rng.normal(size=(500, _N_FEATURES)))
    flat = gbt._flat_ensemble()

    leaves_default = flat.predict_leaves(Xb)
    saved = native._state
    native._state = (None, "forced off for equality test")
    try:
        leaves_numpy = flat.predict_leaves(Xb)
    finally:
        native._state = saved
    assert np.array_equal(leaves_default, leaves_numpy)


def test_native_disable_env(monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE", "0")
    saved = native._state
    native._state = None  # force re-resolution under the env var
    try:
        assert not native.available()
        ok = native.route_leaves(
            np.zeros(1, dtype=np.int32), np.zeros(2, dtype=np.int32),
            np.zeros(1, dtype=np.int32),
            np.zeros((1, 1), dtype=np.uint8), 1,
            np.zeros((1, 1), dtype=np.int32),
        )
        assert ok is False  # caller falls back to numpy
        assert "REPRO_NATIVE" in native.kernel_info()
    finally:
        native._state = saved


# ----------------------------------------------------------------------
# Flat-cache lifecycle: reuse on same trees, rebuild on refit, and no
# stale entry riding through pickle (the serve hot-swap leak).
# ----------------------------------------------------------------------
def test_flat_cache_reused_and_invalidated_on_refit():
    gbt, X = _fit_gbt(5)
    rng = np.random.default_rng(5)
    Xb = gbt.binner_.transform(X)

    gbt.predict_binned(Xb)
    first = gbt._flat_cache
    assert first is not None
    gbt.predict_binned(Xb)
    assert gbt._flat_cache is first  # same trees -> same ensemble

    Y2 = rng.normal(size=(X.shape[0], 2))
    gbt.fit(X, Y2)
    assert gbt._flat_cache is None  # refit evicts, no stale traversal
    gbt.predict_binned(gbt.binner_.transform(X))
    assert gbt._flat_cache is not first


def test_flat_cache_dropped_by_pickle():
    gbt, X = _fit_gbt(6)
    Xb = gbt.binner_.transform(X)
    expected = gbt.predict_binned(Xb)
    assert gbt._flat_cache is not None  # warmed before the roundtrip

    clone = pickle.loads(pickle.dumps(gbt))
    # The warmed cache must not ride along: unpickled trees are new
    # objects, so a carried entry could never hit and would only leak
    # (one dead FlatEnsemble per serve hot-swap).
    assert clone._flat_cache is None
    assert np.array_equal(clone.predict_binned(Xb), expected)


def test_forest_flat_cache_dropped_by_pickle():
    from repro.ml.forest import RandomForestRegressor

    rng = np.random.default_rng(7)
    X = rng.normal(size=(200, _N_FEATURES))
    Y = rng.normal(size=(200, 2))
    rf = RandomForestRegressor(n_estimators=6, max_depth=4,
                               random_state=7).fit(X, Y)
    Xb = rf.binner_.transform(X)
    expected = rf.predict_binned(Xb)
    assert rf._flat_cache is not None

    clone = pickle.loads(pickle.dumps(rf))
    assert clone._flat_cache is None
    assert np.array_equal(clone.predict_binned(Xb), expected)
