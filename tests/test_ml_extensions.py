"""Tests for kNN regression and JSON model serialization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    DecisionTreeRegressor,
    GradientBoostedTrees,
    KNeighborsRegressor,
    LinearRegression,
    MeanPredictor,
    RandomForestRegressor,
    RidgeRegression,
    load_model,
    mean_absolute_error,
    model_from_dict,
    model_to_dict,
    save_model,
)


def _data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    Y = np.column_stack([np.sin(X[:, 0]), X[:, 1] ** 2])
    return X, Y + 0.02 * rng.normal(size=Y.shape)


class TestKNN:
    def test_one_neighbor_memorizes(self):
        X, Y = _data()
        m = KNeighborsRegressor(n_neighbors=1).fit(X, Y)
        np.testing.assert_allclose(m.predict(X), Y)

    def test_uniform_averaging(self):
        X = np.array([[0.0], [1.0], [10.0]])
        y = np.array([0.0, 2.0, 100.0])
        m = KNeighborsRegressor(n_neighbors=2).fit(X, y)
        # Query at 0.4: neighbors are 0.0 and 1.0 -> mean 1.0
        assert m.predict(np.array([[0.4]]))[0, 0] == pytest.approx(1.0)

    def test_distance_weighting_prefers_closer(self):
        X = np.array([[0.0], [1.0], [10.0]])
        y = np.array([0.0, 2.0, 100.0])
        uni = KNeighborsRegressor(2, weights="uniform").fit(X, y)
        dist = KNeighborsRegressor(2, weights="distance").fit(X, y)
        q = np.array([[0.1]])
        assert dist.predict(q)[0, 0] < uni.predict(q)[0, 0]

    def test_exact_match_dominates_distance_weights(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([5.0, 7.0, 9.0])
        m = KNeighborsRegressor(2, weights="distance").fit(X, y)
        assert m.predict(np.array([[1.0]]))[0, 0] == pytest.approx(7.0)

    def test_learns_smooth_function(self):
        X, Y = _data(n=800)
        m = KNeighborsRegressor(n_neighbors=5).fit(X[:600], Y[:600])
        assert mean_absolute_error(Y[600:], m.predict(X[600:])) < 0.4

    def test_validation(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(n_neighbors=0)
        with pytest.raises(ValueError):
            KNeighborsRegressor(weights="gaussian")
        with pytest.raises(RuntimeError):
            KNeighborsRegressor().predict(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            KNeighborsRegressor(n_neighbors=10).fit(
                np.zeros((3, 2)), np.zeros(3)
            )

    def test_constant_feature_does_not_crash(self):
        X = np.column_stack([np.ones(20), np.arange(20.0)])
        y = np.arange(20.0)
        m = KNeighborsRegressor(3).fit(X, y)
        assert np.isfinite(m.predict(X)).all()


class TestSerialization:
    @pytest.mark.parametrize("factory", [
        lambda X, Y: GradientBoostedTrees(n_estimators=10, max_depth=3,
                                          random_state=0).fit(X, Y),
        lambda X, Y: GradientBoostedTrees(
            n_estimators=8, multi_strategy="multi_output_tree",
            random_state=0).fit(X, Y),
        lambda X, Y: RandomForestRegressor(n_estimators=5,
                                           random_state=0).fit(X, Y),
        lambda X, Y: DecisionTreeRegressor(max_depth=5).fit(X, Y),
        lambda X, Y: LinearRegression().fit(X, Y),
        lambda X, Y: RidgeRegression(alpha=2.0).fit(X, Y),
        lambda X, Y: MeanPredictor().fit(X, Y),
    ])
    def test_roundtrip_bit_identical(self, factory, tmp_path):
        X, Y = _data()
        model = factory(X, Y)
        restored = model_from_dict(model_to_dict(model))
        np.testing.assert_array_equal(restored.predict(X), model.predict(X))

    def test_save_load_file(self, tmp_path):
        X, Y = _data()
        model = GradientBoostedTrees(n_estimators=5, random_state=0).fit(X, Y)
        path = tmp_path / "model.json"
        save_model(model, path)
        restored = load_model(path)
        np.testing.assert_array_equal(restored.predict(X), model.predict(X))

    def test_json_is_valid_and_inspectable(self, tmp_path):
        import json
        X, Y = _data()
        model = LinearRegression().fit(X, Y)
        path = tmp_path / "linear.json"
        save_model(model, path)
        doc = json.loads(path.read_text())
        assert doc["kind"] == "linear"
        assert len(doc["coef"]) == 4

    def test_unfitted_model_rejected(self):
        with pytest.raises(ValueError):
            model_to_dict(LinearRegression())
        with pytest.raises(ValueError):
            model_to_dict(GradientBoostedTrees())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            model_from_dict({"kind": "svm"})

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            model_to_dict(object())

    def test_gbt_importances_survive_roundtrip(self):
        X, Y = _data()
        model = GradientBoostedTrees(n_estimators=10, random_state=0).fit(X, Y)
        restored = model_from_dict(model_to_dict(model))
        np.testing.assert_allclose(
            restored.feature_importances(), model.feature_importances()
        )


@given(seed=st.integers(0, 2000), k=st.integers(1, 8))
@settings(max_examples=25, deadline=None)
def test_property_knn_prediction_in_target_hull(seed, k):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(30, 3))
    y = rng.normal(size=30)
    m = KNeighborsRegressor(n_neighbors=k).fit(X, y)
    pred = m.predict(rng.normal(size=(10, 3)))[:, 0]
    assert (pred >= y.min() - 1e-9).all()
    assert (pred <= y.max() + 1e-9).all()
