"""Tests for CrossArchPredictor and the training pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import APPLICATIONS, generate_inputs
from repro.arch import QUARTZ, SYSTEM_ORDER
from repro.core import (
    CrossArchPredictor,
    select_top_features,
    train_all_models,
    train_model,
)
from repro.dataset.schema import FEATURE_COLUMNS
from repro.hatchet_lite import run_record
from repro.ml import mean_absolute_error
from repro.perfsim.config import make_run_config
from repro.profiler import profile_run


class TestPredictor:
    def test_predict_shape(self, small_dataset, trained_xgb):
        X = small_dataset.X()
        pred = trained_xgb.predict(X[:10])
        assert pred.shape == (10, 4)

    def test_wrong_feature_count_rejected(self, trained_xgb):
        with pytest.raises(ValueError):
            trained_xgb.predict(np.zeros((3, 5)))

    def test_learns_better_than_mean(self, small_dataset, trained_xgb,
                                     split_indices):
        _, test_rows = split_indices
        X, Y = small_dataset.X(), small_dataset.Y()
        mean_pred = CrossArchPredictor.train(
            small_dataset, model="mean", rows=split_indices[0]
        )
        mae_xgb = mean_absolute_error(Y[test_rows],
                                      trained_xgb.predict(X[test_rows]))
        mae_mean = mean_absolute_error(Y[test_rows],
                                       mean_pred.predict(X[test_rows]))
        assert mae_xgb < 0.6 * mae_mean

    def test_predict_record_roundtrip(self, small_dataset, trained_xgb):
        """Deployment path: profile a fresh run, predict its RPV."""
        app = APPLICATIONS["CoMD"]
        inp = generate_inputs(app, 1, seed=777)[0]  # unseen input
        config = make_run_config(app, QUARTZ, "1node")
        record = run_record(profile_run(app, inp, QUARTZ, config, seed=123))
        rpv = trained_xgb.predict_record(record)
        assert rpv.shape == (4,)
        assert (rpv > 0).all()

    def test_rank_systems(self, small_dataset, trained_xgb):
        app = APPLICATIONS["CANDLE"]
        inp = generate_inputs(app, 1, seed=55)[0]
        config = make_run_config(app, QUARTZ, "1node")
        record = run_record(profile_run(app, inp, QUARTZ, config, seed=9))
        order = trained_xgb.rank_systems(record)
        assert sorted(order) == sorted(SYSTEM_ORDER)
        # A GPU-dominated tensor code should not rank Quartz fastest.
        assert order[0] != "Quartz"

    def test_predict_record_before_fit(self):
        p = CrossArchPredictor()
        with pytest.raises(RuntimeError):
            p.predict_record({})

    def test_unknown_model_kind(self):
        with pytest.raises(ValueError):
            CrossArchPredictor(model="svm")

    def test_save_load(self, trained_xgb, small_dataset, tmp_path):
        path = tmp_path / "model.pkl"
        trained_xgb.save(path)
        loaded = CrossArchPredictor.load(path)
        X = small_dataset.X()[:5]
        np.testing.assert_array_equal(loaded.predict(X),
                                      trained_xgb.predict(X))

    def test_load_wrong_type(self, tmp_path):
        import pickle
        path = tmp_path / "junk.pkl"
        path.write_bytes(pickle.dumps({"not": "a predictor"}))
        with pytest.raises(TypeError):
            CrossArchPredictor.load(path)

    def test_feature_importances_sorted(self, trained_xgb):
        imp = trained_xgb.feature_importances()
        vals = list(imp.values())
        assert vals == sorted(vals, reverse=True)
        assert sum(vals) == pytest.approx(1.0)
        assert set(imp) == set(FEATURE_COLUMNS)

    def test_importances_unavailable_for_linear(self, small_dataset):
        p = CrossArchPredictor.train(small_dataset, model="linear")
        with pytest.raises(TypeError):
            p.feature_importances()

    def test_labeled_importances(self, trained_xgb):
        labeled = trained_xgb.feature_importances_labeled()
        assert "Branch Intensity" in labeled

    def test_predict_with_uncertainty_forest(self, small_dataset):
        predictor = CrossArchPredictor.train(
            small_dataset, model="forest", n_estimators=10, max_depth=8
        )
        X = small_dataset.X()[:20]
        mean, std = predictor.predict_with_uncertainty(X)
        assert mean.shape == std.shape == (20, 4)
        assert (std >= 0).all()
        np.testing.assert_allclose(mean, predictor.predict(X))

    def test_uncertainty_unavailable_for_xgboost(self, trained_xgb,
                                                 small_dataset):
        with pytest.raises(TypeError):
            trained_xgb.predict_with_uncertainty(small_dataset.X()[:2])


class TestTrainingPipeline:
    def test_train_model_protocol(self, small_dataset):
        trained = train_model(small_dataset, model="linear", seed=3,
                              run_cv=True, n_folds=3)
        assert trained.test_mae > 0
        assert 0 <= trained.test_sos <= 1
        assert np.isfinite(trained.cv_mae)
        # 90/10 split
        assert len(trained.test_rows) == round(0.1 * small_dataset.num_rows)

    def test_train_all_models_order_and_split_consistency(self, small_dataset):
        results = train_all_models(small_dataset, seed=5)
        assert list(results) == ["mean", "linear", "forest", "xgboost"]
        rows = {name: tuple(r.test_rows) for name, r in results.items()}
        assert len(set(rows.values())) == 1  # identical splits

    def test_tree_models_beat_linear_beats_mean(self, small_dataset):
        """The Fig. 2 ordering on MAE."""
        results = train_all_models(small_dataset, seed=5)
        assert results["xgboost"].test_mae < results["linear"].test_mae
        assert results["forest"].test_mae < results["linear"].test_mae
        assert results["linear"].test_mae < results["mean"].test_mae

    def test_select_top_features(self, small_dataset, trained_xgb):
        top = select_top_features(trained_xgb, k=8)
        assert len(top) == 8
        imp = trained_xgb.feature_importances()
        assert list(top) == list(imp)[:8]

    def test_select_top_features_bounds(self, trained_xgb):
        with pytest.raises(ValueError):
            select_top_features(trained_xgb, k=0)
        with pytest.raises(ValueError):
            select_top_features(trained_xgb, k=22)

    def test_retrain_on_selected_features(self, small_dataset, trained_xgb):
        """Section VI-B: retraining on the top features still works."""
        top = select_top_features(trained_xgb, k=12)
        trained = train_model(small_dataset, model="xgboost", seed=3,
                              feature_columns=top,
                              n_estimators=40, max_depth=5)
        assert trained.test_mae < 0.2
