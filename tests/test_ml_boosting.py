"""Tests for the gradient-boosted-trees regressor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import GradientBoostedTrees, mean_absolute_error


def _regression_data(n=600, k=2, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 5))
    Y = np.column_stack(
        [np.sin(X[:, 0]) + 0.5 * X[:, 1] for _ in range(k)]
    ) + 0.05 * rng.normal(size=(n, k))
    return X, Y


class TestFitPredict:
    def test_fits_nonlinear_signal(self):
        X, Y = _regression_data()
        m = GradientBoostedTrees(n_estimators=80, max_depth=4,
                                 random_state=0).fit(X, Y)
        assert mean_absolute_error(Y, m.predict(X)) < 0.1

    def test_single_output_input_keeps_2d_prediction(self):
        X, Y = _regression_data(k=1)
        m = GradientBoostedTrees(n_estimators=10).fit(X, Y[:, 0])
        assert m.predict(X).shape == (len(X), 1)

    def test_improves_over_base_score(self):
        X, Y = _regression_data()
        m = GradientBoostedTrees(n_estimators=30, max_depth=3,
                                 random_state=0).fit(X, Y)
        base_mae = np.abs(Y - Y.mean(axis=0)).mean()
        assert mean_absolute_error(Y, m.predict(X)) < 0.5 * base_mae

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().predict(np.zeros((1, 2)))

    def test_deterministic_given_seed(self):
        X, Y = _regression_data()
        p1 = GradientBoostedTrees(n_estimators=20, subsample=0.7,
                                  random_state=9).fit(X, Y).predict(X)
        p2 = GradientBoostedTrees(n_estimators=20, subsample=0.7,
                                  random_state=9).fit(X, Y).predict(X)
        np.testing.assert_array_equal(p1, p2)

    def test_multi_output_tree_strategy(self):
        X, Y = _regression_data()
        m = GradientBoostedTrees(
            n_estimators=40, multi_strategy="multi_output_tree",
            random_state=0,
        ).fit(X, Y)
        assert m.n_trees_ == 40  # one tree per round, not per output
        assert mean_absolute_error(Y, m.predict(X)) < 0.15

    def test_per_output_strategy_tree_count(self):
        X, Y = _regression_data(k=3)
        m = GradientBoostedTrees(n_estimators=10).fit(X, Y)
        assert m.n_trees_ == 30

    def test_pseudo_huber_objective(self):
        X, Y = _regression_data()
        m = GradientBoostedTrees(n_estimators=60, objective="pseudo_huber",
                                 random_state=0).fit(X, Y)
        assert mean_absolute_error(Y, m.predict(X)) < 0.15

    def test_pseudo_huber_resists_outliers(self):
        X, Y = _regression_data(k=1)
        Yc = Y.copy()
        Yc[:10] += 100.0  # corrupt a few targets
        sq = GradientBoostedTrees(n_estimators=60, random_state=0,
                                  objective="squared").fit(X, Yc)
        hu = GradientBoostedTrees(n_estimators=60, random_state=0,
                                  objective="pseudo_huber").fit(X, Yc)
        clean = slice(10, None)
        err_sq = mean_absolute_error(Y[clean], sq.predict(X)[clean])
        err_hu = mean_absolute_error(Y[clean], hu.predict(X)[clean])
        assert err_hu < err_sq

    def test_early_stopping_truncates(self):
        X, Y = _regression_data()
        m = GradientBoostedTrees(n_estimators=300, max_depth=3,
                                 random_state=0)
        m.fit(X[:400], Y[:400], eval_set=(X[400:], Y[400:]),
              early_stopping_rounds=5)
        assert len(m.trees_) < 300

    def test_subsample_colsample(self):
        X, Y = _regression_data()
        m = GradientBoostedTrees(n_estimators=40, subsample=0.5,
                                 colsample_bytree=0.5,
                                 random_state=0).fit(X, Y)
        assert mean_absolute_error(Y, m.predict(X)) < 0.25


class TestValidation:
    def test_bad_objective(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(objective="mae")

    def test_bad_strategy(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(multi_strategy="bogus")

    def test_bad_subsample(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(subsample=0.0)

    def test_bad_n_estimators(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(n_estimators=0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees().fit(np.zeros((5, 2)), np.zeros(4))


class TestImportances:
    def test_importances_sum_to_one(self):
        X, Y = _regression_data()
        m = GradientBoostedTrees(n_estimators=20, random_state=0).fit(X, Y)
        imp = m.feature_importances()
        assert imp.shape == (5,)
        assert imp.sum() == pytest.approx(1.0)

    def test_signal_feature_dominates(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 4))
        y = 3.0 * X[:, 2] + 0.01 * rng.normal(size=500)
        m = GradientBoostedTrees(n_estimators=30, max_depth=3,
                                 random_state=0).fit(X, y)
        imp = m.feature_importances()
        assert imp.argmax() == 2
        assert imp[2] > 0.8

    def test_weight_importance_kind(self):
        X, Y = _regression_data()
        m = GradientBoostedTrees(n_estimators=15, random_state=0).fit(X, Y)
        w = m.feature_importances(kind="weight")
        assert w.sum() == pytest.approx(1.0)

    def test_bad_kind(self):
        X, Y = _regression_data()
        m = GradientBoostedTrees(n_estimators=5, random_state=0).fit(X, Y)
        with pytest.raises(ValueError):
            m.feature_importances(kind="cover")

    def test_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().feature_importances()


@given(lr=st.floats(0.05, 0.5), seed=st.integers(0, 1000))
@settings(max_examples=10, deadline=None)
def test_property_train_error_decreases_with_rounds(lr, seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(200, 3))
    y = X[:, 0] ** 2 + rng.normal(0, 0.1, 200)
    errs = []
    for ne in (1, 10, 50):
        m = GradientBoostedTrees(n_estimators=ne, max_depth=3,
                                 learning_rate=lr, random_state=0).fit(X, y)
        errs.append(mean_absolute_error(y, m.predict(X)))
    assert errs[2] <= errs[1] <= errs[0] + 1e-9
