"""The pipeline's determinism contract, pinned as tests.

``generate_dataset`` promises that ``jobs``/``cache`` are pure
wall-time knobs: sequential, parallel, and cached runs of the same seed
must produce byte-identical datasets, and the dataset for a fixed small
configuration is pinned against a checked-in golden digest so silent
drift in any layer (input generation, noise streams, feature math, CSV
rendering) fails loudly.

Regenerating the golden digest (only after an *intentional* change to
generated values — bump ``DATASET_SCHEMA_VERSION`` alongside it)::

    PYTHONPATH=src python - <<'EOF'
    import hashlib, tempfile
    from pathlib import Path
    from repro.dataset.generate import generate_dataset
    ds = generate_dataset(inputs_per_app=3, seed=123,
                          apps=["CoMD", "XSBench", "CANDLE"])
    p = Path(tempfile.mkstemp(suffix=".csv")[1]); ds.save(p)
    Path("tests/golden/mphpc_small.sha256").write_text(
        hashlib.sha256(p.read_bytes()).hexdigest() + "\\n")
    EOF

(The digest depends on the numpy Generator bit streams, which numpy
keeps stable for a given algorithm; a numpy release that changes a
distribution method would also be an intentional regeneration event.)
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np
import pytest

from repro.core.pipeline import train_all_models
from repro.dataset.generate import generate_dataset
from repro.dataset.store import ShardCache
from repro.parallel import derive_seed, run_tasks, substream

GOLDEN = Path(__file__).parent / "golden" / "mphpc_small.sha256"

#: Small but multi-app configuration used by every test here.
GEN_KWARGS = dict(inputs_per_app=3, seed=123,
                  apps=["CoMD", "XSBench", "CANDLE"])


def _csv_bytes(dataset, tmp_path: Path, name: str) -> bytes:
    path = tmp_path / name
    dataset.save(path)
    return path.read_bytes()


@pytest.fixture(scope="module")
def sequential_bytes(tmp_path_factory) -> bytes:
    tmp = tmp_path_factory.mktemp("seq")
    return _csv_bytes(generate_dataset(**GEN_KWARGS), tmp, "seq.csv")


class TestGoldenDeterminism:
    def test_sequential_matches_golden_digest(self, sequential_bytes):
        expected = GOLDEN.read_text().strip()
        assert hashlib.sha256(sequential_bytes).hexdigest() == expected

    def test_parallel_byte_identical_to_sequential(self, sequential_bytes,
                                                   tmp_path):
        parallel = generate_dataset(**GEN_KWARGS, jobs=4)
        assert _csv_bytes(parallel, tmp_path, "par.csv") == sequential_bytes

    def test_cached_runs_byte_identical(self, sequential_bytes, tmp_path):
        cache = ShardCache(tmp_path / "cache")
        cold = generate_dataset(**GEN_KWARGS, cache=cache)
        warm = generate_dataset(**GEN_KWARGS, cache=cache)
        assert _csv_bytes(cold, tmp_path, "cold.csv") == sequential_bytes
        assert _csv_bytes(warm, tmp_path, "warm.csv") == sequential_bytes

    def test_parallel_plus_cache_byte_identical(self, sequential_bytes,
                                                tmp_path):
        combo = generate_dataset(**GEN_KWARGS, jobs=2,
                                 cache_dir=tmp_path / "cache")
        assert _csv_bytes(combo, tmp_path, "combo.csv") == sequential_bytes


class TestTrainingDeterminism:
    @pytest.fixture(scope="class")
    def tiny_dataset(self):
        return generate_dataset(inputs_per_app=2, seed=5,
                                apps=["CoMD", "XSBench"])

    def test_parallel_training_matches_sequential(self, tiny_dataset):
        kwargs = dict(n_estimators=12, max_depth=4)
        seq = train_all_models(tiny_dataset, seed=42, jobs=1,
                               model_kwargs=kwargs)
        par = train_all_models(tiny_dataset, seed=42, jobs=2,
                               model_kwargs=kwargs)
        assert list(seq) == list(par)
        for name in seq:
            assert seq[name].test_mae == par[name].test_mae
            assert seq[name].test_sos == par[name].test_sos
            np.testing.assert_array_equal(seq[name].train_rows,
                                          par[name].train_rows)
            X = tiny_dataset.X()[:25]
            np.testing.assert_array_equal(seq[name].predictor.predict(X),
                                          par[name].predictor.predict(X))


class TestExecutor:
    def test_results_in_task_order(self):
        assert run_tasks(_square, list(range(20)), jobs=3) == \
            [i * i for i in range(20)]

    def test_inline_and_pooled_identical(self):
        tasks = list(range(7))
        assert run_tasks(_square, tasks, jobs=1) == \
            run_tasks(_square, tasks, jobs=2)

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            run_tasks(_explode, [1, 2, 3], jobs=2)
        with pytest.raises(ValueError, match="boom"):
            run_tasks(_explode, [1, 2, 3], jobs=1)

    def test_worker_death_is_typed_with_task_range(self):
        # A SIGKILLed worker surfaces as the pool's BrokenProcessPool;
        # run_tasks must convert it into a typed error naming the chunk
        # of tasks that was in flight, not leak the pool internals.
        from repro.errors import ReproError
        from repro.parallel import ParallelExecutionError

        with pytest.raises(ParallelExecutionError,
                           match="worker process died") as info:
            run_tasks(_die, list(range(6)), jobs=2)
        err = info.value
        assert isinstance(err, ReproError)
        assert 0 <= err.task_start < err.task_stop <= 6


class TestSeedSubstreams:
    def test_substream_reproducible(self):
        a = substream(7, "CoMD", "1node", 3).normal(size=5)
        b = substream(7, "CoMD", "1node", 3).normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_substreams_independent_of_identity(self):
        a = substream(7, "CoMD").normal(size=100)
        b = substream(7, "XSBench").normal(size=100)
        assert not np.array_equal(a, b)

    def test_root_seed_changes_stream(self):
        a = substream(1, "CoMD").normal(size=100)
        b = substream(2, "CoMD").normal(size=100)
        assert not np.array_equal(a, b)

    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(3, "a", 1) == derive_seed(3, "a", 1)
        assert derive_seed(3, "a", 1) != derive_seed(3, "a", 2)
        assert derive_seed(3, "a", 1) != derive_seed(4, "a", 1)


def _square(x: int) -> int:
    return x * x


def _explode(x: int) -> int:
    raise ValueError("boom")


def _die(x: int) -> int:
    import os
    import signal

    os.kill(os.getpid(), signal.SIGKILL)
    return x  # unreachable
