"""Tests for the calling-context-tree substrate."""

from __future__ import annotations

import pytest

from repro.apps import APPLICATIONS
from repro.cct import CCTNode, build_app_cct


@pytest.fixture
def tree() -> CCTNode:
    root = CCTNode("main")
    a = CCTNode("solve", parent=root)
    k1 = CCTNode("kernel_a", parent=a)
    k2 = CCTNode("kernel_b", parent=a)
    CCTNode("finalize", parent=root)
    k1.metrics["cycles"] = 70.0
    k2.metrics["cycles"] = 25.0
    a.metrics["cycles"] = 5.0
    return root


class TestStructure:
    def test_paths(self, tree):
        leaves = tree.leaves()
        assert "main/solve/kernel_a" in [n.path for n in leaves]

    def test_depth(self, tree):
        assert tree.depth == 0
        assert tree.leaves()[0].depth == 2

    def test_num_nodes(self, tree):
        assert tree.num_nodes == 5

    def test_walk_preorder(self, tree):
        names = [n.name for n in tree.walk()]
        assert names[0] == "main"
        assert names.index("solve") < names.index("kernel_a")

    def test_child_get_or_create(self, tree):
        solve = tree.child("solve")
        assert solve.name == "solve"
        assert tree.num_nodes == 5  # existing, not duplicated
        tree.child("new_phase")
        assert tree.num_nodes == 6

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            CCTNode("")
        with pytest.raises(ValueError):
            CCTNode("a/b")


class TestMetrics:
    def test_inclusive_sums_subtree(self, tree):
        assert tree.inclusive("cycles") == pytest.approx(100.0)
        solve = tree.child("solve")
        assert solve.inclusive("cycles") == pytest.approx(100.0)

    def test_inclusive_missing_metric_zero(self, tree):
        assert tree.inclusive("nonexistent") == 0.0

    def test_inclusive_all(self, tree):
        totals = tree.inclusive_all()
        assert totals == {"cycles": pytest.approx(100.0)}


class TestPrune:
    def test_prune_keeps_matching_leaves(self, tree):
        pruned = tree.prune(lambda n: n.metrics.get("cycles", 0) > 50)
        paths = [n.path for n in pruned.walk()]
        assert "main/solve/kernel_a" in paths
        assert "main/solve/kernel_b" not in paths

    def test_prune_preserves_original(self, tree):
        before = tree.num_nodes
        tree.prune(lambda n: False)
        assert tree.num_nodes == before

    def test_prune_root_always_kept(self, tree):
        pruned = tree.prune(lambda n: False)
        assert pruned.name == "main"
        assert pruned.num_nodes == 1

    def test_prune_inclusive_of_kept_subtree(self, tree):
        pruned = tree.prune(lambda n: n.metrics.get("cycles", 0) >= 25)
        assert pruned.inclusive("cycles") == pytest.approx(100.0)


class TestFormatting:
    def test_format_tree_contains_all_names(self, tree):
        text = tree.format_tree()
        for node in tree.walk():
            assert node.name in text

    def test_format_tree_with_metric(self, tree):
        text = tree.format_tree("cycles")
        assert "[70]" in text


class TestBuildAppCCT:
    def test_canonical_shape(self):
        app = APPLICATIONS["AMG"]
        root = build_app_cct(app)
        names = [n.name for n in root.children]
        assert names == ["initialize", "solve", "finalize"]
        solve = root.child("solve")
        assert len(solve.children) == len(app.kernels)

    def test_kernel_weights_attached(self):
        app = APPLICATIONS["miniFE"]
        root = build_app_cct(app)
        total = sum(
            n.metrics["weight"] for n in root.walk() if "weight" in n.metrics
        )
        assert total == pytest.approx(1.0)

    def test_all_apps_build(self):
        for app in APPLICATIONS.values():
            root = build_app_cct(app)
            assert root.num_nodes == 3 + len(app.kernels) + 1
