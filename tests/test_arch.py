"""Tests for the Table I machine models."""

from __future__ import annotations

import pytest

from repro.arch import (
    CORONA,
    LASSEN,
    MACHINES,
    QUARTZ,
    RUBY,
    SYSTEM_ORDER,
    CacheLevel,
    CPUSpec,
    GPUSpec,
    MachineSpec,
    get_machine,
)


class TestTableI:
    """The reproduction must match the published Table I cells exactly."""

    @pytest.mark.parametrize(
        "machine, cpu_model, cores, clock, gpu_model, gpus",
        [
            (QUARTZ, "Intel Xeon E5-2695 v4", 36, 2.1, None, 0),
            (RUBY, "Intel Xeon CLX-8276", 56, 2.2, None, 0),
            (LASSEN, "IBM Power9", 44, 3.5, "NVIDIA V100", 4),
            (CORONA, "AMD Rome", 48, 2.8, "AMD MI50", 8),
        ],
    )
    def test_table1_cells(self, machine, cpu_model, cores, clock,
                          gpu_model, gpus):
        assert machine.cpu.model == cpu_model
        assert machine.cpu.cores == cores
        assert machine.cpu.clock_ghz == clock
        if gpu_model is None:
            assert machine.gpu is None
        else:
            assert machine.gpu.model == gpu_model
        assert machine.gpus_per_node == gpus

    def test_four_systems_in_order(self):
        assert SYSTEM_ORDER == ("Quartz", "Ruby", "Lassen", "Corona")
        assert set(MACHINES) == set(SYSTEM_ORDER)

    def test_two_cpu_two_gpu(self):
        gpu_systems = [m for m in MACHINES.values() if m.has_gpu]
        assert len(gpu_systems) == 2

    def test_describe_matches_table_layout(self):
        row = QUARTZ.describe()
        assert row["System"] == "Quartz"
        assert row["GPU Type"] == "--"
        row = LASSEN.describe()
        assert row["GPUs/node"] == 4


class TestDerivedQuantities:
    def test_ruby_peak_exceeds_quartz(self):
        # AVX-512 + more cores: Ruby is the stronger CPU system.
        assert RUBY.cpu.peak_dp_gflops > QUARTZ.cpu.peak_dp_gflops

    def test_sp_is_twice_dp(self):
        assert QUARTZ.cpu.peak_sp_gflops == pytest.approx(
            2 * QUARTZ.cpu.peak_dp_gflops
        )

    def test_gpu_node_aggregates(self):
        assert LASSEN.node_peak_gpu_sp_gflops == pytest.approx(4 * 15700.0)
        assert CORONA.node_gpu_mem_bw_gbs == pytest.approx(8 * 1024.0)

    def test_cpu_only_gpu_aggregates_zero(self):
        assert QUARTZ.node_peak_gpu_sp_gflops == 0.0
        assert QUARTZ.node_gpu_mem_bw_gbs == 0.0

    def test_gpu_counter_noise_exceeds_cpu(self):
        # Section VIII-B: GPU profiling (esp. rocprof) is less mature.
        cpu_noise = max(QUARTZ.counter_noise_sigma, RUBY.counter_noise_sigma)
        assert LASSEN.counter_noise_sigma > cpu_noise
        assert CORONA.counter_noise_sigma > LASSEN.counter_noise_sigma


class TestLookupAndValidation:
    def test_get_machine_case_insensitive(self):
        assert get_machine("quartz") is QUARTZ
        assert get_machine("CORONA") is CORONA

    def test_get_machine_unknown(self):
        with pytest.raises(KeyError, match="known"):
            get_machine("summit")

    def test_inconsistent_gpu_config_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec(name="bad", cpu=QUARTZ.cpu, gpu=None, gpus_per_node=2)

    def test_nonpositive_nodes_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec(name="bad", cpu=QUARTZ.cpu, nodes=0)

    def test_cache_validation(self):
        with pytest.raises(ValueError):
            CacheLevel(size_bytes=0, latency_cycles=4)
        with pytest.raises(ValueError):
            CacheLevel(size_bytes=1024, latency_cycles=0)

    def test_cpu_validation(self):
        with pytest.raises(ValueError):
            CPUSpec(
                model="x", cores=0, clock_ghz=1.0, ipc_scalar=1.0,
                vector_width_dp=2, fma=True, l1=QUARTZ.cpu.l1,
                l2=QUARTZ.cpu.l2, l3=QUARTZ.cpu.l3, mem_bw_gbs=50.0,
            )

    def test_gpu_validation(self):
        with pytest.raises(ValueError):
            GPUSpec(model="x", peak_sp_tflops=0.0, peak_dp_tflops=1.0,
                    mem_bw_gbs=100.0, mem_bytes=1)

    def test_specs_are_frozen(self):
        with pytest.raises(AttributeError):
            QUARTZ.nodes = 5  # type: ignore[misc]
