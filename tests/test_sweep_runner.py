"""Tests for the sweep execution engine (repro.sweep.runner) and the
``repro sweep`` CLI, driven by the chaos harness.

Every durability claim is exercised by actually killing, hanging, or
corrupting something:

* a crashed worker (SIGKILL) is classified ``worker-death`` and retried;
* a hung worker is reclaimed by the wall-clock timeout;
* a corrupted run dir fails verification and is recomputed;
* a poison cell is quarantined after its retry budget while every
  other cell completes;
* the acceptance invariant: a sweep whose *orchestrator* dies mid-
  campaign (chaos ``parent-exit``, the ``kill -9`` stand-in) resumes
  without recomputing any verified cell and produces a report
  byte-identical to an uninterrupted sweep.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.artifacts import verify_run
from repro.resilience.retry import RetryPolicy
from repro.sweep import (
    JOURNAL_NAME,
    ChaosSpec,
    SweepJournal,
    SweepRunner,
    SweepSpec,
    build_report,
    plan_sweep,
    write_report,
)
from repro.sweep.report import REPORT_NAME

SRC = Path(repro.__file__).resolve().parents[1]

#: Two cheap profile cells: enough to prove "others complete" claims.
PAIR_KWARGS = dict(
    name="pair",
    command="profile",
    base={"machine": "Quartz", "scale": "1node", "seed": 0},
    axes={"app": ["AMG", "XSBench"]},
)

#: Zero-jitter fast backoff so retry tests spend no real wall clock.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.01,
                         backoff_cap=0.05, jitter=0.0)


def _run(spec, root, *, resume=False, chaos=None, jobs=2, timeout=None,
         retry=FAST_RETRY, retry_quarantined=False):
    plan = plan_sweep(spec, root, resume=resume,
                      retry_quarantined=retry_quarantined)
    runner = SweepRunner(plan, jobs=jobs, timeout=timeout, retry=retry,
                         chaos=chaos or ChaosSpec())
    return runner.run()


def _report_bytes(spec, root) -> bytes:
    return write_report(build_report(spec, root), root).read_bytes()


class TestCleanSweep:
    @pytest.fixture(scope="class")
    def root(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("sweep") / "root"
        spec = SweepSpec(**PAIR_KWARGS)
        result = _run(spec, root)
        return spec, root, result

    def test_all_cells_done_and_verified(self, root):
        spec, root, result = root
        assert result.ok
        assert result.counts == {"done": 2, "cached": 0, "quarantined": 0}
        for cell in spec.expand():
            run = verify_run(root / cell.run_dir_name)
            assert run.metrics()["app"] == dict(cell.axes)["app"]

    def test_journal_records_lifecycle(self, root):
        spec, root, _ = root
        journal = SweepJournal(root / JOURNAL_NAME)
        state = SweepJournal.reduce(journal.read())
        assert {s["event"] for s in state.values()} == {"done"}
        assert journal.spec_hashes() == {spec.content_hash()}

    def test_report_ranks_across_cells(self, root):
        spec, root, _ = root
        report = build_report(spec, root)
        assert report["cells_complete"] == report["cells_total"] == 2
        ranked = report["rankings"]["time_seconds"]
        assert len(ranked) == 2
        assert ranked[0]["value"] <= ranked[1]["value"]

    def test_memoized_rerun_is_all_cached(self, root):
        spec, root, _ = root
        first = _report_bytes(spec, root)
        result = _run(spec, root, resume=True)
        assert result.counts == {"done": 0, "cached": 2, "quarantined": 0}
        # The report is a pure function of the verified artifacts, so a
        # fully-memoized rerun reproduces it byte for byte.
        assert _report_bytes(spec, root) == first


class TestChaosFailures:
    def test_crashed_worker_classified_and_retried(self, tmp_path):
        spec = SweepSpec(**PAIR_KWARGS)
        chaos = ChaosSpec.parse(
            '{"faults": [{"fault": "crash", "cell": 0, "attempt": 1}]}')
        result = _run(spec, tmp_path / "root", chaos=chaos)
        assert result.ok
        crashed = result.outcomes[0]
        assert crashed.status == "done"
        assert crashed.attempts == 2
        assert [e.kind for e in crashed.errors] == ["worker-death"]
        assert "signal 9" in crashed.errors[0].detail

    def test_hung_worker_reclaimed_by_timeout(self, tmp_path):
        spec = SweepSpec(**{**PAIR_KWARGS, "axes": {"app": ["AMG"]}})
        chaos = ChaosSpec.parse(
            '{"faults": [{"fault": "hang", "cell": 0, "attempt": "*"}]}')
        result = _run(spec, tmp_path / "root", chaos=chaos, timeout=0.75,
                      retry=RetryPolicy(max_attempts=1, backoff_base=0.0,
                                        jitter=0.0))
        outcome = result.outcomes[0]
        assert outcome.status == "quarantined"
        assert [e.kind for e in outcome.errors] == ["timeout"]

    def test_corrupted_run_dir_fails_verify_then_recomputes(self, tmp_path):
        spec = SweepSpec(**PAIR_KWARGS)
        chaos = ChaosSpec.parse(
            '{"faults": [{"fault": "corrupt", "cell": 1, "attempt": 1}]}')
        result = _run(spec, tmp_path / "root", chaos=chaos)
        assert result.ok
        torn = result.outcomes[1]
        assert torn.attempts == 2
        assert [e.kind for e in torn.errors] == ["verify-failed"]
        verify_run(tmp_path / "root" / spec.expand()[1].run_dir_name)

    def test_poison_cell_quarantined_while_others_complete(self, tmp_path):
        spec = SweepSpec(**PAIR_KWARGS)
        chaos = ChaosSpec.parse(
            '{"faults": [{"fault": "error", "cell": 0, "attempt": "*"}]}')
        result = _run(spec, tmp_path / "root", chaos=chaos)
        poison, healthy = result.outcomes
        assert poison.status == "quarantined"
        assert poison.attempts == FAST_RETRY.max_attempts
        assert all(e.kind == "nonzero-exit" for e in poison.errors)
        assert "chaos: injected worker error" in poison.errors[-1].detail
        assert healthy.status == "done"
        report = build_report(spec, tmp_path / "root")
        assert report["cells_complete"] == 1
        assert report["cells_quarantined"] == 1

    def test_quarantine_parked_on_resume_until_lifted(self, tmp_path):
        spec = SweepSpec(**PAIR_KWARGS)
        root = tmp_path / "root"
        chaos = ChaosSpec.parse(
            '{"faults": [{"fault": "error", "cell": 0, "attempt": "*"}]}')
        _run(spec, root, chaos=chaos)
        parked = _run(spec, root, resume=True)
        assert parked.counts == {"done": 0, "cached": 1, "quarantined": 1}
        # --retry-quarantined grants a fresh budget; without the fault
        # armed the cell now completes.
        lifted = _run(spec, root, resume=True, retry_quarantined=True)
        assert lifted.counts == {"done": 1, "cached": 1, "quarantined": 0}
        assert build_report(spec, root)["cells_complete"] == 2

    def test_bad_timeout_rejected(self, tmp_path):
        plan = plan_sweep(SweepSpec(**PAIR_KWARGS), tmp_path / "root")
        with pytest.raises(ValueError, match="timeout"):
            SweepRunner(plan, timeout=0.0)


def _repro_sweep(args: list[str], cwd: Path) -> subprocess.CompletedProcess:
    env = {**os.environ, "PYTHONPATH": str(SRC)}
    return subprocess.run(
        [sys.executable, "-m", "repro", "sweep", *args],
        env=env, cwd=cwd, capture_output=True, text=True, timeout=300,
    )


class TestKillAndResume:
    """The acceptance invariant, end to end through the real CLI."""

    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("killresume")
        spec = SweepSpec(
            name="kill-resume",
            command="profile",
            base={"scale": "1node", "seed": 0},
            axes={"app": ["AMG", "XSBench"],
                  "machine": ["Quartz", "Lassen"]},
        )
        spec_path = base / "spec.json"
        spec.save(spec_path)
        return base, spec, spec_path

    def test_killed_sweep_resumes_bit_identically(self, campaign):
        base, spec, spec_path = campaign
        killed_root = base / "killed"
        clean_root = base / "clean"

        # The orchestrator os._exit(70)s after two verified cells — the
        # in-process stand-in for `kill -9` of the sweep itself.
        killed = _repro_sweep(
            [str(spec_path), "--run-root", str(killed_root), "--jobs", "1",
             "--chaos", '{"faults": [{"fault": "parent-exit",'
                        ' "after_done": 2}]}'],
            base,
        )
        assert killed.returncode == 70, killed.stderr
        journal = SweepJournal(killed_root / JOURNAL_NAME)
        survivors = {
            cell_id for cell_id, last in
            SweepJournal.reduce(journal.read()).items()
            if last["event"] == "done"
        }
        assert len(survivors) == 2
        assert not (killed_root / REPORT_NAME).exists()

        resumed = _repro_sweep(
            [str(spec_path), "--run-root", str(killed_root), "--resume"],
            base,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "2 cached, 2 pending" in resumed.stdout

        # No verified cell was recomputed: each survivor has exactly the
        # one pre-kill "started" and a post-resume "cached" record.
        entries = journal.read()
        for cell_id in survivors:
            starts = [e for e in entries
                      if e.get("cell") == cell_id
                      and e["event"] == "started"]
            assert len(starts) == 1
            assert any(e.get("cell") == cell_id
                       and e["event"] == "cached" for e in entries)

        clean = _repro_sweep(
            [str(spec_path), "--run-root", str(clean_root), "--jobs", "2"],
            base,
        )
        assert clean.returncode == 0, clean.stderr
        assert (killed_root / REPORT_NAME).read_bytes() == \
            (clean_root / REPORT_NAME).read_bytes()
        for cell in spec.expand():
            assert verify_run(killed_root / cell.run_dir_name).config == \
                verify_run(clean_root / cell.run_dir_name).config

    def test_rerun_without_resume_is_refused(self, campaign):
        base, _, spec_path = campaign
        again = _repro_sweep(
            [str(spec_path), "--run-root", str(base / "killed")], base)
        assert again.returncode == 2
        assert "--resume" in again.stderr

    def test_report_mode_runs_nothing(self, campaign):
        base, spec, spec_path = campaign
        before = sorted((base / "killed").rglob("*"))
        report = _repro_sweep(
            [str(spec_path), "--run-root", str(base / "killed"),
             "--report"], base)
        assert report.returncode == 0, report.stderr
        assert "4/4 complete" in report.stdout
        after = sorted((base / "killed").rglob("*"))
        assert before == after  # only the (existing) report file touched
        payload = json.loads((base / "killed" / REPORT_NAME).read_text())
        assert payload["spec_hash"] == spec.content_hash()


# ---------------------------------------------------------------------------
# Cross-process trace stamping
# ---------------------------------------------------------------------------
class TestTraceStamping:
    def test_cell_spans_join_the_sweep_trace(self, tmp_path):
        """In trace mode every cell subprocess inherits the sweep's
        trace id, and the cell's root spans parent under the parent
        process's sweep.run span — one causal tree across processes."""
        from repro import telemetry

        # A schedule cell: the simulator is span-instrumented, so the
        # cell's trace.json is guaranteed non-empty.
        spec = SweepSpec(
            name="traced", command="schedule",
            base={"jobs": 20, "inputs_per_app": 1,
                  "strategies": ["model"], "seed": 0},
            axes={"fault_profile": ["none"]},
        )
        telemetry.configure("trace")
        telemetry.reset()
        try:
            plan = plan_sweep(spec, tmp_path / "root")
            result = SweepRunner(plan, jobs=1, retry=FAST_RETRY).run()
            assert result.ok
            sweep_span = [r for r in telemetry.spans()
                          if r.name == "sweep.run"][0]
            assert sweep_span.trace_id is not None

            trace = json.loads(
                (plan.cells[0].run_dir / "trace.json").read_text()
            )
            events = [e for e in trace["traceEvents"]
                      if e.get("ph") == "X"]
            assert events
            assert {e["args"].get("trace_id") for e in events} \
                == {sweep_span.trace_id}
            roots = [e for e in events
                     if e["args"]["parent_id"] == sweep_span.span_id]
            assert roots  # the cell's top span hangs off sweep.run
        finally:
            telemetry.configure("off")
            telemetry.reset()

    def test_untraced_sweep_ships_no_trace_context(self, tmp_path):
        """Telemetry off (the default): cell payload trace plumbing is
        inert and the cell writes no trace artifact."""
        spec = SweepSpec(**{**PAIR_KWARGS, "axes": {"app": ["AMG"]}})
        plan = plan_sweep(spec, tmp_path / "root")
        result = SweepRunner(plan, jobs=1, retry=FAST_RETRY).run()
        assert result.ok
        assert not (plan.cells[0].run_dir / "trace.json").exists()
