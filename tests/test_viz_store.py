"""Tests for terminal viz, npz store, walltime factor, eval history."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.store import load_npz, save_npz
from repro.frame import Frame
from repro.viz import bar_chart, grouped_bars, heatmap


class TestViz:
    def _frame(self):
        return Frame({"model": ["mean", "xgb"], "mae": [0.2, 0.07],
                      "sos": [0.13, 0.61]})

    def test_bar_chart_contains_labels_and_bars(self):
        text = bar_chart(self._frame(), "model", "mae", title="MAE")
        assert "MAE" in text and "xgb" in text
        assert text.count("|") == 2
        # larger value gets the longer bar
        lines = text.splitlines()[1:]
        assert lines[0].count("#") > lines[1].count("#")

    def test_bar_chart_rejects_negative(self):
        f = Frame({"m": ["a"], "v": [-1.0]})
        with pytest.raises(ValueError):
            bar_chart(f, "m", "v")

    def test_bar_chart_empty(self):
        with pytest.raises(ValueError):
            bar_chart(Frame({"m": [], "v": []}), "m", "v")

    def test_grouped_bars_sections(self):
        text = grouped_bars(self._frame(), "model", ["mae", "sos"])
        assert "[mae]" in text and "[sos]" in text

    def test_grouped_bars_requires_columns(self):
        with pytest.raises(ValueError):
            grouped_bars(self._frame(), "model", [])

    def test_heatmap_renders_grid(self):
        f = Frame({
            "model": ["xgb", "xgb", "lin", "lin"],
            "arch": ["Q", "R", "Q", "R"],
            "mae": [0.1, 0.2, 0.3, 0.4],
        })
        text = heatmap(f, "model", "arch", "mae", invert=True)
        assert "xgb" in text and "Q" in text
        assert "0.100" in text

    def test_heatmap_missing_cell(self):
        f = Frame({"r": ["a"], "c": ["x"], "v": [1.0]})
        text = heatmap(f, "r", "c", "v")
        assert "1.000" in text

    def test_heatmap_all_nan_rejected(self):
        f = Frame({"r": ["a"], "c": ["x"], "v": [np.nan]})
        with pytest.raises(ValueError):
            heatmap(f, "r", "c", "v")


class TestNpzStore:
    def test_roundtrip_exact(self, small_dataset, tmp_path):
        path = tmp_path / "ds.npz"
        save_npz(small_dataset, path)
        back = load_npz(path)
        assert back.frame == small_dataset.frame
        assert back.feature_columns == small_dataset.feature_columns
        np.testing.assert_array_equal(back.X(), small_dataset.X())
        np.testing.assert_array_equal(back.Y(), small_dataset.Y())

    def test_normalizer_preserved(self, small_dataset, tmp_path):
        path = tmp_path / "ds.npz"
        save_npz(small_dataset, path)
        back = load_npz(path)
        assert back.normalizer.means_ == small_dataset.normalizer.means_

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError):
            load_npz(path)


class TestWalltimeFactor:
    def _jobs(self):
        from repro.sched import Job

        systems = ("Quartz", "Ruby", "Lassen", "Corona")

        def job(jid, runtime, nodes=1, submit=0.0):
            return Job(job_id=jid, app="CoMD", uses_gpu=False,
                       nodes_required=nodes,
                       runtimes={s: runtime for s in systems},
                       submit_time=submit)

        # head blocked at t in [0,50); a 30s candidate fits under the
        # shadow with perfect estimates but not at 2x inflation.
        return [
            job(0, 50.0, nodes=2, submit=0.0),
            job(1, 50.0, nodes=2, submit=1.0),
            job(2, 30.0, nodes=1, submit=2.0),
        ]

    def _run(self, factor):
        from repro.sched import ClusterState, Scheduler
        from tests.test_dataset_report import MapStrategy

        cluster = ClusterState({"Quartz": 2, "Ruby": 2})
        strategy = MapStrategy({2: "Quartz"}, default="Quartz")
        sched = Scheduler(strategy, cluster, walltime_factor=factor)
        return sched.run(self._jobs())

    def test_perfect_estimates_backfill(self):
        # job2 targets Quartz; it cannot start (no free node) either
        # way — instead verify via the cross-machine conservative case.
        from repro.sched import ClusterState, Scheduler
        from tests.test_dataset_report import MapStrategy

        jobs = self._jobs()
        cluster = ClusterState({"Quartz": 2, "Ruby": 1})
        strategy = MapStrategy({2: "Ruby"}, default="Quartz")
        ok = Scheduler(strategy, cluster, conservative=True,
                       walltime_factor=1.0).run(list(jobs))
        starts = dict(zip(ok.job_ids, ok.start_times))
        assert starts[2] < 50.0  # 30s fits under the 50s horizon

    def test_inflated_estimates_block_backfill(self):
        from repro.sched import ClusterState, Scheduler
        from tests.test_dataset_report import MapStrategy

        jobs = self._jobs()
        cluster = ClusterState({"Quartz": 2, "Ruby": 1})
        strategy = MapStrategy({2: "Ruby"}, default="Quartz")
        blocked = Scheduler(strategy, cluster, conservative=True,
                            walltime_factor=2.0).run(list(jobs))
        starts = dict(zip(blocked.job_ids, blocked.start_times))
        # Estimated 60s > 50s horizon: conservative mode refuses it.
        assert starts[2] >= 50.0

    def test_factor_validation(self):
        from repro.sched import RoundRobinStrategy, Scheduler

        with pytest.raises(ValueError):
            Scheduler(RoundRobinStrategy(), walltime_factor=0.5)


class TestEventTrace:
    def test_trace_off_by_default(self):
        from repro.sched import ClusterState, Job, RoundRobinStrategy, Scheduler

        systems = ("Quartz", "Ruby", "Lassen", "Corona")
        jobs = [Job(job_id=0, app="CoMD", uses_gpu=False, nodes_required=1,
                    runtimes={s: 5.0 for s in systems})]
        result = Scheduler(RoundRobinStrategy(),
                           ClusterState({s: 1 for s in systems})).run(jobs)
        assert "events" not in result.extra

    def test_trace_records_starts_and_backfills(self):
        from repro.sched import ClusterState, Scheduler
        from tests.test_dataset_report import MapStrategy, Job

        systems = ("Quartz", "Ruby", "Lassen", "Corona")

        def job(jid, runtime, nodes=1, submit=0.0):
            return Job(job_id=jid, app="CoMD", uses_gpu=False,
                       nodes_required=nodes,
                       runtimes={s: runtime for s in systems},
                       submit_time=submit)

        jobs = [job(0, 50.0, nodes=2), job(1, 50.0, nodes=2, submit=1.0),
                job(2, 5.0, nodes=1, submit=2.0)]
        strategy = MapStrategy({2: "Ruby"}, default="Quartz")
        result = Scheduler(strategy, ClusterState({"Quartz": 2, "Ruby": 2}),
                           trace=True).run(jobs)
        kinds = [e[1] for e in result.extra["events"]]
        assert "start" in kinds
        assert "reserve" in kinds
        assert "backfill_start" in kinds
        # Events are (time, kind, job_id, machine) tuples.
        t, kind, jid, machine = result.extra["events"][0]
        assert kind == "start" and machine in systems


class TestEvalHistory:
    def test_train_history_recorded(self):
        from repro.ml import GradientBoostedTrees

        rng = np.random.default_rng(0)
        X, y = rng.normal(size=(100, 3)), rng.normal(size=100)
        m = GradientBoostedTrees(n_estimators=12, max_depth=3,
                                 random_state=0).fit(X, y)
        assert len(m.eval_history_["train_mae"]) == 12
        hist = m.eval_history_["train_mae"]
        assert hist[-1] <= hist[0]

    def test_val_history_with_eval_set(self):
        from repro.ml import GradientBoostedTrees

        rng = np.random.default_rng(0)
        X, y = rng.normal(size=(120, 3)), rng.normal(size=120)
        m = GradientBoostedTrees(n_estimators=10, max_depth=3,
                                 random_state=0)
        m.fit(X[:90], y[:90], eval_set=(X[90:], y[90:]))
        assert len(m.eval_history_["val_mae"]) == 10
