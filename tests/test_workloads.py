"""Tests for job-trace construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import APPLICATIONS
from repro.arch import SYSTEM_ORDER
from repro.workloads import build_workload, poisson_arrivals


class TestPoissonArrivals:
    def test_monotone_nondecreasing(self):
        t = poisson_arrivals(100, rate_per_second=2.0, seed=0)
        assert (np.diff(t) >= 0).all()

    def test_rate_controls_density(self):
        fast = poisson_arrivals(1000, 10.0, seed=0)[-1]
        slow = poisson_arrivals(1000, 1.0, seed=0)[-1]
        assert slow > 5 * fast

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0, 1.0)
        with pytest.raises(ValueError):
            poisson_arrivals(10, 0.0)


class TestBuildWorkload:
    def test_job_count_and_ids(self, small_dataset):
        jobs = build_workload(small_dataset, n_jobs=100, seed=0)
        assert len(jobs) == 100
        assert [j.job_id for j in jobs] == list(range(100))

    def test_runtimes_cover_all_systems(self, small_dataset):
        jobs = build_workload(small_dataset, n_jobs=20, seed=0)
        for job in jobs:
            assert set(job.runtimes) == set(SYSTEM_ORDER)
            assert all(t > 0 for t in job.runtimes.values())

    def test_true_rpv_attached(self, small_dataset):
        jobs = build_workload(small_dataset, n_jobs=20, seed=0)
        for job in jobs:
            assert job.true_rpv is not None
            assert job.true_rpv.max() == pytest.approx(1.0)

    def test_nodes_from_scale(self, small_dataset):
        jobs = build_workload(small_dataset, n_jobs=300, seed=0)
        assert {j.nodes_required for j in jobs} <= {1, 2}
        assert any(j.nodes_required == 2 for j in jobs)

    def test_gpu_flag_matches_app(self, small_dataset):
        jobs = build_workload(small_dataset, n_jobs=100, seed=0)
        for job in jobs:
            assert job.uses_gpu == APPLICATIONS[job.app].gpu_support

    def test_deterministic(self, small_dataset):
        a = build_workload(small_dataset, n_jobs=50, seed=3)
        b = build_workload(small_dataset, n_jobs=50, seed=3)
        assert all(x.runtimes == y.runtimes for x, y in zip(a, b))

    def test_batch_submission_default(self, small_dataset):
        jobs = build_workload(small_dataset, n_jobs=20, seed=0)
        assert all(j.submit_time == 0.0 for j in jobs)

    def test_poisson_arrival_mode(self, small_dataset):
        jobs = build_workload(small_dataset, n_jobs=20, seed=0,
                              arrival_rate=1.0)
        assert any(j.submit_time > 0 for j in jobs)
        submits = [j.submit_time for j in jobs]
        assert submits == sorted(submits)

    def test_predictor_attaches_rpv(self, small_dataset, trained_xgb):
        jobs = build_workload(small_dataset, n_jobs=30, seed=0,
                              predictor=trained_xgb)
        for job in jobs:
            assert job.predicted_rpv is not None
            assert job.predicted_rpv.shape == (4,)

    def test_predictions_correlate_with_truth(self, small_dataset,
                                              trained_xgb):
        jobs = build_workload(small_dataset, n_jobs=300, seed=0,
                              predictor=trained_xgb)
        agree = np.mean([
            int(np.argmin(j.predicted_rpv) == np.argmin(j.true_rpv))
            for j in jobs
        ])
        assert agree > 0.5  # far better than the 0.25 random baseline

    def test_bad_n_jobs(self, small_dataset):
        with pytest.raises(ValueError):
            build_workload(small_dataset, n_jobs=0)
