"""Tests for the Hatchet-substitute profile analysis layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import APPLICATIONS, generate_inputs
from repro.arch import CORONA, LASSEN, QUARTZ
from repro.hatchet_lite import GraphFrame, run_record
from repro.perfsim.config import make_run_config
from repro.profiler import profile_run
from repro.profiler.counters import CANONICAL_FIELDS


@pytest.fixture(scope="module")
def quartz_profile():
    app = APPLICATIONS["XSBench"]
    inp = generate_inputs(app, 1, seed=0)[0]
    config = make_run_config(app, QUARTZ, "1node")
    return profile_run(app, inp, QUARTZ, config, seed=0)


class TestGraphFrame:
    def test_one_row_per_node(self, quartz_profile):
        gf = GraphFrame(quartz_profile)
        assert gf.dataframe.num_rows == quartz_profile.root.num_nodes

    def test_counter_columns_present(self, quartz_profile):
        gf = GraphFrame(quartz_profile)
        for name in quartz_profile.counter_names:
            assert name in gf.dataframe

    def test_hot_nodes_sorted(self, quartz_profile):
        gf = GraphFrame(quartz_profile)
        hot = gf.hot_nodes("PAPI_TOT_INS", top=3)
        vals = hot["PAPI_TOT_INS"]
        assert (np.diff(vals) <= 0).all()
        # XSBench's dominant kernel is the cross-section lookup.
        assert "xs_lookup" in hot["path"][0]

    def test_hot_nodes_unknown_metric(self, quartz_profile):
        with pytest.raises(KeyError):
            GraphFrame(quartz_profile).hot_nodes("nope")

    def test_filter_prunes_tree_and_frame(self, quartz_profile):
        gf = GraphFrame(quartz_profile)
        total = gf.dataframe["PAPI_TOT_INS"].sum()
        big = gf.filter(
            lambda n: n.metrics.get("PAPI_TOT_INS", 0) > 0.2 * total
        )
        assert big.dataframe.num_rows < gf.dataframe.num_rows

    def test_exclusive_fraction_sums_to_one(self, quartz_profile):
        gf = GraphFrame(quartz_profile)
        frac = gf.exclusive_fraction("PAPI_TOT_INS")
        assert float(np.sum(frac["fraction"])) == pytest.approx(1.0)


class TestRunRecord:
    def test_contains_meta_and_canonical_fields(self, quartz_profile):
        rec = run_record(quartz_profile)
        for key in ("app", "input", "machine", "scale", "nodes", "cores",
                    "uses_gpu", "time_seconds"):
            assert key in rec
        for field in CANONICAL_FIELDS:
            assert field in rec

    def test_gpu_run_decodes_gpu_counters(self):
        app = APPLICATIONS["CANDLE"]
        inp = generate_inputs(app, 1, seed=0)[0]
        for machine in (LASSEN, CORONA):
            config = make_run_config(app, machine, "1node")
            p = profile_run(app, inp, machine, config, seed=0)
            rec = run_record(p)
            assert rec["uses_gpu"] == 1.0
            # fp32-dominated tensor code
            assert rec["fp_sp"] > rec["fp_dp"]

    def test_ratio_consistency(self, quartz_profile):
        rec = run_record(quartz_profile)
        total = rec["total_instructions"]
        mix_sum = (rec["branch"] + rec["load"] + rec["store"] +
                   rec["fp_sp"] + rec["fp_dp"] + rec["int_arith"])
        assert 0 < mix_sum < 1.4 * total  # ratios sane despite biases

    def test_cross_arch_records_comparable(self):
        """The same run decoded on different architectures must produce
        canonical values in the same ballpark (the paper's premise that
        similarly-named counters are comparable)."""
        app = APPLICATIONS["CoMD"]
        inp = generate_inputs(app, 1, seed=0)[0]
        recs = {}
        for machine in (QUARTZ, LASSEN):
            config = make_run_config(app, machine, "1node")
            recs[machine.name] = run_record(
                profile_run(app, inp, machine, config, seed=0)
            )
        r_q = recs["Quartz"]["branch"] / recs["Quartz"]["total_instructions"]
        r_l = recs["Lassen"]["branch"] / recs["Lassen"]["total_instructions"]
        assert 0.5 < r_q / r_l < 2.0
