"""Tests for cross-profile analysis (flat profile, diff, cross-arch)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import APPLICATIONS, generate_inputs
from repro.arch import CORONA, LASSEN, QUARTZ, RUBY
from repro.hatchet_lite import cross_arch_table, diff_profiles, flat_profile
from repro.perfsim.config import make_run_config
from repro.profiler import profile_run


def _profile(app_name="AMG", machine=QUARTZ, scale="1node", seed=0):
    app = APPLICATIONS[app_name]
    inp = generate_inputs(app, 1, seed=seed)[0]
    config = make_run_config(app, machine, scale)
    return profile_run(app, inp, machine, config, seed=seed)


class TestFlatProfile:
    def test_fractions_sum_to_one(self):
        flat = flat_profile(_profile(), "PAPI_TOT_INS")
        assert float(np.sum(flat["fraction"])) == pytest.approx(1.0)

    def test_sorted_descending(self):
        flat = flat_profile(_profile(), "PAPI_TOT_INS")
        vals = flat["PAPI_TOT_INS"]
        assert (np.diff(vals) <= 1e-9).all()

    def test_dominant_kernel_first(self):
        flat = flat_profile(_profile("XSBench"), "PAPI_TOT_INS")
        assert flat["function"][0] == "xs_lookup"

    def test_missing_metric(self):
        with pytest.raises(KeyError):
            flat_profile(_profile(), "nonexistent")


class TestDiffProfiles:
    def test_self_diff_is_identity(self):
        p = _profile()
        diff = diff_profiles(p, p, "PAPI_TOT_INS")
        ratios = diff["ratio"][np.asarray(diff["value_a"]) > 0]
        np.testing.assert_allclose(ratios.astype(float), 1.0)

    def test_diff_across_scales_detects_change(self):
        a = _profile(scale="1core")
        b = _profile(scale="1node")
        diff = diff_profiles(a, b, "PAPI_TOT_INS")
        # per-rank counters shrink at scale; ratios below 1
        finite = np.asarray(
            [r for r in diff["ratio"] if np.isfinite(r) and r > 0]
        )
        assert (finite < 1.0).all()

    def test_sorted_by_abs_difference(self):
        a = _profile(scale="1core")
        b = _profile(scale="1node")
        diff = diff_profiles(a, b, "PAPI_TOT_INS")
        vals = diff["abs_diff"]
        assert (np.diff(vals) <= 1e-9).all()

    def test_missing_metric(self):
        p = _profile()
        with pytest.raises(KeyError):
            diff_profiles(p, p, "nope")


class TestCrossArchTable:
    def test_one_row_per_machine(self):
        profiles = [
            _profile(machine=m) for m in (QUARTZ, RUBY, LASSEN, CORONA)
        ]
        table = cross_arch_table(profiles)
        assert table.num_rows == 4
        assert set(table["profiler"]) == {"papi", "cupti", "rocprof"}

    def test_canonical_fields_present(self):
        table = cross_arch_table([_profile(machine=QUARTZ)])
        for field in ("total_instructions", "branch", "l2_load_miss",
                      "mem_stall_cycles", "time_seconds"):
            assert field in table

    def test_mixed_apps_rejected(self):
        with pytest.raises(ValueError):
            cross_arch_table([_profile("AMG"), _profile("CoMD")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cross_arch_table([])

    def test_branch_ratios_comparable_across_archs(self):
        profiles = [_profile(machine=m) for m in (QUARTZ, RUBY)]
        table = cross_arch_table(profiles)
        ratios = np.asarray(table["branch"]) / np.asarray(
            table["total_instructions"]
        )
        assert ratios.max() / ratios.min() < 2.0
