"""Zero-shot serving: inline machine descriptors over the wire.

The contract pinned here: a ``/predict`` payload carrying a
``machines`` array of full descriptors is answered with one score and
one **non-null uncertainty** per machine — including machines the
4-slot RPV head has never heard of — while classic payloads keep the
exact RPV answer they always had.  Runs trained without ``--zeroshot``
refuse such requests with a typed 503 instead of guessing.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.arch.descriptor import descriptor_from_spec
from repro.arch.machines import MACHINES, SYSTEM_ORDER
from repro.artifacts import RunDir
from repro.config import ExperimentConfig, TrainConfig
from repro.core.zeroshot import DescriptorConditionedPredictor
from repro.dataset.longform import build_longform
from repro.errors import ArtifactError, ServeError
from repro.resilience import ResilientPredictor
from repro.serve import (
    ModelManager,
    PredictionService,
    parse_predict_payload,
    synthesize_payloads,
)
from repro.serve.model_manager import ZEROSHOT_MODEL_NAME


def _descriptor_payload(machine, **overrides):
    payload = descriptor_from_spec(MACHINES[machine]).to_dict()
    payload.update(overrides)
    return payload


def make_zeroshot_run(root, predictor, zeroshot, dataset, seed=0) -> str:
    """Finalize a train run dir carrying BOTH heads (the --zeroshot
    layout): predictor.pkl + zeroshot.pkl + resilience.json."""
    experiment = ExperimentConfig("train", TrainConfig(seed=seed,
                                                       zeroshot=True))
    run = RunDir.create(root, experiment)
    predictor.save(run.file("predictor.pkl"))
    zeroshot.save(run.file(ZEROSHOT_MODEL_NAME))
    resilient = ResilientPredictor.from_training(predictor, dataset)
    run.save_json("resilience.json", {
        "feature_fill": [float(v) for v in resilient.feature_fill],
        "mean_rpv": [float(v) for v in resilient.mean_rpv],
    })
    run.finalize()
    return experiment.content_hash()


@pytest.fixture(scope="module")
def zeroshot_head(small_dataset) -> DescriptorConditionedPredictor:
    """Trained with Corona held out, so serving it is truly zero-shot."""
    longform = build_longform(small_dataset).exclude_machine("Corona")
    return DescriptorConditionedPredictor.train(
        longform, n_estimators=40, max_depth=4, n_quantile_rounds=40,
    )


@pytest.fixture(scope="module")
def zs_registry(tmp_path_factory, trained_xgb, zeroshot_head,
                small_dataset):
    root = tmp_path_factory.mktemp("zs_registry")
    chash = make_zeroshot_run(root, trained_xgb, zeroshot_head,
                              small_dataset)
    return root, chash


@pytest.fixture(scope="module")
def payload():
    return synthesize_payloads(1, seed=42)[0]


def make_service(registry_root, **kwargs) -> PredictionService:
    manager = ModelManager(registry_root, poll_interval_s=0.05)
    manager.promote(manager.resolve_hash(None))
    return PredictionService(manager, **kwargs)


class TestProtocolMachines:
    def test_machines_parsed_into_descriptors(self, payload):
        request = parse_predict_payload({
            "record": payload["record"],
            "machines": [_descriptor_payload("Ruby")],
        })
        assert len(request.machines) == 1
        assert request.machines[0].name == "Ruby"

    def test_absent_machines_is_none(self, payload):
        request = parse_predict_payload({"record": payload["record"]})
        assert request.machines is None

    @pytest.mark.parametrize("bad", [[], {}, "Ruby", 7])
    def test_rejects_non_list_or_empty(self, payload, bad):
        with pytest.raises(ServeError, match="non-empty array") as err:
            parse_predict_payload({"record": payload["record"],
                                   "machines": bad})
        assert err.value.reason == "bad-descriptor"

    def test_rejects_malformed_descriptor_with_index(self, payload):
        broken = _descriptor_payload("Ruby")
        broken.pop("mem_bw_gbs")
        with pytest.raises(ServeError, match=r"'machines'\[1\]") as err:
            parse_predict_payload({
                "record": payload["record"],
                "machines": [_descriptor_payload("Quartz"), broken],
            })
        assert err.value.reason == "bad-descriptor"

    def test_rejects_duplicate_names(self, payload):
        with pytest.raises(ServeError, match="repeats name.*Ruby") as err:
            parse_predict_payload({
                "record": payload["record"],
                "machines": [_descriptor_payload("Ruby"),
                             _descriptor_payload("Ruby")],
            })
        assert err.value.reason == "bad-descriptor"

    def test_rejects_oversized_list(self, payload):
        machines = [_descriptor_payload("Ruby", name=f"m{i}")
                    for i in range(65)]
        with pytest.raises(ServeError, match="limit 64"):
            parse_predict_payload({"record": payload["record"],
                                   "machines": machines})

    def test_unknown_keys_still_rejected(self, payload):
        with pytest.raises(ServeError, match="unknown request key"):
            parse_predict_payload({
                "record": payload["record"],
                "machines": [_descriptor_payload("Ruby")],
                "machine": "Ruby",
            })


class TestZeroShotServing:
    def test_scores_inline_machines(self, zs_registry, payload):
        root, chash = zs_registry
        service = make_service(root)
        response = asyncio.run(service.handle_predict({
            "record": payload["record"],
            "machines": [_descriptor_payload("Ruby"),
                         _descriptor_payload("Quartz")],
        }))
        assert response["tier"] == "zeroshot"
        assert response["machines"] == ["Ruby", "Quartz"]
        assert response["model_hash"] == chash
        assert len(response["scores"]) == 2
        assert all(np.isfinite(response["scores"]))
        assert all(s >= 0 for s in response["uncertainty"])
        assert set(response["ranked"]) == {"Ruby", "Quartz"}
        assert response["recommended"] == response["ranked"][0]

    def test_held_out_machine_gets_non_null_uncertainty(
        self, zs_registry, payload, zeroshot_head
    ):
        """Corona never appeared in the zero-shot head's training rows,
        yet the service scores it with a real spread — the acceptance
        criterion for onboarding an unseen machine."""
        assert "Corona" not in zeroshot_head.train_targets
        service = make_service(zs_registry[0])
        response = asyncio.run(service.handle_predict({
            "record": payload["record"],
            "machines": [_descriptor_payload("Corona")],
        }))
        assert response["machines"] == ["Corona"]
        assert np.isfinite(response["scores"][0])
        assert response["uncertainty"][0] is not None
        assert np.isfinite(response["uncertainty"][0])

    def test_invented_machine_scored(self, zs_registry, payload):
        ghost = _descriptor_payload("Ruby", name="RubyPrime")
        ghost["cores"] *= 2
        service = make_service(zs_registry[0])
        response = asyncio.run(service.handle_predict({
            "record": payload["record"], "machines": [ghost],
        }))
        assert response["recommended"] == "RubyPrime"
        assert np.isfinite(response["scores"][0])

    def test_features_path_works_too(self, zs_registry, small_dataset):
        """Pre-featurized rows ride the same zero-shot path as records."""
        service = make_service(zs_registry[0])
        features = [float(v) for v in small_dataset.X()[0]]
        response = asyncio.run(service.handle_predict({
            "features": features,
            "machines": [_descriptor_payload("Lassen")],
        }))
        assert response["tier"] == "zeroshot"
        assert np.isfinite(response["scores"][0])

    def test_features_width_validated(self, zs_registry):
        service = make_service(zs_registry[0])
        with pytest.raises(ServeError, match="features"):
            asyncio.run(service.handle_predict({
                "features": [1.0, 2.0],
                "machines": [_descriptor_payload("Lassen")],
            }))

    def test_classic_requests_unchanged(self, zs_registry, payload):
        """The RPV path must not notice the zero-shot head exists."""
        service = make_service(zs_registry[0])
        response = asyncio.run(
            service.handle_predict(dict(payload))
        )
        assert response["tier"] == "model"
        assert len(response["rpv"]) == len(SYSTEM_ORDER)

    def test_ranking_orders_by_score(self, zs_registry, payload):
        service = make_service(zs_registry[0])
        response = asyncio.run(service.handle_predict({
            "record": payload["record"],
            "machines": [_descriptor_payload(n) for n in SYSTEM_ORDER],
        }))
        by_name = dict(zip(response["machines"], response["scores"]))
        ranked_scores = [by_name[n] for n in response["ranked"]]
        assert ranked_scores == sorted(ranked_scores)


class TestRunsWithoutZeroShotHead:
    def test_typed_503(self, registry_without_head, payload):
        service = make_service(registry_without_head)
        with pytest.raises(ServeError, match="retrain with --zeroshot") \
                as err:
            asyncio.run(service.handle_predict({
                "record": payload["record"],
                "machines": [_descriptor_payload("Ruby")],
            }))
        assert err.value.code == 503
        assert err.value.reason == "no-zeroshot-model"

    def test_describe_reports_head_presence(
        self, registry_without_head, zs_registry
    ):
        plain = make_service(registry_without_head)
        armed = make_service(zs_registry[0])
        assert plain.manager.active.describe()["zeroshot"] is False
        assert armed.manager.active.describe()["zeroshot"] is True


@pytest.fixture(scope="module")
def registry_without_head(tmp_path_factory, trained_xgb, small_dataset):
    """A registry whose armed run predates --zeroshot (no zeroshot.pkl)."""
    root = tmp_path_factory.mktemp("plain_registry")
    experiment = ExperimentConfig("train", TrainConfig(seed=0))
    run = RunDir.create(root, experiment)
    trained_xgb.save(run.file("predictor.pkl"))
    resilient = ResilientPredictor.from_training(trained_xgb,
                                                 small_dataset)
    run.save_json("resilience.json", {
        "feature_fill": [float(v) for v in resilient.feature_fill],
        "mean_rpv": [float(v) for v in resilient.mean_rpv],
    })
    run.finalize()
    return root


class TestArtifactValidation:
    def test_corrupt_zeroshot_pickle_rejected(self, tmp_path, trained_xgb,
                                              small_dataset):
        """A run dir whose zeroshot.pkl is not a usable head must fail
        at load time, not at first request."""
        import pickle

        experiment = ExperimentConfig("train", TrainConfig(seed=9))
        run = RunDir.create(tmp_path, experiment)
        trained_xgb.save(run.file("predictor.pkl"))
        with open(run.file(ZEROSHOT_MODEL_NAME), "wb") as fh:
            pickle.dump({"not": "a head"}, fh)
        resilient = ResilientPredictor.from_training(trained_xgb,
                                                     small_dataset)
        run.save_json("resilience.json", {
            "feature_fill": [float(v) for v in resilient.feature_fill],
            "mean_rpv": [float(v) for v in resilient.mean_rpv],
        })
        run.finalize()
        manager = ModelManager(tmp_path, poll_interval_s=0.05)
        with pytest.raises(ArtifactError):
            manager.load_model(manager.resolve_hash(None))

    def test_head_without_uncertainty_rejected(self, tmp_path,
                                               trained_xgb,
                                               small_dataset):
        """The wire contract promises non-null uncertainty, so a head
        that cannot produce it is an invalid artifact."""
        longform = build_longform(small_dataset)
        no_heads = DescriptorConditionedPredictor.train(
            longform, model="linear",
        )
        experiment = ExperimentConfig("train", TrainConfig(seed=10))
        run = RunDir.create(tmp_path, experiment)
        trained_xgb.save(run.file("predictor.pkl"))
        no_heads.save(run.file(ZEROSHOT_MODEL_NAME))
        resilient = ResilientPredictor.from_training(trained_xgb,
                                                     small_dataset)
        run.save_json("resilience.json", {
            "feature_fill": [float(v) for v in resilient.feature_fill],
            "mean_rpv": [float(v) for v in resilient.mean_rpv],
        })
        run.finalize()
        manager = ModelManager(tmp_path, poll_interval_s=0.05)
        with pytest.raises(ArtifactError, match="uncertainty"):
            manager.load_model(manager.resolve_hash(None))
