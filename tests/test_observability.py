"""Request-level observability: SLO burn engine, flight recorder,
Prometheus exposition, and the trace-context plumbing they ride on.

Everything here is deterministic by construction: the SLO layers take
an injected clock, the flight recorder is driven synchronously, and the
exposition checks parse the exporter's own output — no wall-clock
assertions anywhere.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro import telemetry
from repro.errors import TelemetryError
from repro.serve.admission import AdmissionController
from repro.telemetry import flightrec
from repro.telemetry.flightrec import FlightRecorder
from repro.telemetry.report import format_slo_table
from repro.telemetry.slo import (
    BurnAlert,
    BurnRateTracker,
    SLOShedPolicy,
    SLOSpec,
    histogram_good_total,
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.configure("off")
    telemetry.reset()
    flightrec.disable()
    flightrec.recorder().clear()
    yield
    telemetry.configure("off")
    telemetry.reset()
    flightrec.disable()
    flightrec.recorder().clear()


def _load_prom_checker():
    """The CI exposition checker, imported straight from tools/."""
    path = Path(__file__).resolve().parent.parent / "tools" \
        / "check_prometheus.py"
    spec = importlib.util.spec_from_file_location("check_prometheus", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


LATENCY_SPEC = SLOSpec(
    name="predict-latency", objective="latency", target=0.9,
    histogram="serve.http.predict.seconds", threshold_s=0.05,
)


# ---------------------------------------------------------------------------
# SLO specs
# ---------------------------------------------------------------------------
class TestSLOSpec:
    def test_error_budget_is_target_complement(self):
        assert LATENCY_SPEC.error_budget == pytest.approx(0.1)

    def test_round_trips_through_json(self):
        payload = LATENCY_SPEC.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert SLOSpec.from_dict(payload) == LATENCY_SPEC

    @pytest.mark.parametrize("kwargs,match", [
        (dict(name="", objective="latency", target=0.9, threshold_s=1.0),
         "non-empty name"),
        (dict(name="x", objective="throughput", target=0.9),
         "unknown objective"),
        (dict(name="x", objective="availability", target=1.0),
         "target must be in"),
        (dict(name="x", objective="availability", target=0.0),
         "target must be in"),
        (dict(name="x", objective="latency", target=0.9),
         "threshold_s"),
        (dict(name="x", objective="latency", target=0.9, threshold_s=0),
         "threshold_s"),
    ])
    def test_validation_is_typed(self, kwargs, match):
        with pytest.raises(TelemetryError, match=match):
            SLOSpec(**kwargs)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(TelemetryError, match="unknown key"):
            SLOSpec.from_dict({"name": "x", "objective": "availability",
                               "target": 0.9, "burn": 2})


# ---------------------------------------------------------------------------
# Burn-rate math (injected clock; every number is exact)
# ---------------------------------------------------------------------------
class TestBurnRateTracker:
    def test_histogram_good_total_le_semantics(self):
        state = {"edges": [0.01, 0.05, 0.25], "counts": [3, 4, 2],
                 "count": 10}  # 1 overflow observation beyond the edges
        assert histogram_good_total(state, 0.05) == (7, 10)
        # Threshold inside a bucket: the whole bucket reads as bad.
        assert histogram_good_total(state, 0.04) == (3, 10)
        assert histogram_good_total(state, 1.0) == (9, 10)

    def test_windowed_burn_is_exact(self):
        clock = [0.0]
        tracker = BurnRateTracker(LATENCY_SPEC, clock=lambda: clock[0])
        # 100 requests, 80 good, all in the first 10 seconds.
        tracker.record(80, 100, now=10.0)
        clock[0] = 10.0
        # bad fraction 0.2 over any window covering all traffic;
        # budget 0.1 -> burn 2.0.
        assert tracker.bad_fraction(60.0) == pytest.approx(0.2)
        assert tracker.burn_rate(60.0) == pytest.approx(2.0)
        assert tracker.budget_remaining(60.0) == pytest.approx(-1.0)
        assert tracker.window_total(60.0) == 100

    def test_window_excludes_old_traffic(self):
        clock = [0.0]
        tracker = BurnRateTracker(LATENCY_SPEC, clock=lambda: clock[0])
        tracker.record(50, 100, now=10.0)   # terrible early traffic
        tracker.record(150, 200, now=100.0)  # then 100 perfect requests
        clock[0] = 100.0
        # A 30s window baselines at the t=10 sample: only the clean
        # 100 requests are inside it.
        assert tracker.bad_fraction(30.0) == pytest.approx(0.0)
        assert tracker.window_total(30.0) == 100
        # The full-history window still sees the early badness.
        assert tracker.bad_fraction(1000.0) == pytest.approx(0.25)

    def test_young_tracker_reads_zero_burn(self):
        tracker = BurnRateTracker(LATENCY_SPEC, clock=lambda: 0.0)
        assert tracker.burn_rate(60.0) == 0.0
        assert tracker.budget_remaining(60.0) == 1.0

    def test_horizon_prunes_but_keeps_baseline(self):
        tracker = BurnRateTracker(LATENCY_SPEC, clock=lambda: 0.0,
                                  horizon_s=100.0)
        for i in range(1, 1001):
            tracker.record(i, i, now=float(i))
        assert len(tracker._samples) < 200  # pruned, not unbounded
        assert tracker.window_total(50.0, now=1000.0) == 50

    def test_observe_histogram_requires_latency_spec(self):
        spec = SLOSpec(name="avail", objective="availability", target=0.99)
        tracker = BurnRateTracker(spec, clock=lambda: 0.0)
        with pytest.raises(TelemetryError, match="no latency threshold"):
            tracker.observe_histogram({"edges": [], "counts": [],
                                       "count": 0})

    def test_observe_histogram_feeds_tracker(self):
        tracker = BurnRateTracker(LATENCY_SPEC, clock=lambda: 0.0)
        tracker.observe_histogram(
            {"edges": [0.05, 0.5], "counts": [9, 1], "count": 10},
            now=1.0,
        )
        assert tracker.bad_fraction(60.0, now=1.0) == pytest.approx(0.1)
        assert tracker.burn_rate(60.0, now=1.0) == pytest.approx(1.0)


class TestBurnAlert:
    def test_fires_only_when_both_windows_burn(self):
        clock = [0.0]
        tracker = BurnRateTracker(LATENCY_SPEC, clock=lambda: clock[0])
        alert = BurnAlert(name="page", burn_threshold=2.0,
                          fast_window_s=60.0, slow_window_s=600.0)
        # Clean hour of traffic, then a bad burst in the last minute.
        tracker.record(1000, 1000, now=3590.0)
        tracker.record(1000, 1050, now=3650.0)
        clock[0] = 3650.0
        result = alert.evaluate(tracker)
        # Fast window: 50 bad / 50 -> burn 10; slow window dilutes the
        # burst below the bar -> the alert must NOT fire on the blip.
        assert result["fast_burn"] == pytest.approx(10.0)
        assert result["slow_burn"] < 2.0
        assert result["firing"] is False
        # Sustained burn moves the slow window too -> fires.
        tracker.record(1000, 1600, now=4200.0)
        clock[0] = 4200.0
        assert alert.evaluate(tracker)["firing"] is True


# ---------------------------------------------------------------------------
# Shed policy + admission integration
# ---------------------------------------------------------------------------
class TestSLOShedPolicy:
    def _policy(self, clock, **kwargs):
        kwargs.setdefault("fast_window_s", 5.0)
        kwargs.setdefault("slow_window_s", 30.0)
        return SLOShedPolicy(LATENCY_SPEC, clock=clock, **kwargs)

    def test_validation_is_typed(self):
        with pytest.raises(TelemetryError, match="fast_window_s"):
            SLOShedPolicy(LATENCY_SPEC, fast_window_s=10.0,
                          slow_window_s=5.0)
        with pytest.raises(TelemetryError, match="degrade_burn"):
            SLOShedPolicy(LATENCY_SPEC, degrade_burn=4.0, shed_burn=1.0)

    def test_full_before_any_traffic(self):
        policy = self._policy(lambda: 0.0)
        assert policy.decision() == "full"

    def test_decision_ladder_is_deterministic(self):
        clock = [0.0]
        policy = self._policy(lambda: clock[0], degrade_burn=1.0,
                              shed_burn=4.0)
        # 100 requests: 96 under the threshold, 4 over -> bad fraction
        # 0.04, burn 0.4 -> full.
        for _ in range(96):
            policy.observe(0.01)
        for _ in range(4):
            policy.observe(0.10)
        assert policy.decision() == "full"
        # 20 more bad -> 24 bad / 120 -> burn 2.0: degrade, not shed.
        for _ in range(20):
            policy.observe(0.10)
        assert policy.decision() == "degraded"
        # Sustained all-bad traffic pushes both windows past 4x: shed.
        for _ in range(200):
            policy.observe(0.10)
        assert policy.decision() == "shed"

    def test_not_ok_counts_as_bad_regardless_of_latency(self):
        policy = self._policy(lambda: 0.0)
        for _ in range(10):
            policy.observe(0.001, ok=False)
        assert policy.tracker.bad_fraction(5.0) == pytest.approx(1.0)

    def test_snapshot_is_json_clean(self):
        policy = self._policy(lambda: 0.0)
        policy.observe(0.01)
        snapshot = policy.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["decision"] == "full"
        assert set(snapshot["windows"]) == {"fast", "slow"}

    def test_admission_slo_mode_decisions(self):
        clock = [0.0]
        policy = self._policy(lambda: clock[0], degrade_burn=1.0,
                              shed_burn=4.0)
        controller = AdmissionController(soft_limit=10, hard_limit=20,
                                         slo=policy)
        assert controller.state() == "full"
        for _ in range(50):
            policy.observe(1.0)  # every request blows the threshold
        # burn = 1.0 / 0.1 = 10x in both windows -> shed, although the
        # in-flight count is zero.
        assert controller.state() == "shed"
        assert controller.decide() == "shed"
        assert controller.snapshot()["slo"]["decision"] == "shed"

    def test_admission_hard_limit_backstops_slo_mode(self):
        policy = self._policy(lambda: 0.0)
        controller = AdmissionController(soft_limit=10, hard_limit=20,
                                         slo=policy)
        controller.inflight = 20
        assert controller.state() == "shed"  # memory safety beats burn

    def test_admission_soft_limit_still_degrades_in_slo_mode(self):
        policy = self._policy(lambda: 0.0)
        controller = AdmissionController(soft_limit=4, hard_limit=20,
                                         slo=policy)
        controller.inflight = 4
        assert controller.state() == "degraded"

    def test_feature_off_is_watermark_identical(self):
        """slo=None must reproduce the pure watermark controller."""
        plain = AdmissionController(soft_limit=2, hard_limit=4)
        wired = AdmissionController(soft_limit=2, hard_limit=4, slo=None)
        for inflight in range(6):
            plain.inflight = wired.inflight = inflight
            assert plain.state() == wired.state()
        wired.observe(99.0, ok=False)  # no-op without a policy
        assert "slo" not in wired.snapshot()


# ---------------------------------------------------------------------------
# SLO report rendering
# ---------------------------------------------------------------------------
class TestSLOReport:
    def test_budget_table_rows(self):
        clock = [0.0]
        policy = SLOShedPolicy(LATENCY_SPEC, fast_window_s=5.0,
                               slow_window_s=30.0,
                               clock=lambda: clock[0])
        for _ in range(8):
            policy.observe(0.01)
        for _ in range(2):
            policy.observe(0.2)
        text = format_slo_table(policy.snapshot())
        assert "predict-latency" in text
        assert "fast 5s" in text and "slow 30s" in text
        assert "burn" in text and "budget_left" in text
        # burn = 0.2 / 0.1 = 2.0 in both windows
        assert "2.000" in text

    def test_empty_payload_reads_as_no_state(self):
        assert format_slo_table([]) == "no SLO state recorded"
        assert format_slo_table({}) == "no SLO state recorded"

    def test_run_report_renders_slo_section(self):
        policy = SLOShedPolicy(LATENCY_SPEC, clock=lambda: 0.0)
        policy.observe(0.01)
        text = telemetry.render_run_report(
            {"command": "serve", "config_hash": "abc", "seed": 0},
            {"slo": policy.snapshot()},
            None,
        )
        assert "SLO error-budget status:" in text
        assert "predict-latency" in text


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------
class TestFlightRecorder:
    def test_disabled_record_is_a_noop(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record("event", n=1)
        assert len(recorder) == 0

    def test_ring_is_bounded_oldest_falls_off(self):
        recorder = FlightRecorder(capacity=3, enabled=True)
        for i in range(10):
            recorder.record("event", i=i)
        dump = recorder.dump("test")
        assert dump["capacity"] == 3
        assert dump["recorded"] == 10
        assert [e["i"] for e in dump["events"]] == [7, 8, 9]

    def test_dump_shape_is_versioned_and_json_clean(self):
        recorder = FlightRecorder(capacity=8, enabled=True)
        recorder.record("model-swap", config_hash="abc")
        dump = recorder.dump("shed-transition")
        assert dump["flight_format_version"] == 1
        assert dump["reason"] == "shed-transition"
        assert dump["dumped_at_unix_ns"] > 0
        assert dump["events"][0]["kind"] == "model-swap"
        assert dump["events"][0]["ts_unix_ns"] > 0
        assert json.loads(json.dumps(dump)) == dump

    def test_module_recorder_enable_disable(self):
        flightrec.enable(16)
        assert flightrec.enabled()
        flightrec.record("boundary", layer="test")
        assert flightrec.dump("manual")["events"][-1]["kind"] == "boundary"
        flightrec.disable()
        flightrec.record("after-disable")
        kinds = [e["kind"] for e in flightrec.dump("manual")["events"]]
        assert "after-disable" not in kinds

    def test_resize_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=8, enabled=True).enable(0)

    def test_sched_run_drops_a_boundary_record(self):
        from repro.sched import (
            ClusterState,
            Job,
            RoundRobinStrategy,
            Scheduler,
        )

        flightrec.enable(16)
        jobs = [Job(job_id=0, app="a", uses_gpu=False, nodes_required=1,
                    runtimes={"X": 1.0})]
        Scheduler(RoundRobinStrategy(), ClusterState({"X": 2})).run(jobs)
        events = flightrec.dump("manual")["events"]
        assert any(e["kind"] == "sched-run" and e["jobs"] == 1
                   for e in events)


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------
class TestPrometheusExposition:
    def test_counter_gauge_histogram_families(self):
        telemetry.configure("metrics")
        telemetry.counter("serve.admission.full").inc(5)
        telemetry.gauge("serve.inflight").set(2)
        hist = telemetry.histogram("promtest.predict.seconds",
                                   (0.01, 0.1))
        for value in (0.005, 0.05, 0.5):
            hist.observe(value)
        text = telemetry.prometheus_text(telemetry.snapshot())
        lines = text.splitlines()
        assert "# TYPE repro_serve_admission_full_total counter" in lines
        assert "repro_serve_admission_full_total 5" in lines
        assert "repro_serve_inflight 2.0" in lines
        # le-bucket semantics: cumulative counts, +Inf equals _count.
        assert 'repro_promtest_predict_seconds_bucket{le="0.01"} 1' \
            in lines
        assert 'repro_promtest_predict_seconds_bucket{le="0.1"} 2' \
            in lines
        assert 'repro_promtest_predict_seconds_bucket{le="+Inf"} 3' \
            in lines
        assert "repro_promtest_predict_seconds_count 3" in lines

    def test_sample_escapes_label_values(self):
        line = telemetry.prometheus_sample(
            "m", {"path": 'a"b\\c\nd'}, 1
        )
        assert line == 'm{path="a\\"b\\\\c\\nd"} 1'

    def test_empty_snapshot_renders_empty_document(self):
        assert telemetry.prometheus_text(
            {"counters": {}, "gauges": {}, "histograms": {}}
        ) == ""

    def test_checker_accepts_exporter_output(self):
        checker = _load_prom_checker()
        telemetry.configure("metrics")
        telemetry.counter("a.b").inc(2)
        hist = telemetry.histogram("lat.seconds", (0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        text = telemetry.prometheus_text(telemetry.snapshot())
        assert checker.check_exposition(text) == []

    def test_checker_catches_seeded_corruption(self):
        checker = _load_prom_checker()
        telemetry.configure("metrics")
        hist = telemetry.histogram("lat.seconds", (0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = telemetry.prometheus_text(telemetry.snapshot())
        broken = text.replace('le="+Inf"} 2', 'le="+Inf"} 1')
        assert any("monotone" in e or "_count" in e
                   for e in checker.check_exposition(broken))
        assert checker.check_exposition("not a metric line\n")
        assert checker.check_exposition("") == [
            "document contains no samples"
        ]
