"""Tests for queue policies (R1/R2), SWF traces, and extended metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sched import (
    ClusterState,
    FCFSPolicy,
    Job,
    LJFPolicy,
    RoundRobinStrategy,
    Scheduler,
    SJFPolicy,
    SmallestFirstPolicy,
    WidestFirstPolicy,
    policy_by_name,
)
from repro.sched.metrics import (
    jain_fairness,
    machine_utilization,
    makespan,
    utilization_timeline,
)
from repro.workloads.swf import jobs_from_swf, read_swf, write_swf

SYSTEMS = ("Quartz", "Ruby", "Lassen", "Corona")


def _job(job_id, runtime=10.0, nodes=1, submit=0.0):
    return Job(
        job_id=job_id, app="CoMD", uses_gpu=False, nodes_required=nodes,
        runtimes={s: runtime for s in SYSTEMS}, submit_time=submit,
    )


class TestPolicies:
    def test_fcfs_orders_by_submission(self):
        jobs = [_job(0, submit=5.0), _job(1, submit=1.0)]
        keys = sorted(jobs, key=FCFSPolicy().key)
        assert keys[0].job_id == 1

    def test_sjf_orders_by_best_runtime(self):
        jobs = [_job(0, runtime=50.0), _job(1, runtime=5.0)]
        keys = sorted(jobs, key=SJFPolicy().key)
        assert keys[0].job_id == 1

    def test_ljf_is_reverse_of_sjf(self):
        jobs = [_job(i, runtime=float(10 + i)) for i in range(5)]
        sjf = [j.job_id for j in sorted(jobs, key=SJFPolicy().key)]
        ljf = [j.job_id for j in sorted(jobs, key=LJFPolicy().key)]
        assert sjf == ljf[::-1]

    def test_widest_and_smallest(self):
        jobs = [_job(0, nodes=1), _job(1, nodes=2)]
        assert sorted(jobs, key=WidestFirstPolicy().key)[0].job_id == 1
        assert sorted(jobs, key=SmallestFirstPolicy().key)[0].job_id == 0

    def test_policy_by_name(self):
        for name in ("fcfs", "sjf", "ljf", "widest", "smallest"):
            assert policy_by_name(name).name == name
        with pytest.raises(KeyError):
            policy_by_name("lifo")

    def test_sjf_queue_reduces_avg_wait_on_single_machine(self):
        cluster_f = ClusterState({"Quartz": 1})
        cluster_s = ClusterState({"Quartz": 1})
        jobs = [_job(0, runtime=100.0), _job(1, runtime=1.0),
                _job(2, runtime=1.0)]
        fcfs = Scheduler(RoundRobinStrategy(), cluster_f,
                         backfill=False).run(jobs)
        sjf = Scheduler(RoundRobinStrategy(), cluster_s, backfill=False,
                        queue_policy=SJFPolicy()).run(jobs)
        assert sjf.wait_times.mean() < fcfs.wait_times.mean()

    def test_policy_scheduler_completes_all_jobs(self):
        rng = np.random.default_rng(0)
        jobs = [_job(i, runtime=float(rng.uniform(1, 20)),
                     submit=float(rng.uniform(0, 30)))
                for i in range(50)]
        for policy_name in ("sjf", "ljf", "widest", "smallest"):
            cluster = ClusterState({s: 2 for s in SYSTEMS})
            result = Scheduler(
                RoundRobinStrategy(), cluster,
                queue_policy=policy_by_name(policy_name),
                backfill_policy=policy_by_name("sjf"),
            ).run(jobs)
            assert result.num_jobs == 50
            assert (result.start_times >= result.submit_times - 1e-9).all()


class TestSWF:
    def _result(self):
        jobs = [_job(i, runtime=10.0 + i, submit=float(i)) for i in range(6)]
        return Scheduler(RoundRobinStrategy(),
                         ClusterState({s: 2 for s in SYSTEMS})).run(jobs)

    def test_write_read_roundtrip(self, tmp_path):
        result = self._result()
        path = tmp_path / "trace.swf"
        write_swf(result, path, header="unit test trace")
        records = read_swf(path)
        assert len(records) == 6
        assert records[0]["job_id"] == 0
        assert all(r["run"] >= 10 for r in records)

    def test_header_preserved(self, tmp_path):
        path = tmp_path / "trace.swf"
        write_swf(self._result(), path, header="my cluster")
        assert "; my cluster" in path.read_text()

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.swf"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError):
            read_swf(path)

    def test_jobs_from_swf(self, tmp_path):
        path = tmp_path / "trace.swf"
        write_swf(self._result(), path)
        jobs = jobs_from_swf(path, seed=1)
        assert len(jobs) == 6
        for job in jobs:
            assert set(job.runtimes) == set(SYSTEMS)
            assert job.true_rpv.max() == pytest.approx(1.0)
        # Round-trip: the reconstructed jobs schedule fine.
        result = Scheduler(RoundRobinStrategy(),
                           ClusterState({s: 2 for s in SYSTEMS})).run(jobs)
        assert result.num_jobs == 6

    def test_jobs_from_swf_custom_rpv(self, tmp_path):
        path = tmp_path / "trace.swf"
        write_swf(self._result(), path)
        jobs = jobs_from_swf(
            path, rpv_fn=lambda rec: [1.0, 0.5, 0.25, 0.125]
        )
        assert jobs[0].runtimes["Corona"] == pytest.approx(
            jobs[0].runtimes["Quartz"] * 0.125
        )

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.swf"
        path.write_text("; nothing here\n")
        with pytest.raises(ValueError):
            jobs_from_swf(path)


class TestExtendedMetrics:
    def _result(self):
        jobs = [_job(i, runtime=10.0) for i in range(8)]
        return Scheduler(RoundRobinStrategy(),
                         ClusterState({s: 2 for s in SYSTEMS})).run(jobs)

    def test_machine_utilization_bounds(self):
        result = self._result()
        util = machine_utilization(result, {s: 2 for s in SYSTEMS})
        for value in util.values():
            assert 0.0 <= value <= 1.0

    def test_utilization_accounts_all_node_time(self):
        result = self._result()
        util = machine_utilization(result, {s: 2 for s in SYSTEMS})
        total_busy = sum(
            u * 2 * makespan(result) for u in util.values()
        )
        assert total_busy == pytest.approx(float(result.runtimes.sum()))

    def test_unknown_machine_rejected(self):
        result = self._result()
        with pytest.raises(KeyError):
            machine_utilization(result, {"OnlyQuartz": 2})

    def test_timeline_shape_and_peak(self):
        result = self._result()
        times, busy = utilization_timeline(result, "Quartz", resolution=50)
        assert times.shape == busy.shape == (50,)
        assert busy.max() <= 2  # machine has 2 nodes

    def test_timeline_resolution_validated(self):
        with pytest.raises(ValueError):
            utilization_timeline(self._result(), "Quartz", resolution=1)

    def test_jain_fairness_bounds(self):
        result = self._result()
        f = jain_fairness(result)
        assert 1.0 / result.num_jobs <= f <= 1.0

    def test_jain_fairness_perfect_for_no_wait(self):
        jobs = [_job(0, runtime=50.0)]
        result = Scheduler(RoundRobinStrategy(),
                           ClusterState({s: 2 for s in SYSTEMS})).run(jobs)
        assert jain_fairness(result) == pytest.approx(1.0)
