"""The online prediction service: protocol, coalescing, hot-swap,
admission, and the bit-identicality contract.

The acceptance bar pinned here:

* batched service predictions are **bit-identical** (``np.array_equal``,
  not allclose) to offline single-row ``predict_record``/``predict``;
* a promotion that lands mid-stream never breaks an in-flight request —
  each batch completes on the model it captured;
* a *torn* promotion (tampered/truncated run dir) is detected by
  ``verify_run`` before the swap and the old model keeps serving, with
  zero failed in-flight requests.

No pytest-asyncio in the image: async scenarios run via ``asyncio.run``
inside plain test functions.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.artifacts import RunDir
from repro.config import ExperimentConfig, TrainConfig
from repro.core.predictor import CrossArchPredictor
from repro.errors import ArtifactError, ServeError
from repro.resilience import ResilientPredictor
from repro.serve import (
    AdmissionController,
    MicroBatcher,
    ModelManager,
    PredictionService,
    parse_predict_payload,
    publish_model,
    synthesize_payloads,
)
from repro.serve.model_manager import CURRENT_NAME
from repro.serve.protocol import error_response, predict_response


# ----------------------------------------------------------------------
# Registry scaffolding
# ----------------------------------------------------------------------
def make_train_run(root, predictor, dataset=None, seed=0) -> str:
    """Finalize a train run dir holding *predictor*; returns its config
    hash.  Distinct *seed* values produce distinct run dirs."""
    experiment = ExperimentConfig("train", TrainConfig(seed=seed))
    run = RunDir.create(root, experiment)
    predictor.save(run.file("predictor.pkl"))
    if dataset is not None:
        resilient = ResilientPredictor.from_training(predictor, dataset)
        run.save_json("resilience.json", {
            "feature_fill": [float(v) for v in resilient.feature_fill],
            "mean_rpv": [float(v) for v in resilient.mean_rpv],
        })
    run.finalize()
    return experiment.content_hash()


@pytest.fixture(scope="module")
def second_model(small_dataset, split_indices) -> CrossArchPredictor:
    """A second, distinguishable predictor for hot-swap scenarios.

    Another (smaller) tree ensemble, not a linear model: dense
    ``X @ W`` takes different BLAS paths at different batch sizes, so
    only tree traversal gives the bit-identical batch-vs-single
    guarantee the swap tests assert.
    """
    train_rows, _ = split_indices
    return CrossArchPredictor.train(small_dataset, model="xgboost",
                                    rows=train_rows,
                                    n_estimators=20, max_depth=4)


@pytest.fixture(scope="module")
def registry(tmp_path_factory, trained_xgb, small_dataset):
    """A read-only registry with one armed train run.  Tests that
    mutate a registry build their own with :func:`make_train_run`."""
    root = tmp_path_factory.mktemp("registry")
    chash = make_train_run(root, trained_xgb, small_dataset, seed=0)
    return root, chash


@pytest.fixture(scope="module")
def sample_payloads():
    """Six seeded profiled-run payloads (records + nodes_required)."""
    return synthesize_payloads(6, seed=42)


def make_service(registry_root, **kwargs) -> PredictionService:
    manager = ModelManager(registry_root, poll_interval_s=0.05)
    manager.promote(manager.resolve_hash(None))
    return PredictionService(manager, **kwargs)


# ----------------------------------------------------------------------
# Protocol validation
# ----------------------------------------------------------------------
class TestProtocol:
    def test_rejects_non_object(self):
        with pytest.raises(ServeError, match="JSON object"):
            parse_predict_payload([1, 2])

    def test_rejects_unknown_keys(self):
        with pytest.raises(ServeError, match="unknown request key"):
            parse_predict_payload({"record": {"a": 1}, "recrod": {}})

    def test_rejects_neither_and_both(self):
        with pytest.raises(ServeError, match="exactly one"):
            parse_predict_payload({})
        with pytest.raises(ServeError, match="exactly one"):
            parse_predict_payload({"record": {"a": 1}, "features": [1.0]})

    @pytest.mark.parametrize("nodes", [0, -3, True, "2", 1.5, None])
    def test_rejects_bad_nodes_required(self, nodes):
        with pytest.raises(ServeError, match="nodes_required"):
            parse_predict_payload({"features": [1.0],
                                   "nodes_required": nodes})

    @pytest.mark.parametrize("record", [{}, [], "x", {1: 2.0}])
    def test_rejects_bad_record(self, record):
        with pytest.raises(ServeError, match="record"):
            parse_predict_payload({"record": record})

    @pytest.mark.parametrize("features", [[], {}, [1.0, "x"], [True]])
    def test_rejects_bad_features(self, features):
        with pytest.raises(ServeError, match="features"):
            parse_predict_payload({"features": features})

    def test_rejects_oversized_features(self):
        with pytest.raises(ServeError, match="limit"):
            parse_predict_payload({"features": [1.0] * 5000})

    def test_uses_gpu_inferred_from_record(self):
        parsed = parse_predict_payload({"record": {"uses_gpu": 1.0}})
        assert parsed.uses_gpu is True
        parsed = parse_predict_payload(
            {"record": {"uses_gpu": 1.0}, "uses_gpu": False}
        )
        assert parsed.uses_gpu is False

    def test_error_response_carries_code_and_reason(self):
        status, body = error_response(
            ServeError("nope", code=503, reason="shed")
        )
        assert status == 503
        assert body["reason"] == "shed"
        assert "nope" in body["error"]

    def test_predict_response_ranked_fastest_first(self):
        body = predict_response(
            np.array([0.5, 0.2, 1.0]), ("A", "B", "C"), "B", "model",
            "hash", 3,
        )
        assert body["ranked"] == ["B", "A", "C"]
        assert body["recommended"] == "B"
        assert body["batch_size"] == 3
        assert json.loads(json.dumps(body)) == body  # JSON-clean


# ----------------------------------------------------------------------
# MicroBatcher semantics
# ----------------------------------------------------------------------
class TestCoalescer:
    def test_rejects_bad_config(self):
        with pytest.raises(ServeError, match="max_batch"):
            MicroBatcher(lambda items: items, max_batch=0)
        with pytest.raises(ServeError, match="max_delay"):
            MicroBatcher(lambda items: items, max_delay_s=-1)

    def test_flush_on_size(self):
        batches = []

        def flush(items):
            batches.append(list(items))
            return [i * 10 for i in items]

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=4, max_delay_s=30.0)
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(4))
            )
            return results

        assert asyncio.run(scenario()) == [0, 10, 20, 30]
        # One flush, size exactly max_batch, submission order preserved.
        assert batches == [[0, 1, 2, 3]]

    def test_flush_on_deadline_for_lone_item(self):
        batches = []

        def flush(items):
            batches.append(list(items))
            return items

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=100, max_delay_s=0.02)
            return await batcher.submit("only")

        assert asyncio.run(scenario()) == "only"
        assert batches == [["only"]]

    def test_deadline_armed_by_oldest_item(self):
        """Items trickling in under the deadline share the first item's
        flush — the deadline is never re-armed by later arrivals."""
        batches = []

        def flush(items):
            batches.append(list(items))
            return items

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=100, max_delay_s=0.05)
            tasks = []
            for i in range(3):
                tasks.append(asyncio.create_task(batcher.submit(i)))
                await asyncio.sleep(0.005)
            return await asyncio.gather(*tasks)

        assert asyncio.run(scenario()) == [0, 1, 2]
        assert batches == [[0, 1, 2]]

    def test_per_item_exception_spares_batch_mates(self):
        def flush(items):
            return [
                ServeError("bad item") if i == "bad" else i for i in items
            ]

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=3, max_delay_s=30.0)
            ok1, bad, ok2 = await asyncio.gather(
                batcher.submit("a"), batcher.submit("bad"),
                batcher.submit("b"), return_exceptions=True,
            )
            return ok1, bad, ok2

        ok1, bad, ok2 = asyncio.run(scenario())
        assert (ok1, ok2) == ("a", "b")
        assert isinstance(bad, ServeError)

    def test_flush_fn_raise_fails_whole_batch(self):
        def flush(items):
            raise RuntimeError("model exploded")

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=2, max_delay_s=30.0)
            return await asyncio.gather(
                batcher.submit(1), batcher.submit(2),
                return_exceptions=True,
            )

        results = asyncio.run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_length_mismatch_is_typed_batch_failure(self):
        async def scenario():
            batcher = MicroBatcher(lambda items: [1], max_batch=2,
                                   max_delay_s=30.0)
            return await asyncio.gather(
                batcher.submit(1), batcher.submit(2),
                return_exceptions=True,
            )

        results = asyncio.run(scenario())
        assert all(
            isinstance(r, ServeError) and r.reason == "batch-failure"
            for r in results
        )

    def test_closed_batcher_refuses_submissions(self):
        async def scenario():
            batcher = MicroBatcher(lambda items: items)
            await batcher.close()
            with pytest.raises(ServeError, match="closed"):
                await batcher.submit(1)

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Bit-identicality: the batched path vs the offline path
# ----------------------------------------------------------------------
class TestBitIdentical:
    def test_batched_records_match_predict_record(
        self, registry, trained_xgb, sample_payloads
    ):
        """One coalesced batch of raw records answers exactly what N
        separate offline ``predict_record`` calls answer — bit for bit."""
        root, _ = registry
        service = make_service(root, max_batch=len(sample_payloads),
                               batch_deadline_s=30.0)

        async def scenario():
            return await asyncio.gather(
                *(service.handle_predict(dict(p)) for p in sample_payloads)
            )

        responses = asyncio.run(scenario())
        assert len(responses) == len(sample_payloads)
        for payload, response in zip(sample_payloads, responses):
            assert response["tier"] == "model"
            # All requests were concurrent: one batch served them all.
            assert response["batch_size"] == len(sample_payloads)
            offline = trained_xgb.predict_record(payload["record"])
            assert np.array_equal(np.asarray(response["rpv"]), offline)

    def test_batched_features_match_predict(
        self, registry, trained_xgb, small_dataset
    ):
        root, _ = registry
        X = small_dataset.X()[:5]
        service = make_service(root, max_batch=5, batch_deadline_s=30.0)

        async def scenario():
            return await asyncio.gather(*(
                service.handle_predict({"features": list(map(float, row))})
                for row in X
            ))

        responses = asyncio.run(scenario())
        offline = trained_xgb.predict(X)
        for i, response in enumerate(responses):
            assert np.array_equal(np.asarray(response["rpv"]), offline[i])

    def test_nan_features_degrade_without_poisoning_batch(
        self, registry, trained_xgb, small_dataset
    ):
        root, _ = registry
        X = small_dataset.X()[:3].copy()
        broken = list(map(float, X[1]))
        broken[0] = float("nan")
        service = make_service(root, max_batch=3, batch_deadline_s=30.0)

        async def scenario():
            return await asyncio.gather(
                service.handle_predict(
                    {"features": list(map(float, X[0]))}
                ),
                service.handle_predict({"features": broken}),
                service.handle_predict(
                    {"features": list(map(float, X[2]))}
                ),
            )

        clean0, degraded, clean2 = asyncio.run(scenario())
        assert degraded["tier"] == "imputed"
        assert clean0["tier"] == clean2["tier"] == "model"
        offline = trained_xgb.predict(X[[0, 2]])
        assert np.array_equal(np.asarray(clean0["rpv"]), offline[0])
        assert np.array_equal(np.asarray(clean2["rpv"]), offline[1])

    def test_width_mismatch_fails_only_its_caller(self, registry):
        root, _ = registry
        service = make_service(root, max_batch=2, batch_deadline_s=30.0)

        async def scenario():
            return await asyncio.gather(
                service.handle_predict({"features": [1.0, 2.0]}),
                service.handle_predict(
                    {"features": [0.0] * service.manager.active.n_features}
                ),
                return_exceptions=True,
            )

        bad, good = asyncio.run(scenario())
        assert isinstance(bad, ServeError) and "expects" in str(bad)
        assert good["tier"] == "model"

    def test_broken_record_degrades_with_tier_label(
        self, registry, sample_payloads
    ):
        root, _ = registry
        record = dict(sample_payloads[0]["record"])
        record.pop("total_instructions")
        service = make_service(root)

        async def scenario():
            return await service.handle_predict({"record": record})

        response = asyncio.run(scenario())
        assert response["tier"] == "imputed"
        assert len(response["rpv"]) == len(response["systems"])

    def test_recommendation_names_a_real_machine(
        self, registry, sample_payloads
    ):
        root, _ = registry
        service = make_service(root)

        async def scenario():
            return await service.handle_predict(dict(sample_payloads[0]))

        response = asyncio.run(scenario())
        assert response["recommended"] in response["systems"]
        assert response["ranked"][0] == min(
            zip(response["rpv"], response["systems"])
        )[1]


# ----------------------------------------------------------------------
# ModelManager: resolution, promotion, torn-promotion detection
# ----------------------------------------------------------------------
class TestModelManager:
    def test_resolve_explicit_beats_current(self, registry):
        root, chash = registry
        manager = ModelManager(root)
        assert manager.resolve_hash("deadbeef") == "deadbeef"
        assert manager.resolve_hash(None) == chash  # single-run fallback

    def test_resolve_prefers_current_file(self, tmp_path, trained_xgb):
        h1 = make_train_run(tmp_path, trained_xgb, seed=1)
        make_train_run(tmp_path, trained_xgb, seed=2)
        publish_model(tmp_path, h1)
        assert ModelManager(tmp_path).resolve_hash(None) == h1

    def test_resolve_empty_registry_is_typed(self, tmp_path):
        with pytest.raises(ServeError, match="no finalized train runs"):
            ModelManager(tmp_path).resolve_hash(None)

    def test_resolve_ambiguous_registry_is_typed(
        self, tmp_path, trained_xgb
    ):
        make_train_run(tmp_path, trained_xgb, seed=1)
        make_train_run(tmp_path, trained_xgb, seed=2)
        with pytest.raises(ServeError, match="publish one hash"):
            ModelManager(tmp_path).resolve_hash(None)

    def test_promote_by_prefix(self, registry):
        root, chash = registry
        manager = ModelManager(root)
        assert manager.promote(chash[:12]) is True
        assert manager.active.config_hash == chash

    def test_first_load_failure_raises(self, tmp_path):
        manager = ModelManager(tmp_path)
        with pytest.raises(ServeError, match="cannot load model"):
            manager.promote("0123456789ab")

    def test_promote_same_hash_is_noop(self, registry):
        root, chash = registry
        manager = ModelManager(root)
        manager.promote(chash)
        first = manager.active
        assert manager.promote(chash[:12]) is True
        assert manager.active is first  # not reloaded

    def test_tampered_run_keeps_old_model_live(
        self, tmp_path, trained_xgb, second_model
    ):
        """verify_run catches a flipped byte before the swap."""
        h1 = make_train_run(tmp_path, trained_xgb, seed=1)
        h2 = make_train_run(tmp_path, second_model, seed=2)
        manager = ModelManager(tmp_path)
        manager.promote(h1)
        # Same-size tamper in the new run's pickle: only the checksum
        # pass can see it.
        victim = next(tmp_path.glob(f"train-{h2[:12]}/predictor.pkl"))
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        victim.write_bytes(bytes(blob))

        publish_model(tmp_path, h2)
        assert manager.check_registry() is False
        assert manager.active.config_hash == h1
        with pytest.raises(ArtifactError):
            manager.load_model(h2)

    def test_torn_promotion_missing_file_detected(
        self, tmp_path, trained_xgb, second_model
    ):
        """A half-copied run (file missing vs manifest) never swaps in,
        and the watcher converges once the publisher finishes."""
        h1 = make_train_run(tmp_path, trained_xgb, seed=1)
        h2 = make_train_run(tmp_path, second_model, seed=2)
        manager = ModelManager(tmp_path)
        manager.promote(h1)
        victim = next(tmp_path.glob(f"train-{h2[:12]}/predictor.pkl"))
        stashed = victim.read_bytes()
        victim.unlink()

        publish_model(tmp_path, h2)
        assert manager.check_registry() is False  # torn: old stays
        assert manager.active.config_hash == h1
        victim.write_bytes(stashed)  # publisher finishes the copy
        assert manager.check_registry() is True  # next poll converges
        assert manager.active.config_hash == h2

    def test_check_registry_ignores_missing_current(self, registry):
        root, chash = registry
        manager = ModelManager(root)
        manager.promote(chash)
        # The read-only module registry has no CURRENT file.
        assert manager.check_registry() is False
        assert manager.active.config_hash == chash

    def test_active_before_load_is_typed_503(self, tmp_path):
        manager = ModelManager(tmp_path)
        with pytest.raises(ServeError) as excinfo:
            _ = manager.active
        assert excinfo.value.code == 503
        assert excinfo.value.reason == "no-model"


# ----------------------------------------------------------------------
# Hot-swap atomicity under load
# ----------------------------------------------------------------------
class TestHotSwap:
    def test_mid_stream_swap_keeps_every_answer_consistent(
        self, tmp_path, trained_xgb, second_model, small_dataset,
        sample_payloads,
    ):
        """Requests in flight across a promotion each get an answer
        that is bit-identical to *some* whole model — the one their
        batch captured — never a mixture."""
        h1 = make_train_run(tmp_path, trained_xgb, small_dataset, seed=1)
        h2 = make_train_run(tmp_path, second_model, small_dataset, seed=2)
        publish_model(tmp_path, h1)
        # max_batch above the wave size: the wave stays parked until the
        # test decides to flush, which is what puts it "in flight"
        # across the swap.
        service = make_service(tmp_path, max_batch=64,
                               batch_deadline_s=30.0)
        manager = service.manager
        by_hash = {h1: trained_xgb, h2: second_model}

        async def wave():
            tasks = [
                asyncio.create_task(service.handle_predict(dict(p)))
                for p in sample_payloads
            ]
            await asyncio.sleep(0)  # run each task up to its submit()
            assert service.batcher.pending == len(sample_payloads)
            service.batcher.flush_now()
            return await asyncio.gather(*tasks)

        async def scenario():
            first_tasks = [
                asyncio.create_task(service.handle_predict(dict(p)))
                for p in sample_payloads
            ]
            await asyncio.sleep(0)  # wave 1 enqueued, still pending
            assert service.batcher.pending == len(sample_payloads)
            publish_model(tmp_path, h2)
            assert manager.check_registry() is True  # swap mid-stream
            service.batcher.flush_now()
            first = await asyncio.gather(*first_tasks)
            second = await wave()
            return first, second

        first, second = asyncio.run(scenario())
        # Wave 1 enqueued before the swap; the flush ran after it.  The
        # batch captured exactly one model — whichever — and every
        # answer must match that model bit-for-bit.
        for responses in (first, second):
            for payload, response in zip(sample_payloads, responses):
                model = by_hash[response["model_hash"]]
                offline = model.predict_record(payload["record"])
                assert np.array_equal(np.asarray(response["rpv"]), offline)
        # After the swap, new batches must serve the new model.
        assert {r["model_hash"] for r in second} == {h2}

    def test_kill_during_hot_swap_chaos(
        self, tmp_path, trained_xgb, second_model, small_dataset,
        sample_payloads,
    ):
        """Acceptance: the publisher dies mid-copy (torn run dir) while
        requests are in flight — the old model keeps serving and zero
        in-flight requests fail."""
        h1 = make_train_run(tmp_path, trained_xgb, small_dataset, seed=1)
        h2 = make_train_run(tmp_path, second_model, small_dataset, seed=2)
        publish_model(tmp_path, h1)
        # The "kill": the new run dir is left half-copied.
        victim = next(tmp_path.glob(f"train-{h2[:12]}/predictor.pkl"))
        victim.write_bytes(victim.read_bytes()[:100])  # truncated

        service = make_service(tmp_path, max_batch=64,
                               batch_deadline_s=30.0)

        async def scenario():
            inflight = [
                asyncio.create_task(service.handle_predict(dict(p)))
                for p in sample_payloads
            ]
            await asyncio.sleep(0)
            assert service.batcher.pending == len(sample_payloads)
            publish_model(tmp_path, h2)  # promote the torn run...
            assert service.manager.check_registry() is False  # ...refused
            service.batcher.flush_now()
            return await asyncio.gather(*inflight, return_exceptions=True)

        responses = asyncio.run(scenario())
        failures = [r for r in responses if isinstance(r, Exception)]
        assert failures == []  # zero failed in-flight requests
        assert {r["model_hash"] for r in responses} == {h1}
        for payload, response in zip(sample_payloads, responses):
            offline = trained_xgb.predict_record(payload["record"])
            assert np.array_equal(np.asarray(response["rpv"]), offline)


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_rejects_bad_watermarks(self):
        with pytest.raises(ServeError, match="soft_limit"):
            AdmissionController(soft_limit=0)
        with pytest.raises(ServeError, match="hard_limit"):
            AdmissionController(soft_limit=10, hard_limit=5)

    def test_three_way_transitions(self):
        controller = AdmissionController(soft_limit=2, hard_limit=4)
        assert controller.decide() == "full"
        controller.inflight = 2
        assert controller.decide() == "degraded"
        controller.inflight = 4
        assert controller.decide() == "shed"
        controller.inflight = 1
        assert controller.decide() == "full"
        assert controller.counts == {"full": 2, "degraded": 1, "shed": 1}

    def test_shed_error_is_typed_503(self):
        error = AdmissionController().shed_error()
        assert error.code == 503 and error.reason == "shed"

    def test_degraded_requests_get_instant_model_free_answers(
        self, registry, sample_payloads
    ):
        """With soft_limit=1, the first request parks in the batch and
        every later one answers instantly from the mean_rpv tier."""
        root, _ = registry
        service = make_service(root, soft_inflight=1, max_inflight=100,
                               max_batch=100, batch_deadline_s=0.03)

        async def scenario():
            return await asyncio.gather(*(
                service.handle_predict(dict(sample_payloads[0]))
                for _ in range(6)
            ))

        responses = asyncio.run(scenario())
        tiers = [r["tier"] for r in responses]
        assert tiers.count("model") == 1
        assert tiers.count("mean_rpv") == 5  # armed by resilience.json
        assert all(r["batch_size"] == 1 for r in responses
                   if r["tier"] == "mean_rpv")
        assert service.admission.counts["degraded"] == 5

    def test_overload_sheds_with_typed_503(
        self, registry, sample_payloads
    ):
        root, _ = registry
        service = make_service(root, soft_inflight=1, max_inflight=1,
                               max_batch=100, batch_deadline_s=0.03)

        async def scenario():
            return await asyncio.gather(
                *(service.handle_predict(dict(sample_payloads[0]))
                  for _ in range(5)),
                return_exceptions=True,
            )

        responses = asyncio.run(scenario())
        ok = [r for r in responses if isinstance(r, dict)]
        shed = [r for r in responses if isinstance(r, ServeError)]
        assert len(ok) == 1 and ok[0]["tier"] == "model"
        assert len(shed) == 4
        assert all(e.code == 503 and e.reason == "shed" for e in shed)
        assert service.admission.counts["shed"] == 4


# ----------------------------------------------------------------------
# TierSnapshot: live, pollable degradation stats
# ----------------------------------------------------------------------
class TestTierSnapshot:
    def test_snapshot_is_pollable_mid_stream(
        self, trained_xgb, small_dataset, sample_payloads
    ):
        resilient = ResilientPredictor.from_training(
            trained_xgb, small_dataset
        )
        record = dict(sample_payloads[0]["record"])
        before = resilient.tier_snapshot()
        assert before.total == 0 and before.degraded_fraction == 0.0

        resilient.predict_record_detailed(record)
        mid = resilient.tier_snapshot()
        assert mid.count("model") == 1

        broken = {k: v for k, v in record.items() if k != "branch"}
        resilient.predict_record_detailed(broken)
        resilient.predict_record_detailed(broken)
        after = resilient.tier_snapshot()
        assert after.count("imputed") == 2
        assert after.total == 3

        window = after.delta(mid)
        assert window.count("imputed") == 2
        assert window.count("model") == 0
        assert window.degraded_fraction == 1.0
        # Snapshots are frozen values, not live views.
        resilient.predict_record_detailed(record)
        assert after.total == 3

    def test_snapshot_round_trips_to_json(self, trained_xgb):
        resilient = ResilientPredictor(predictor=trained_xgb)
        snapshot = resilient.tier_snapshot()
        payload = snapshot.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert set(payload) == {"counts", "total", "degraded_fraction"}


# ----------------------------------------------------------------------
# Request-level observability: correlation ids, error context, spans
# ----------------------------------------------------------------------
@pytest.fixture()
def tracing():
    """Trace mode for one test, restored to off afterwards."""
    from repro import telemetry

    telemetry.configure("trace")
    telemetry.reset()
    yield telemetry
    telemetry.configure("off")
    telemetry.reset()


class TestObservability:
    def test_response_echoes_wire_ids(self, registry, sample_payloads):
        root, _ = registry
        service = make_service(root)
        payload = dict(sample_payloads[0])
        payload["request_id"] = "req-caller-7"
        payload["trace_id"] = "trace-caller-7"
        response = asyncio.run(service.handle_predict(payload))
        assert response["request_id"] == "req-caller-7"
        assert response["trace_id"] == "trace-caller-7"

    def test_absent_ids_are_minted(self, registry, sample_payloads):
        root, _ = registry
        service = make_service(root)
        response = asyncio.run(
            service.handle_predict(dict(sample_payloads[0]))
        )
        assert response["request_id"].startswith("req-")
        # No wire trace and tracing off: no trace to speak of.
        assert "trace_id" not in response

    @pytest.mark.parametrize("value", [7, "", "x" * 129, "bad id!"])
    def test_invalid_wire_id_is_typed(self, value):
        with pytest.raises(ServeError, match="request_id"):
            parse_predict_payload({"features": [1.0],
                                   "request_id": value})

    def test_error_bodies_carry_request_context(self, registry):
        """Every 4xx/5xx body names the request, the serving model,
        and the live admission state (satellite: debuggable errors)."""
        root, chash = registry
        service = make_service(root)

        async def scenario():
            return [
                await service._route("POST", "/predict", b"{not json"),
                await service._route("POST", "/predict",
                                     json.dumps({}).encode()),
                await service._route("GET", "/nope", b""),
                await service._route("GET", "/metrics?format=xml", b""),
            ]

        for status, body in asyncio.run(scenario()):
            assert status >= 400
            assert body["request_id"].startswith("req-")
            assert body["model_hash"] == chash
            assert body["admission"] == {"inflight": 0, "state": "full"}

    def test_error_body_preserves_wire_ids(self, registry):
        """Ids peeked off an invalid payload still reach the error
        body, so the caller can correlate its own failed request."""
        root, _ = registry
        service = make_service(root)
        bad = {"request_id": "req-mine", "trace_id": "trace-mine"}
        status, body = asyncio.run(
            service._route("POST", "/predict", json.dumps(bad).encode())
        )
        assert status == 400
        assert body["request_id"] == "req-mine"
        assert body["trace_id"] == "trace-mine"

    def test_unhandled_error_answers_500_and_dumps_flight(
        self, registry, tmp_path, monkeypatch
    ):
        from repro.telemetry import flightrec

        root, chash = registry
        service = make_service(root, flight_events=64)
        service.flight_path = tmp_path / "flight.json"

        def boom():
            raise RuntimeError("exporter bug")

        monkeypatch.setattr(service, "metrics_payload", boom)
        try:
            status, body = asyncio.run(
                service._route("GET", "/metrics", b"")
            )
            assert status == 500
            assert body["reason"] == "internal"
            assert "RuntimeError" in body["error"]
            assert body["model_hash"] == chash
            dump = json.loads(service.flight_path.read_text())
            assert dump["flight_format_version"] == 1
            assert dump["reason"] == "unhandled-error"
            assert any(e["kind"] == "unhandled-error"
                       and e["endpoint"] == "metrics"
                       for e in dump["events"])
        finally:
            flightrec.disable()
            flightrec.recorder().clear()

    def test_batch_spans_link_to_request_spans(
        self, registry, sample_payloads, tracing
    ):
        """One coalesced flush yields serve.request -> serve.predict
        parent-child links per caller plus one batch span naming every
        trace it served (the tentpole's causality contract)."""
        root, _ = registry
        service = make_service(root, max_batch=3, batch_deadline_s=5.0)

        async def scenario():
            calls = []
            for i in range(3):
                payload = dict(sample_payloads[i])
                payload["request_id"] = f"req-{i}"
                payload["trace_id"] = f"trace-{i}"
                calls.append(service.handle_predict(payload))
            return await asyncio.gather(*calls)

        responses = asyncio.run(scenario())
        assert [r["trace_id"] for r in responses] == [
            "trace-0", "trace-1", "trace-2"
        ]
        spans = {name: [] for name in
                 ("serve.request", "serve.predict",
                  "serve.coalescer.batch")}
        for record in tracing.spans():
            if record.name in spans:
                spans[record.name].append(record)
        assert len(spans["serve.request"]) == 3
        assert len(spans["serve.predict"]) == 3
        assert len(spans["serve.coalescer.batch"]) == 1
        batch = spans["serve.coalescer.batch"][0]
        assert batch.attrs["rows"] == 3
        assert batch.attrs["trace_ids"] == [
            "trace-0", "trace-1", "trace-2"
        ]
        request_by_trace = {r.trace_id: r for r in spans["serve.request"]}
        for predict in spans["serve.predict"]:
            parent = request_by_trace[predict.trace_id]
            assert predict.parent_id == parent.span_id
            assert predict.attrs["batch_span_id"] == batch.span_id
            assert predict.attrs["tier"] == "model"
        for i, request in enumerate(spans["serve.request"]):
            assert request.attrs["decision"] == "full"
            assert request.attrs["request_id"].startswith("req-")
        # The Chrome export carries the trace ids where viewers (and
        # repro report) can see them.
        trace_doc = tracing.chrome_trace(tracing.spans())
        exported = {e["args"].get("trace_id")
                    for e in trace_doc["traceEvents"]
                    if e.get("ph") == "X" and e["name"] == "serve.predict"}
        assert exported == {"trace-0", "trace-1", "trace-2"}

    def test_degraded_answers_get_a_tier_span(
        self, registry, sample_payloads, tracing
    ):
        root, _ = registry
        service = make_service(root, soft_inflight=1, max_inflight=100,
                               max_batch=100, batch_deadline_s=0.03)
        payload = dict(sample_payloads[0])
        payload["trace_id"] = "trace-deg"

        async def scenario():
            return await asyncio.gather(*(
                service.handle_predict(dict(payload)) for _ in range(4)
            ))

        asyncio.run(scenario())
        degrades = [r for r in tracing.spans()
                    if r.name == "serve.degrade"]
        requests = {r.span_id: r for r in tracing.spans()
                    if r.name == "serve.request"}
        assert len(degrades) == 3
        for span in degrades:
            assert span.trace_id == "trace-deg"
            assert span.attrs["tier"] == "mean_rpv"
            assert span.parent_id in requests

    def test_minted_trace_id_when_tracing(
        self, registry, sample_payloads, tracing
    ):
        root, _ = registry
        service = make_service(root)
        response = asyncio.run(
            service.handle_predict(dict(sample_payloads[0]))
        )
        assert response["trace_id"]  # minted, echoed
        request = [r for r in tracing.spans()
                   if r.name == "serve.request"][0]
        assert request.trace_id == response["trace_id"]

    def test_prometheus_exposition_over_route(self, registry,
                                              sample_payloads):
        import importlib.util
        from pathlib import Path

        from repro import telemetry

        root, _ = registry
        service = make_service(root)
        telemetry.configure("metrics")
        telemetry.reset()
        try:
            async def scenario():
                await service._route(
                    "POST", "/predict",
                    json.dumps(dict(sample_payloads[0])).encode(),
                )
                return await self._respond_capture(service)

            status, body = asyncio.run(scenario())
            assert status == 200
            text = str(body)
            assert text.startswith("# TYPE repro_serve_http_requests_total")
            assert 'repro_serve_http_requests_total{endpoint="predict"} 1' \
                in text
            assert "# TYPE repro_serve_http_predict_seconds histogram" \
                in text
            assert 'repro_serve_http_predict_seconds_bucket{le="+Inf"} 1' \
                in text
            checker_path = (Path(__file__).resolve().parent.parent
                            / "tools" / "check_prometheus.py")
            spec = importlib.util.spec_from_file_location(
                "check_prometheus", checker_path
            )
            checker = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(checker)
            assert checker.check_exposition(text) == []
        finally:
            telemetry.configure("off")
            telemetry.reset()

    @staticmethod
    async def _respond_capture(service):
        return await service._route("GET", "/metrics?format=prometheus",
                                    b"")

    def test_prometheus_body_is_plain_text_over_http(
        self, registry, sample_payloads
    ):
        """End-to-end over a real socket: the exposition answers with
        the text content type, not JSON."""
        root, _ = registry
        service = make_service(root)

        async def scenario():
            host, port = await service.start("127.0.0.1", 0)
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    b"GET /metrics?format=prometheus HTTP/1.1\r\n"
                    b"connection: close\r\n\r\n"
                )
                await writer.drain()
                raw = await reader.read(-1)
                writer.close()
                return raw
            finally:
                await service.stop()

        raw = asyncio.run(scenario()).decode()
        head, _, body = raw.partition("\r\n\r\n")
        assert "200 OK" in head
        assert "content-type: text/plain; version=0.0.4" in head
        assert body.startswith("# TYPE ")

    def test_metrics_bad_format_is_typed_400(self, registry):
        root, _ = registry
        service = make_service(root)
        status, body = asyncio.run(
            service._route("GET", "/metrics?format=xml", b"")
        )
        assert status == 400
        assert body["reason"] == "bad-format"


# ----------------------------------------------------------------------
# SLO-driven admission at the service level
# ----------------------------------------------------------------------
class TestSLOAdmission:
    def _policy(self, threshold_s=1e-9, shed_burn=4.0):
        from repro.telemetry.slo import SLOShedPolicy, SLOSpec

        spec = SLOSpec(name="serve-predict-latency", objective="latency",
                       target=0.9, histogram="serve.http.predict.seconds",
                       threshold_s=threshold_s)
        return SLOShedPolicy(spec, degrade_burn=1.0, shed_burn=shed_burn)

    def test_default_service_has_no_slo(self, registry):
        root, _ = registry
        service = make_service(root)
        assert service.admission.slo is None
        assert "slo" not in service.metrics_payload()["service"]["admission"]

    def test_sustained_burn_sheds_deterministically(
        self, registry, sample_payloads
    ):
        """With an unmeetable threshold every answered request burns
        budget, so exactly one request succeeds and every later one is
        shed — the same count on every run (seeded determinism)."""
        root, _ = registry
        service = make_service(root, slo=self._policy(threshold_s=1e-9),
                               max_batch=1, batch_deadline_s=0.001)

        async def scenario():
            outcomes = []
            for payload in sample_payloads:
                try:
                    response = await service.handle_predict(dict(payload))
                    outcomes.append(response["tier"])
                except ServeError as exc:
                    outcomes.append(exc.reason)
            return outcomes

        outcomes = asyncio.run(scenario())
        assert outcomes == ["model"] + ["shed"] * 5
        assert service.admission.counts["shed"] == 5
        snapshot = service.metrics_payload()["service"]["admission"]
        assert snapshot["slo"]["decision"] == "shed"
        assert snapshot["slo"]["total"] == 1  # shed requests never observe

    def test_healthy_latency_stays_full(self, registry, sample_payloads):
        root, _ = registry
        service = make_service(root, slo=self._policy(threshold_s=60.0),
                               max_batch=1, batch_deadline_s=0.001)

        async def scenario():
            for payload in sample_payloads:
                await service.handle_predict(dict(payload))

        asyncio.run(scenario())
        assert service.admission.counts == {"full": 6, "degraded": 0,
                                            "shed": 0}
        snapshot = service.admission.snapshot()["slo"]
        assert snapshot["decision"] == "full"
        assert snapshot["good"] == 6

    def test_shed_transition_records_flight_event(
        self, registry, sample_payloads, tmp_path
    ):
        from repro.telemetry import flightrec

        root, _ = registry
        service = make_service(root, slo=self._policy(threshold_s=1e-9),
                               max_batch=1, batch_deadline_s=0.001,
                               flight_events=64)
        service.flight_path = tmp_path / "flight.json"
        try:
            async def scenario():
                await service.handle_predict(dict(sample_payloads[0]))
                with pytest.raises(ServeError):
                    await service.handle_predict(dict(sample_payloads[1]))

            asyncio.run(scenario())
            dump = json.loads(service.flight_path.read_text())
            assert dump["reason"] == "shed-transition"
            transitions = [e for e in dump["events"]
                           if e["kind"] == "admission-transition"]
            assert transitions[-1]["previous"] == "full"
            assert transitions[-1]["decision"] == "shed"
        finally:
            flightrec.disable()
            flightrec.recorder().clear()
