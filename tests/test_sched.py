"""Tests for the multi-resource FCFS+EASY scheduling simulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import (
    ClusterState,
    Job,
    MachineState,
    ModelBasedStrategy,
    RandomStrategy,
    RoundRobinStrategy,
    Scheduler,
    UserRRStrategy,
    average_bounded_slowdown,
    average_wait_time,
    makespan,
    per_machine_job_counts,
    strategy_by_name,
)
from repro.sched.strategies import OracleStrategy

SYSTEMS = ("Quartz", "Ruby", "Lassen", "Corona")


def _job(job_id, runtime=10.0, nodes=1, submit=0.0, rpv=None, app="CoMD",
         uses_gpu=False):
    runtimes = {s: runtime for s in SYSTEMS}
    if rpv is not None:
        # encode rpv into runtimes so oracle/true agree
        runtimes = {s: runtime * r for s, r in zip(SYSTEMS, rpv)}
    return Job(
        job_id=job_id, app=app, uses_gpu=uses_gpu, nodes_required=nodes,
        runtimes=runtimes, submit_time=submit,
        predicted_rpv=None if rpv is None else np.array(rpv),
        true_rpv=None if rpv is None else np.array(rpv),
    )


def _small_cluster(n=2):
    return ClusterState({s: n for s in SYSTEMS})


class TestMachineState:
    def test_start_and_release(self):
        m = MachineState("X", 4)
        m.start(3, end_time=10.0)
        assert m.free_nodes == 1
        assert m.release_until(9.0) == 0
        assert m.release_until(10.0) == 1
        assert m.free_nodes == 4

    def test_overcommit_rejected(self):
        m = MachineState("X", 2)
        m.start(2, 5.0)
        with pytest.raises(RuntimeError):
            m.start(1, 5.0)

    def test_shadow_time(self):
        m = MachineState("X", 4)
        m.start(2, end_time=10.0)
        m.start(2, end_time=20.0)
        assert m.shadow_time(2, now=0.0) == 10.0
        assert m.shadow_time(4, now=0.0) == 20.0

    def test_shadow_time_already_free(self):
        m = MachineState("X", 4)
        assert m.shadow_time(2, now=3.0) == 3.0

    def test_shadow_time_impossible(self):
        m = MachineState("X", 2)
        with pytest.raises(RuntimeError):
            m.shadow_time(5, now=0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineState("X", 0)


class TestClusterState:
    def test_defaults_to_table1_sizes(self):
        c = ClusterState()
        assert set(c.names) == set(SYSTEMS)
        assert c["Quartz"].total_nodes > c["Corona"].total_nodes

    def test_unknown_machine(self):
        with pytest.raises(KeyError):
            _small_cluster()["Summit"]

    def test_next_completion_across_machines(self):
        c = _small_cluster()
        assert c.next_completion() is None
        c["Ruby"].start(1, 7.0)
        c["Quartz"].start(1, 3.0)
        assert c.next_completion() == 3.0


class TestStrategies:
    def test_round_robin_rotates(self):
        s = RoundRobinStrategy()
        c = _small_cluster()
        names = [s.assign(_job(i), i, c) for i in range(4)]
        assert names == list(SYSTEMS)

    def test_random_sticky_and_deterministic(self):
        c = _small_cluster()
        s1 = RandomStrategy(seed=4)
        job = _job(1)
        first = s1.assign(job, 0, c)
        assert s1.assign(job, 5, c) == first
        s2 = RandomStrategy(seed=4)
        assert s2.assign(_job(1), 0, c) == first

    def test_user_rr_separates_pools(self):
        s = UserRRStrategy()
        c = _small_cluster()
        gpu_choice = s.assign(_job(1, uses_gpu=True), 0, c)
        cpu_choice = s.assign(_job(2, uses_gpu=False), 1, c)
        assert gpu_choice in ("Lassen", "Corona")
        assert cpu_choice in ("Quartz", "Ruby")

    def test_user_rr_round_robins_within_pool(self):
        s = UserRRStrategy()
        c = _small_cluster()
        picks = [s.assign(_job(i, uses_gpu=True), i, c) for i in range(4)]
        assert picks == ["Lassen", "Corona", "Lassen", "Corona"]

    def test_model_based_picks_fastest(self):
        s = ModelBasedStrategy()
        c = _small_cluster()
        job = _job(1, rpv=[1.0, 0.9, 0.2, 0.5])
        assert s.assign(job, 0, c) == "Lassen"

    def test_model_based_falls_to_next_when_full(self):
        s = ModelBasedStrategy()
        c = _small_cluster()
        c["Lassen"].start(2, 100.0)  # fill fastest
        job = _job(1, rpv=[1.0, 0.9, 0.2, 0.5])
        assert s.assign(job, 0, c) == "Corona"

    def test_model_based_returns_fastest_when_all_full(self):
        s = ModelBasedStrategy()
        c = _small_cluster()
        for name in SYSTEMS:
            c[name].start(2, 100.0)
        job = _job(1, rpv=[1.0, 0.9, 0.2, 0.5])
        assert s.assign(job, 0, c) == "Lassen"

    def test_model_based_requires_rpv(self):
        with pytest.raises(ValueError):
            ModelBasedStrategy().assign(_job(1), 0, _small_cluster())

    def test_oracle_uses_true_rpv(self):
        job = _job(1, rpv=[0.3, 1.0, 0.6, 0.9])
        job.predicted_rpv = np.array([1.0, 0.1, 1.0, 1.0])  # wrong
        assert OracleStrategy().assign(job, 0, _small_cluster()) == "Quartz"
        assert ModelBasedStrategy().assign(job, 0, _small_cluster()) == "Ruby"

    def test_strategy_by_name(self):
        for name in ("round_robin", "random", "user_rr", "model", "oracle",
                     "uncertainty"):
            assert strategy_by_name(name) is not None
        with pytest.raises(KeyError):
            strategy_by_name("greedy")

    def test_uncertainty_breaks_ties_by_free_nodes(self):
        from repro.sched import UncertaintyAwareStrategy

        s = UncertaintyAwareStrategy(tie_margin=0.1)
        c = _small_cluster(n=4)
        c["Lassen"].start(3, 100.0)  # fastest but nearly full
        job = _job(1, rpv=[1.0, 0.9, 0.20, 0.25])  # Lassen ~ Corona tie
        assert s.assign(job, 0, c) == "Corona"

    def test_uncertainty_respects_clear_winner(self):
        from repro.sched import UncertaintyAwareStrategy

        s = UncertaintyAwareStrategy(tie_margin=0.02)
        c = _small_cluster(n=4)
        c["Lassen"].start(3, 100.0)  # less room, but clearly fastest
        job = _job(1, rpv=[1.0, 0.9, 0.20, 0.60])
        assert s.assign(job, 0, c) == "Lassen"

    def test_uncertainty_falls_back_when_tied_machines_full(self):
        from repro.sched import UncertaintyAwareStrategy

        s = UncertaintyAwareStrategy(tie_margin=0.05)
        c = _small_cluster(n=2)
        c["Lassen"].start(2, 100.0)
        job = _job(1, rpv=[1.0, 0.5, 0.20, 0.60])
        # Lassen (only near-tied machine) is full: standard fallback
        # goes to the next fastest with room (Ruby at 0.5).
        assert s.assign(job, 0, c) == "Ruby"

    def test_uncertainty_validation(self):
        from repro.sched import UncertaintyAwareStrategy

        with pytest.raises(ValueError):
            UncertaintyAwareStrategy(tie_margin=-0.1)
        with pytest.raises(ValueError):
            UncertaintyAwareStrategy().assign(_job(1), 0, _small_cluster())


class TestScheduler:
    def test_all_jobs_complete(self):
        jobs = [_job(i, runtime=5.0) for i in range(20)]
        result = Scheduler(RoundRobinStrategy(), _small_cluster()).run(jobs)
        assert result.num_jobs == 20
        assert (result.end_times > result.start_times).all()

    def test_empty_jobs_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(RoundRobinStrategy(), _small_cluster()).run([])

    def test_fcfs_order_on_single_machine(self):
        cluster = ClusterState({"Quartz": 1})
        jobs = [_job(i, runtime=10.0) for i in range(3)]
        result = Scheduler(RoundRobinStrategy(), cluster).run(jobs)
        starts = {i: s for i, s in zip(result.job_ids, result.start_times)}
        assert starts[0] < starts[1] < starts[2]

    def test_capacity_respected(self):
        """At no instant may a machine exceed its node count."""
        cluster = ClusterState({"Quartz": 3})
        rng = np.random.default_rng(0)
        jobs = [
            _job(i, runtime=float(rng.uniform(1, 20)),
                 nodes=int(rng.integers(1, 3)))
            for i in range(40)
        ]
        result = Scheduler(RoundRobinStrategy(), cluster).run(jobs)
        events = []
        by_id = {j.job_id: j for j in jobs}
        for jid, start, end in zip(result.job_ids, result.start_times,
                                   result.end_times):
            events.append((start, by_id[jid].nodes_required))
            events.append((end, -by_id[jid].nodes_required))
        events.sort()
        usage = 0
        for _, delta in events:
            usage += delta
            assert usage <= 3

    def test_backfill_fills_gap(self):
        """A short 1-node job jumps a blocked 2-node head job."""
        cluster = ClusterState({"Quartz": 2})
        jobs = [
            _job(0, runtime=100.0, nodes=1, submit=0.0),
            _job(1, runtime=100.0, nodes=2, submit=1.0),   # blocked head
            _job(2, runtime=10.0, nodes=1, submit=2.0),    # backfills
        ]
        result = Scheduler(RoundRobinStrategy(),
                           ClusterState({"Quartz": 2})).run(jobs)
        starts = {i: s for i, s in zip(result.job_ids, result.start_times)}
        assert starts[2] < starts[1]
        assert result.backfilled >= 1

    def test_no_backfill_mode_preserves_strict_fcfs(self):
        jobs = [
            _job(0, runtime=100.0, nodes=1),
            _job(1, runtime=100.0, nodes=2),
            _job(2, runtime=10.0, nodes=1),
        ]
        result = Scheduler(RoundRobinStrategy(),
                           ClusterState({"Quartz": 2}),
                           backfill=False).run(jobs)
        starts = {i: s for i, s in zip(result.job_ids, result.start_times)}
        assert starts[2] >= starts[1]
        assert result.backfilled == 0

    def test_backfill_never_delays_reservation(self):
        """The blocked head job must start exactly at its shadow time."""
        jobs = [
            _job(0, runtime=50.0, nodes=2, submit=0.0),
            _job(1, runtime=50.0, nodes=2, submit=1.0),   # reserved at t=50
            _job(2, runtime=200.0, nodes=1, submit=2.0),  # would delay it
        ]
        result = Scheduler(RoundRobinStrategy(),
                           ClusterState({"Quartz": 2})).run(jobs)
        starts = {i: s for i, s in zip(result.job_ids, result.start_times)}
        assert starts[1] == pytest.approx(50.0)
        assert starts[2] >= 50.0  # long job could not backfill

    def test_arrivals_respected(self):
        jobs = [_job(0, runtime=5.0, submit=100.0)]
        result = Scheduler(RoundRobinStrategy(), _small_cluster()).run(jobs)
        assert result.start_times[0] >= 100.0

    def test_oversized_job_raises(self):
        jobs = [_job(0, nodes=99)]
        with pytest.raises(RuntimeError):
            Scheduler(RoundRobinStrategy(), _small_cluster()).run(jobs)

    def test_model_strategy_beats_random_on_heterogeneous_jobs(self):
        rng = np.random.default_rng(1)
        jobs = []
        for i in range(60):
            rpv = np.ones(4)
            fast = rng.integers(4)
            rpv[fast] = 0.2
            jobs.append(_job(i, runtime=30.0, rpv=rpv.tolist()))
        cluster_a = ClusterState({s: 4 for s in SYSTEMS})
        cluster_b = ClusterState({s: 4 for s in SYSTEMS})
        res_model = Scheduler(ModelBasedStrategy(), cluster_a).run(jobs)
        res_rand = Scheduler(RandomStrategy(0), cluster_b).run(jobs)
        assert makespan(res_model) < makespan(res_rand)


class TestMetrics:
    def _result(self):
        jobs = [_job(i, runtime=10.0) for i in range(8)]
        return Scheduler(RoundRobinStrategy(), _small_cluster()).run(jobs)

    def test_makespan_positive(self):
        assert makespan(self._result()) >= 10.0

    def test_bounded_slowdown_at_least_one(self):
        assert average_bounded_slowdown(self._result()) >= 1.0

    def test_bounded_slowdown_no_wait_equals_one(self):
        jobs = [_job(0, runtime=100.0)]
        res = Scheduler(RoundRobinStrategy(), _small_cluster()).run(jobs)
        assert average_bounded_slowdown(res) == pytest.approx(1.0)

    def test_bound_caps_short_jobs(self):
        """A 1-second job waiting 10s: slowdown uses the 10s bound."""
        cluster = ClusterState({"Quartz": 1})
        jobs = [_job(0, runtime=10.0), _job(1, runtime=1.0)]
        res = Scheduler(RoundRobinStrategy(), cluster).run(jobs)
        # job 1 waits 10s, runs 1s: bounded = (10 + 1) / max(1, 10) = 1.1
        assert average_bounded_slowdown(res) == pytest.approx((1.0 + 1.1) / 2)

    def test_bad_bound(self):
        with pytest.raises(ValueError):
            average_bounded_slowdown(self._result(), bound=0.0)

    def test_wait_time_and_counts(self):
        res = self._result()
        assert average_wait_time(res) >= 0.0
        counts = per_machine_job_counts(res)
        assert sum(counts.values()) == 8


@given(
    n_jobs=st.integers(1, 40),
    seed=st.integers(0, 1000),
    strategy_name=st.sampled_from(["round_robin", "random", "user_rr"]),
)
@settings(max_examples=25, deadline=None)
def test_property_simulation_invariants(n_jobs, seed, strategy_name):
    """Every job runs exactly once, never before submission."""
    rng = np.random.default_rng(seed)
    jobs = [
        _job(i, runtime=float(rng.uniform(1, 30)),
             nodes=int(rng.integers(1, 3)),
             submit=float(rng.uniform(0, 50)),
             uses_gpu=bool(rng.integers(2)))
        for i in range(n_jobs)
    ]
    cluster = ClusterState({s: 2 for s in SYSTEMS})
    result = Scheduler(strategy_by_name(strategy_name, seed=seed),
                       cluster).run(jobs)
    assert result.num_jobs == n_jobs
    assert sorted(result.job_ids) == list(range(n_jobs))
    assert (result.start_times >= result.submit_times - 1e-9).all()
    assert (result.runtimes > 0).all()
