"""Tests for the sweep layer's declarative side (repro.sweep):

* ``SweepSpec`` — validation, JSON round-trip, grid expansion, and
  deterministic sampling;
* ``SweepJournal`` — append/replay, torn-tail tolerance, mid-file
  corruption detection, last-event-wins reduction;
* ``plan_sweep`` — artifact memoization, quarantine persistence, stale
  run dirs, and resume hygiene;
* ``ChaosSpec`` — fault-spec parsing and cell/attempt matching.

The execution engine itself is covered in test_sweep_runner.py.
"""

from __future__ import annotations

import json

import pytest

from repro.artifacts import RunDir
from repro.errors import ReproError, SweepCellError, SweepError
from repro.sweep import (
    JOURNAL_NAME,
    ChaosSpec,
    SweepJournal,
    SweepSpec,
    plan_sweep,
)

SPEC_KWARGS = dict(
    name="grid",
    command="profile",
    base={"scale": "1node", "seed": 0},
    axes={"app": ["AMG", "XSBench"], "machine": ["Quartz", "Lassen"]},
)


@pytest.fixture
def spec() -> SweepSpec:
    return SweepSpec(**SPEC_KWARGS)


class TestSweepSpecValidation:
    def test_unknown_command_is_typed(self):
        with pytest.raises(ReproError):
            SweepSpec(name="x", command="no-such-command",
                      axes={"app": ["AMG"]})

    def test_unknown_axis_field_lists_known(self):
        with pytest.raises(SweepError, match="not a field"):
            SweepSpec(name="x", command="profile",
                      axes={"gpu_count": [1, 2]})

    def test_empty_axis_rejected(self):
        with pytest.raises(SweepError, match="at least one value"):
            SweepSpec(name="x", command="profile", axes={"app": []})

    def test_base_axes_overlap_rejected(self):
        with pytest.raises(SweepError, match="both base and axes"):
            SweepSpec(name="x", command="profile",
                      base={"app": "AMG"}, axes={"app": ["AMG"]})

    def test_bad_sample_rejected(self):
        for sample in (0, -1, True, "3"):
            with pytest.raises(SweepError, match="sample"):
                SweepSpec(name="x", command="profile",
                          axes={"app": ["AMG"]}, sample=sample)

    def test_empty_name_rejected(self):
        with pytest.raises(SweepError, match="name"):
            SweepSpec(name=" ", command="profile", axes={"app": ["AMG"]})

    def test_invalid_axis_value_names_the_cell(self):
        bad = SweepSpec(name="x", command="profile",
                        axes={"app": ["AMG"], "seed": ["not-an-int"]})
        with pytest.raises(SweepError, match="cell 0 .*seed="):
            bad.expand()


class TestSweepSpecRoundTrip:
    def test_dict_round_trip(self, spec):
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_save_load_round_trip(self, tmp_path, spec):
        path = tmp_path / "spec.json"
        spec.save(path)
        assert SweepSpec.load(path) == spec

    def test_schema_version_pinned(self, spec):
        data = spec.to_dict()
        data["sweep_schema_version"] = 999
        with pytest.raises(SweepError, match="schema version"):
            SweepSpec.from_dict(data)

    def test_unknown_key_rejected(self, spec):
        data = spec.to_dict()
        data["axs"] = {}
        with pytest.raises(SweepError, match="axs"):
            SweepSpec.from_dict(data)

    def test_missing_keys_rejected(self):
        with pytest.raises(SweepError, match="missing"):
            SweepSpec.from_dict({"sweep_schema_version": 1, "name": "x"})

    def test_load_bad_json_is_typed(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{oops")
        with pytest.raises(SweepError, match="cannot read"):
            SweepSpec.load(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SweepSpec.load(tmp_path / "absent.json")

    def test_content_hash_tracks_content(self, spec):
        assert spec.content_hash() == SweepSpec(**SPEC_KWARGS).content_hash()
        other = SweepSpec(**{**SPEC_KWARGS,
                             "axes": {"app": ["AMG"],
                                      "machine": ["Quartz", "Lassen"]}})
        assert other.content_hash() != spec.content_hash()


class TestSweepSpecExpansion:
    def test_grid_order_last_axis_fastest(self, spec):
        cells = spec.expand()
        assert [dict(c.axes) for c in cells] == [
            {"app": "AMG", "machine": "Quartz"},
            {"app": "AMG", "machine": "Lassen"},
            {"app": "XSBench", "machine": "Quartz"},
            {"app": "XSBench", "machine": "Lassen"},
        ]
        assert [c.index for c in cells] == [0, 1, 2, 3]
        assert spec.grid_size == 4

    def test_cells_freeze_base_and_axes(self, spec):
        cell = spec.expand()[3]
        cfg = cell.experiment.config
        assert (cfg.app, cfg.machine, cfg.scale, cfg.seed) == \
            ("XSBench", "Lassen", "1node", 0)
        assert cell.config_hash == cell.experiment.content_hash()
        assert cell.cell_id == f"0003-{cell.config_hash[:12]}"
        assert cell.run_dir_name == f"profile-{cell.config_hash[:12]}"

    def test_cell_ids_are_distinct(self, spec):
        cells = spec.expand()
        assert len({c.cell_id for c in cells}) == len(cells)
        assert len({c.config_hash for c in cells}) == len(cells)

    def test_sampling_deterministic_subset(self):
        full = SweepSpec(**SPEC_KWARGS)
        sampled = SweepSpec(**SPEC_KWARGS, sample=2, sample_seed=5)
        cells = sampled.expand()
        assert len(cells) == 2
        # Sampled cells keep their full-grid index (ids stay stable
        # when the sample size changes) and come back in grid order.
        full_ids = [c.cell_id for c in full.expand()]
        assert [c.cell_id for c in cells] == \
            [i for i in full_ids if i in {c.cell_id for c in cells}]
        again = SweepSpec(**SPEC_KWARGS, sample=2, sample_seed=5).expand()
        assert [c.cell_id for c in again] == [c.cell_id for c in cells]

    def test_sample_seed_changes_subset(self):
        picks = {
            tuple(c.index for c in
                  SweepSpec(**SPEC_KWARGS, sample=2,
                            sample_seed=seed).expand())
            for seed in range(8)
        }
        assert len(picks) > 1

    def test_sample_larger_than_grid_is_full_grid(self, spec):
        sampled = SweepSpec(**SPEC_KWARGS, sample=99)
        assert [c.cell_id for c in sampled.expand()] == \
            [c.cell_id for c in spec.expand()]


class TestSweepJournal:
    def test_record_read_round_trip(self, tmp_path):
        journal = SweepJournal(tmp_path / JOURNAL_NAME)
        journal.open_sweep("abc123", "grid")
        journal.record("started", "0001-deadbeef0000", "deadbeef", attempt=1)
        journal.record("done", "0001-deadbeef0000", "deadbeef", attempt=1)
        events = [e["event"] for e in journal.read()]
        assert events == ["sweep-open", "started", "done"]
        assert journal.spec_hashes() == {"abc123"}

    def test_unknown_event_rejected(self, tmp_path):
        journal = SweepJournal(tmp_path / JOURNAL_NAME)
        with pytest.raises(SweepError, match="unknown journal event"):
            journal.record("exploded", "0001", "hash")

    def test_torn_final_line_dropped(self, tmp_path):
        journal = SweepJournal(tmp_path / JOURNAL_NAME)
        journal.open_sweep("abc", "grid")
        journal.record("started", "0001", "hash", attempt=1)
        with open(journal.path, "a") as handle:
            handle.write('{"v": 1, "event": "done", "ce')  # mid-append kill
        events = [e["event"] for e in journal.read()]
        assert events == ["sweep-open", "started"]

    def test_mid_file_corruption_is_typed(self, tmp_path):
        journal = SweepJournal(tmp_path / JOURNAL_NAME)
        journal.path.write_text('{"event": "sweep-open"}\n'
                                '{torn}\n'
                                '{"event": "done", "cell": "0001"}\n')
        with pytest.raises(SweepError, match="corrupt journal line"):
            journal.read()

    def test_non_event_entry_is_typed(self, tmp_path):
        journal = SweepJournal(tmp_path / JOURNAL_NAME)
        journal.path.write_text('[1, 2, 3]\n{"event": "done"}\n')
        with pytest.raises(SweepError, match="not an event"):
            journal.read()

    def test_reduce_last_event_wins(self):
        entries = [
            {"event": "sweep-open", "spec": "abc"},
            {"event": "started", "cell": "a", "attempt": 1},
            {"event": "failed", "cell": "a", "attempt": 1},
            {"event": "started", "cell": "b", "attempt": 1},
            {"event": "retry-scheduled", "cell": "a", "attempt": 2},
            {"event": "done", "cell": "b", "attempt": 1},
            {"event": "quarantined", "cell": "a", "attempt": 3},
        ]
        state = SweepJournal.reduce(entries)
        assert state["a"]["event"] == "quarantined"
        assert state["b"]["event"] == "done"
        assert set(state) == {"a", "b"}

    def test_missing_file_reads_empty(self, tmp_path):
        assert SweepJournal(tmp_path / JOURNAL_NAME).read() == []


def _finalize_cell(run_root, cell) -> None:
    """Materialize a verified run dir for *cell* without executing it."""
    run = RunDir.create(run_root, cell.experiment)
    run.save_metrics({"time_seconds": 1.0})
    run.finalize()


class TestPlanSweep:
    def test_fresh_root_all_pending(self, tmp_path, spec):
        plan = plan_sweep(spec, tmp_path / "root")
        assert plan.counts == {"pending": 4, "cached": 0, "quarantined": 0}
        assert not plan.resumed

    def test_verified_run_dir_is_cached(self, tmp_path, spec):
        root = tmp_path / "root"
        cells = spec.expand()
        _finalize_cell(root, cells[1])
        plan = plan_sweep(spec, root)
        by_id = {cp.cell.cell_id: cp for cp in plan.cells}
        assert by_id[cells[1].cell_id].status == "cached"
        assert plan.counts["pending"] == 3

    def test_unverified_run_dir_is_stale_pending(self, tmp_path, spec):
        root = tmp_path / "root"
        cell = spec.expand()[0]
        torn = root / cell.run_dir_name
        torn.mkdir(parents=True)
        (torn / "metrics.json").write_text("{}")  # no manifest: torn cell
        plan = plan_sweep(spec, root)
        cp = next(c for c in plan.cells if c.cell.cell_id == cell.cell_id)
        assert cp.status == "pending"
        assert cp.stale

    def test_existing_journal_requires_resume(self, tmp_path, spec):
        root = tmp_path / "root"
        SweepJournal(root / JOURNAL_NAME).open_sweep(
            spec.content_hash(), spec.name)
        with pytest.raises(SweepError, match="--resume"):
            plan_sweep(spec, root)
        assert plan_sweep(spec, root, resume=True).resumed

    def test_resume_refuses_foreign_spec(self, tmp_path, spec):
        root = tmp_path / "root"
        SweepJournal(root / JOURNAL_NAME).open_sweep("f" * 64, "other")
        with pytest.raises(SweepError, match="different sweep spec"):
            plan_sweep(spec, root, resume=True)

    def test_quarantine_survives_resume(self, tmp_path, spec):
        root = tmp_path / "root"
        cell = spec.expand()[2]
        journal = SweepJournal(root / JOURNAL_NAME)
        journal.open_sweep(spec.content_hash(), spec.name)
        journal.record("quarantined", cell.cell_id, cell.config_hash,
                       attempt=3)
        plan = plan_sweep(spec, root, resume=True)
        cp = next(c for c in plan.cells if c.cell.cell_id == cell.cell_id)
        assert cp.status == "quarantined"
        lifted = plan_sweep(spec, root, resume=True, retry_quarantined=True)
        cp = next(c for c in lifted.cells if c.cell.cell_id == cell.cell_id)
        assert cp.status == "pending"

    def test_verified_dir_beats_quarantine_record(self, tmp_path, spec):
        # A quarantined cell whose run dir somehow verifies (e.g. run by
        # hand afterwards) is complete — artifacts outrank the journal.
        root = tmp_path / "root"
        cell = spec.expand()[0]
        journal = SweepJournal(root / JOURNAL_NAME)
        journal.open_sweep(spec.content_hash(), spec.name)
        journal.record("quarantined", cell.cell_id, cell.config_hash)
        _finalize_cell(root, cell)
        plan = plan_sweep(spec, root, resume=True)
        cp = next(c for c in plan.cells if c.cell.cell_id == cell.cell_id)
        assert cp.status == "cached"


class TestChaosSpec:
    def test_parse_inline_json(self):
        chaos = ChaosSpec.parse(
            '{"faults": [{"fault": "crash", "cell": 1, "attempt": 1},'
            ' {"fault": "parent-exit", "after_done": 2}]}'
        )
        assert chaos.worker_faults(1, "0001-abc", 1) == ("crash",)
        assert chaos.worker_faults(1, "0001-abc", 2) == ()
        assert chaos.worker_faults(0, "0000-abc", 1) == ()
        assert chaos.parent_exit_after() == 2

    def test_parse_at_file(self, tmp_path):
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps(
            {"faults": [{"fault": "hang", "cell": "0002", "attempt": "*"}]}
        ))
        chaos = ChaosSpec.parse(f"@{path}")
        # String matchers are cell-id prefixes; "*" hits every attempt.
        assert chaos.worker_faults(2, "0002-beef", 1) == ("hang",)
        assert chaos.worker_faults(2, "0002-beef", 7) == ("hang",)
        assert chaos.worker_faults(12, "0012-beef", 1) == ()

    def test_empty_parse(self):
        assert ChaosSpec.parse(None) == ChaosSpec()
        assert ChaosSpec.parse("") == ChaosSpec()

    def test_bad_json_is_typed(self):
        with pytest.raises(SweepError, match="not valid JSON"):
            ChaosSpec.parse("{oops")

    def test_unknown_fault_rejected(self):
        with pytest.raises(SweepError, match="unknown chaos fault"):
            ChaosSpec.parse('{"faults": [{"fault": "meteor", "cell": 0}]}')

    def test_worker_fault_needs_cell(self):
        with pytest.raises(SweepError, match="cell"):
            ChaosSpec.parse('{"faults": [{"fault": "crash"}]}')

    def test_parent_exit_needs_after_done(self):
        with pytest.raises(SweepError, match="after_done"):
            ChaosSpec.parse('{"faults": [{"fault": "parent-exit"}]}')

    def test_missing_faults_list_rejected(self):
        with pytest.raises(SweepError, match="faults"):
            ChaosSpec.parse('{"fault": "crash"}')


class TestSweepCellError:
    def test_typed_and_kinds_pinned(self):
        err = SweepCellError("0001-abc", "timeout", 2, "exceeded 5.0s")
        assert isinstance(err, ReproError)
        assert err.kind == "timeout"
        assert "0001-abc" in str(err) and "exceeded 5.0s" in str(err)
        with pytest.raises(ValueError, match="kind"):
            SweepCellError("0001-abc", "meteor", 1)
