"""Machine descriptors, full-spec digests, and config-hash pinning.

The regression being guarded: machines that differ only in a
descriptor-feeding field (a cache size, a GPU bandwidth, the noise
sigma) must never collide to one identity — neither in
:func:`repro.arch.descriptor.machine_digest` nor in the config hash of
an experiment that names the machine.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.arch.descriptor import (
    DESCRIPTOR_FEATURES,
    MachineDescriptor,
    descriptor_from_spec,
    descriptor_matrix,
    machine_digest,
    spec_canonical_dict,
    spec_from_descriptor,
)
from repro.arch.hardware import MachineSpec
from repro.arch.machines import (
    CORONA,
    LASSEN,
    MACHINES,
    QUARTZ,
    RUBY,
    SYSTEM_ORDER,
)
from repro.config import ExperimentConfig, ProfileConfig, WhatifConfig
from repro.errors import ConfigError


class TestMachineDescriptor:
    def test_vector_order_matches_features(self):
        desc = descriptor_from_spec(RUBY)
        vec = desc.vector()
        assert vec.shape == (len(DESCRIPTOR_FEATURES),)
        for i, feature in enumerate(DESCRIPTOR_FEATURES):
            assert vec[i] == float(getattr(desc, feature))

    def test_dict_round_trip(self):
        desc = descriptor_from_spec(LASSEN)
        again = MachineDescriptor.from_dict(desc.to_dict())
        assert again == desc
        assert np.array_equal(again.vector(), desc.vector())

    def test_cpu_only_machine_has_zero_gpu_fields(self):
        desc = descriptor_from_spec(QUARTZ)
        assert desc.gpus_per_node == 0.0
        assert desc.gpu_sp_gflops == 0.0
        assert desc.gpu_mem_bw_gbs == 0.0

    def test_from_dict_rejects_missing_field(self):
        payload = descriptor_from_spec(QUARTZ).to_dict()
        payload.pop("mem_bw_gbs")
        with pytest.raises(ConfigError, match="missing field.*mem_bw_gbs"):
            MachineDescriptor.from_dict(payload)

    def test_from_dict_rejects_unknown_field(self):
        payload = descriptor_from_spec(QUARTZ).to_dict()
        payload["warp_size"] = 32
        with pytest.raises(ConfigError, match="unknown.*warp_size"):
            MachineDescriptor.from_dict(payload)

    def test_from_dict_rejects_non_numeric(self):
        payload = descriptor_from_spec(QUARTZ).to_dict()
        payload["cores"] = "many"
        with pytest.raises(ConfigError, match="cores.*must be a number"):
            MachineDescriptor.from_dict(payload)

    def test_rejects_non_finite(self):
        payload = descriptor_from_spec(QUARTZ).to_dict()
        payload["clock_ghz"] = float("nan")
        with pytest.raises(ConfigError, match="finite"):
            MachineDescriptor.from_dict(payload)

    def test_descriptor_matrix_stacks_in_order(self):
        descs = [descriptor_from_spec(MACHINES[n]) for n in SYSTEM_ORDER]
        mat = descriptor_matrix(descs)
        assert mat.shape == (4, len(DESCRIPTOR_FEATURES))
        for i, desc in enumerate(descs):
            assert np.array_equal(mat[i], desc.vector())

    def test_descriptor_matrix_rejects_empty(self):
        with pytest.raises(ValueError):
            descriptor_matrix([])


class TestSpecRoundTrip:
    @pytest.mark.parametrize("name", SYSTEM_ORDER)
    def test_spec_round_trips_descriptor_exactly(self, name):
        """spec -> descriptor -> spec -> descriptor is a fixed point."""
        original = descriptor_from_spec(MACHINES[name])
        rebuilt = descriptor_from_spec(spec_from_descriptor(original))
        assert np.array_equal(rebuilt.vector(), original.vector())
        assert rebuilt.name == original.name

    def test_rebuilt_spec_is_registerable(self):
        desc = descriptor_from_spec(CORONA)
        spec = spec_from_descriptor(desc)
        assert isinstance(spec, MachineSpec)
        assert spec.nodes == CORONA.nodes
        assert spec.gpus_per_node == CORONA.gpus_per_node


def _leaf_paths(value, prefix=()):
    """Every (path, leaf) in a spec_canonical_dict tree."""
    if isinstance(value, dict):
        for key, sub in value.items():
            yield from _leaf_paths(sub, prefix + (key,))
    elif isinstance(value, list):
        for i, sub in enumerate(value):
            yield from _leaf_paths(sub, prefix + (i,))
    else:
        yield prefix, value


def _perturb(spec, path):
    """A copy of *spec* with the leaf at *path* changed."""
    if len(path) == 1:
        name = path[0]
        value = getattr(spec, name)
        if isinstance(value, bool):
            new = not value
        elif isinstance(value, (int, float)):
            new = value + 1
        elif isinstance(value, str):
            new = value + "_x"
        elif value is None:
            return None  # optional sub-spec absent; nothing to perturb
        elif isinstance(value, dict):
            new = {**value, "_perturbed": 1}
        else:  # pragma: no cover - no other leaf types exist
            raise AssertionError(f"unhandled leaf {value!r}")
        return dataclasses.replace(spec, **{name: new})
    sub = getattr(spec, path[0])
    new_sub = _perturb(sub, path[1:])
    if new_sub is None:
        return None
    return dataclasses.replace(spec, **{path[0]: new_sub})


class TestMachineDigest:
    def test_distinct_for_all_registered_machines(self):
        digests = {machine_digest(MACHINES[n]) for n in SYSTEM_ORDER}
        assert len(digests) == len(SYSTEM_ORDER)

    def test_stable_across_calls(self):
        assert machine_digest(QUARTZ) == machine_digest(QUARTZ)

    def test_every_field_changes_the_digest(self):
        """Exhaustive by construction: perturb every leaf of every
        registered spec (recursively, via dataclasses.fields) and
        require a digest change.  A newly added MachineSpec/CPUSpec/
        GPUSpec field is covered automatically — this test cannot go
        stale the way a hand-written field list would."""
        for name in SYSTEM_ORDER:
            spec = MACHINES[name]
            base = machine_digest(spec)
            tree = spec_canonical_dict(spec)
            paths = [p for p, _ in _leaf_paths(tree)]
            assert paths, "spec tree unexpectedly empty"
            tested = 0
            for path in paths:
                try:
                    mutated = _perturb(spec, path)
                except (ValueError, ConfigError):
                    # The perturbed spec fails hardware validation
                    # (e.g. a GPU count without a GPU spec) — a value
                    # that cannot exist cannot collide.
                    continue
                if mutated is None:
                    continue
                tested += 1
                assert machine_digest(mutated) != base, (
                    f"{name}: perturbing {'.'.join(map(str, path))} "
                    "did not change machine_digest"
                )
            # Most leaves must survive perturbation, or the test is
            # vacuous; every spec has >15 numeric leaves.
            assert tested >= 0.7 * len(paths), (
                f"{name}: only {tested}/{len(paths)} spec leaves were "
                "perturbable"
            )

    def test_extra_dict_entries_covered(self):
        spec = dataclasses.replace(QUARTZ, extra={"stream_triad_gbs": 65.0})
        assert machine_digest(spec) != machine_digest(QUARTZ)


class TestConfigHashPinsNamedMachines:
    """Satellite regression: configs naming a machine embed its full
    spec digest, so a re-specced machine changes the run identity."""

    def _swap(self, name, spec):
        MACHINES[name] = spec

    def test_respecced_machine_changes_profile_hash(self):
        experiment = ExperimentConfig(
            "profile", ProfileConfig(app="lulesh", machine="Quartz")
        )
        base = experiment.content_hash()
        try:
            self._swap(
                "Quartz",
                dataclasses.replace(QUARTZ,
                                    counter_noise_sigma=QUARTZ
                                    .counter_noise_sigma + 0.01),
            )
            assert experiment.content_hash() != base
        finally:
            self._swap("Quartz", QUARTZ)
        assert experiment.content_hash() == base

    def test_source_field_is_pinned_too(self):
        experiment = ExperimentConfig(
            "whatif",
            WhatifConfig(predictor="p.pkl", apps=("lulesh",),
                         source="Ruby"),
        )
        base = experiment.content_hash()
        try:
            self._swap("Ruby", dataclasses.replace(RUBY, nodes=RUBY.nodes + 1))
            assert experiment.content_hash() != base
        finally:
            self._swap("Ruby", RUBY)

    def test_unnamed_machines_do_not_pin(self):
        """Re-speccing a machine the config does NOT name leaves the
        hash alone — registering or tweaking machine N+1 must never
        invalidate existing run identities."""
        experiment = ExperimentConfig(
            "profile", ProfileConfig(app="lulesh", machine="Quartz")
        )
        base = experiment.content_hash()
        try:
            self._swap("Corona",
                       dataclasses.replace(CORONA, nodes=CORONA.nodes + 5))
            assert experiment.content_hash() == base
        finally:
            self._swap("Corona", CORONA)

    def test_unknown_machine_name_hashes_without_pin(self):
        experiment = ExperimentConfig(
            "profile", ProfileConfig(app="lulesh", machine="NoSuchMachine")
        )
        assert len(experiment.content_hash()) == 64
