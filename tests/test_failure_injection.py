"""Failure-injection tests: corrupted inputs fail loudly, not silently."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.predictor import CrossArchPredictor
from repro.errors import ProfileError, ReproError, TraceError
from repro.frame import Frame, read_csv
from repro.ml.serialization import model_from_dict
from repro.profiler import load_profile, profile_run, save_profile
from repro.workloads.swf import read_swf


class TestCorruptedProfiles:
    def _profile(self):
        from repro.apps import APPLICATIONS, generate_inputs
        from repro.arch import QUARTZ
        from repro.perfsim.config import make_run_config

        app = APPLICATIONS["CoMD"]
        inp = generate_inputs(app, 1, seed=0)[0]
        return profile_run(app, inp, QUARTZ,
                           make_run_config(app, QUARTZ, "1core"), seed=0)

    def test_truncated_json(self, tmp_path):
        path = tmp_path / "p.json"
        save_profile(self._profile(), path)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(ProfileError) as err:
            load_profile(path)
        assert str(path) in str(err.value)
        assert "line" in str(err.value)

    def test_orphan_node(self, tmp_path):
        path = tmp_path / "p.json"
        save_profile(self._profile(), path)
        doc = json.loads(path.read_text())
        doc["nodes"][0]["parent"] = 5  # root must be parentless
        path.write_text(json.dumps(doc))
        with pytest.raises(ProfileError) as err:
            load_profile(path)
        assert str(path) in str(err.value)

    def test_profile_error_is_value_error(self):
        # Backwards compatibility: callers that caught ValueError keep
        # working after the switch to the ProfileError hierarchy.
        assert issubclass(ProfileError, ValueError)
        assert issubclass(ProfileError, ReproError)

    def test_missing_file_is_not_corruption(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_profile(tmp_path / "absent.json")

    def test_missing_counter_fails_decode(self, tmp_path):
        from repro.hatchet_lite import run_record

        profile = self._profile()
        for node in profile.root.walk():
            node.metrics.pop("PAPI_BR_INS", None)
        with pytest.raises(KeyError):
            run_record(profile)


class TestCorruptedModels:
    def test_missing_kind(self):
        with pytest.raises(ValueError):
            model_from_dict({"coef": [1.0]})

    def test_mangled_tree_nodes(self):
        from repro.ml import GradientBoostedTrees, model_to_dict

        rng = np.random.default_rng(0)
        X, y = rng.normal(size=(50, 2)), rng.normal(size=50)
        doc = model_to_dict(
            GradientBoostedTrees(n_estimators=2, random_state=0).fit(X, y)
        )
        del doc["rounds"][0][0]["nodes"][0]["value"]
        with pytest.raises(KeyError):
            model_from_dict(doc)

    def test_predictor_load_garbage(self, tmp_path):
        path = tmp_path / "junk.pkl"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(Exception):
            CrossArchPredictor.load(path)


class TestCorruptedTables:
    def test_csv_with_inconsistent_rows(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_predictor_rejects_missing_feature_columns(self, small_dataset,
                                                       trained_xgb):
        frame = Frame({"branch_intensity": [0.1]})
        with pytest.raises(KeyError):
            trained_xgb.predict_frame(frame)

    def test_predict_record_missing_fields(self, trained_xgb):
        with pytest.raises(KeyError):
            trained_xgb.predict_record({"app": "CoMD"})


class TestCorruptedTraces:
    def test_swf_with_text_fields(self, tmp_path):
        path = tmp_path / "bad.swf"
        path.write_text("1 two 3 4 5\n")
        with pytest.raises(TraceError) as err:
            read_swf(path)
        assert f"{path}:1" in str(err.value)

    def test_swf_with_short_line(self, tmp_path):
        path = tmp_path / "short.swf"
        path.write_text("; header survives\n1 0 0 10 1\n42 7\n")
        with pytest.raises(TraceError) as err:
            read_swf(path)
        assert f"{path}:3" in str(err.value)

    def test_trace_error_is_value_error(self):
        assert issubclass(TraceError, ValueError)
        assert issubclass(TraceError, ReproError)

    def test_job_with_zero_runtime_rejected(self):
        from repro.sched import Job

        with pytest.raises(ValueError):
            Job(job_id=0, app="x", uses_gpu=False, nodes_required=1,
                runtimes={"Quartz": 0.0})

    def test_negative_submit_rejected(self):
        from repro.sched import Job

        with pytest.raises(ValueError):
            Job(job_id=0, app="x", uses_gpu=False, nodes_required=1,
                runtimes={"Quartz": 1.0}, submit_time=-5.0)
