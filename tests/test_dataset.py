"""Tests for MP-HPC dataset generation and feature derivation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import SYSTEM_ORDER
from repro.dataset import (
    ARCH_COLUMNS,
    FEATURE_COLUMNS,
    MAGNITUDE_FEATURES,
    RATIO_FEATURES,
    TARGET_COLUMNS,
    FeatureNormalizer,
    MPHPCDataset,
    derive_feature_frame,
    generate_dataset,
)
from repro.errors import DatasetError, ReproError
from repro.frame import Frame, write_csv


class TestSchema:
    def test_twenty_one_features(self):
        # "The final MP-HPC dataset has 21 columns" (feature columns).
        assert len(FEATURE_COLUMNS) == 21

    def test_feature_blocks(self):
        assert len(RATIO_FEATURES) == 6
        assert len(MAGNITUDE_FEATURES) == 8
        assert len(ARCH_COLUMNS) == 4

    def test_targets_per_system(self):
        assert len(TARGET_COLUMNS) == len(SYSTEM_ORDER)
        assert TARGET_COLUMNS[0] == "rpv_quartz"


class TestGeneration:
    def test_row_count(self, small_dataset):
        # 20 apps x 4 inputs x 3 scales x 4 systems
        assert small_dataset.num_rows == 20 * 4 * 3 * 4

    def test_paper_scale_row_count(self):
        # At the default 47 inputs/app the dataset matches the paper's
        # 11,312-row scale: 20 * 47 * 3 * 4 = 11,280.
        from repro.dataset.generate import DEFAULT_INPUTS_PER_APP
        assert 20 * DEFAULT_INPUTS_PER_APP * 3 * 4 == 11280

    def test_matrix_shapes(self, small_dataset):
        assert small_dataset.X().shape == (small_dataset.num_rows, 21)
        assert small_dataset.Y().shape == (small_dataset.num_rows, 4)

    def test_deterministic(self):
        a = generate_dataset(inputs_per_app=2, seed=9, apps=["CoMD"])
        b = generate_dataset(inputs_per_app=2, seed=9, apps=["CoMD"])
        assert a.frame == b.frame

    def test_seed_changes_data(self):
        a = generate_dataset(inputs_per_app=2, seed=1, apps=["CoMD"])
        b = generate_dataset(inputs_per_app=2, seed=2, apps=["CoMD"])
        assert a.frame != b.frame

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            generate_dataset(inputs_per_app=1, apps=["HPL"])

    def test_bad_inputs_per_app(self):
        with pytest.raises(ValueError):
            generate_dataset(inputs_per_app=0)

    def test_targets_are_rpv_to_slowest(self, small_dataset):
        Y = small_dataset.Y()
        assert Y.max() <= 1.0 + 1e-12
        assert Y.min() > 0.0
        # every group's slowest component is exactly 1
        assert np.isclose(Y.max(axis=1), 1.0).all()

    def test_group_rows_share_target(self, small_dataset):
        groups = small_dataset.group_labels()
        Y = small_dataset.Y()
        first = groups[0]
        rows = np.flatnonzero(groups == first)
        assert len(rows) == 4  # one per system
        assert np.allclose(Y[rows], Y[rows[0]])

    def test_one_hot_arch(self, small_dataset):
        onehot = small_dataset.frame.to_matrix(list(ARCH_COLUMNS))
        assert np.array_equal(onehot.sum(axis=1), np.ones(len(onehot)))
        machines = small_dataset.frame["machine"]
        for i in range(0, 50):
            j = list(SYSTEM_ORDER).index(str(machines[i]))
            assert onehot[i, j] == 1.0

    def test_gpu_flag_only_for_gpu_apps_on_gpu_systems(self, small_dataset):
        frame = small_dataset.frame
        gpu = frame.to_matrix(["uses_gpu"])[:, 0]
        machines = np.array([str(m) for m in frame["machine"]])
        cpu_sys = (machines == "Quartz") | (machines == "Ruby")
        assert gpu[cpu_sys].sum() == 0

    def test_subset_filters_rows(self, small_dataset):
        machines = np.array([str(m) for m in small_dataset.frame["machine"]])
        sub = small_dataset.subset(machines == "Ruby")
        assert sub.num_rows == small_dataset.num_rows // 4

    def test_csv_roundtrip(self, small_dataset, tmp_path):
        path = tmp_path / "mphpc.csv"
        small_dataset.save(path)
        back = MPHPCDataset.load(path)
        assert back.frame == small_dataset.frame


class TestLoadSchemaDrift:
    """``MPHPCDataset.load`` rejects drifted tables with a typed error
    naming the path and the offending columns, instead of a bare
    ``KeyError`` at first column access."""

    def test_missing_column_raises_dataset_error(self, small_dataset,
                                                 tmp_path):
        path = tmp_path / "drift.csv"
        write_csv(small_dataset.frame.drop("branch_intensity"), path)
        with pytest.raises(DatasetError) as exc:
            MPHPCDataset.load(path)
        message = str(exc.value)
        assert str(path) in message
        assert "branch_intensity" in message

    def test_extra_column_raises_dataset_error(self, small_dataset,
                                               tmp_path):
        path = tmp_path / "drift.csv"
        write_csv(
            small_dataset.frame.with_column("bogus_column", 1.0), path
        )
        with pytest.raises(DatasetError) as exc:
            MPHPCDataset.load(path)
        assert "bogus_column" in str(exc.value)

    def test_dataset_error_is_catchable_as_value_error(self, small_dataset,
                                                       tmp_path):
        path = tmp_path / "drift.csv"
        write_csv(small_dataset.frame.drop("rpv_quartz"), path)
        with pytest.raises(ValueError):
            MPHPCDataset.load(path)
        with pytest.raises(ReproError):
            MPHPCDataset.load(path)

    def test_arbitrary_csv_rejected(self, tmp_path):
        path = tmp_path / "other.csv"
        write_csv(Frame({"x": [1.0, 2.0], "y": [3.0, 4.0]}), path)
        with pytest.raises(DatasetError):
            MPHPCDataset.load(path)

    def test_valid_csv_still_loads(self, small_dataset, tmp_path):
        path = tmp_path / "ok.csv"
        small_dataset.save(path)
        assert MPHPCDataset.load(path).num_rows == small_dataset.num_rows


class TestFeatures:
    def _records(self):
        return Frame.from_records([
            {
                "machine": "Quartz", "total_instructions": 1000.0,
                "branch": 100.0, "load": 300.0, "store": 100.0,
                "fp_sp": 50.0, "fp_dp": 200.0, "int_arith": 100.0,
                "l1_load_miss": 50.0, "l1_store_miss": 10.0,
                "l2_load_miss": 20.0, "l2_store_miss": 5.0,
                "io_read_bytes": 1e6, "io_write_bytes": 1e5,
                "ept_bytes": 1e7, "mem_stall_cycles": 1e8,
                "nodes": 1.0, "cores": 36.0, "uses_gpu": 0.0,
            },
            {
                "machine": "Lassen", "total_instructions": 2000.0,
                "branch": 100.0, "load": 700.0, "store": 150.0,
                "fp_sp": 500.0, "fp_dp": 20.0, "int_arith": 200.0,
                "l1_load_miss": 70.0, "l1_store_miss": 20.0,
                "l2_load_miss": 30.0, "l2_store_miss": 8.0,
                "io_read_bytes": 2e6, "io_write_bytes": 3e5,
                "ept_bytes": 2e7, "mem_stall_cycles": 3e8,
                "nodes": 2.0, "cores": 88.0, "uses_gpu": 1.0,
            },
        ])

    def test_ratios(self):
        out, _ = derive_feature_frame(self._records())
        assert out["branch_intensity"][0] == pytest.approx(0.1)
        assert out["load_intensity"][1] == pytest.approx(0.35)

    def test_magnitudes_zscored(self):
        out, _ = derive_feature_frame(self._records())
        for feature in MAGNITUDE_FEATURES:
            col = out[feature]
            assert abs(float(np.mean(col))) < 1e-9
            assert float(np.std(col)) == pytest.approx(1.0)

    def test_one_hot(self):
        out, _ = derive_feature_frame(self._records())
        assert out["arch_quartz"][0] == 1.0 and out["arch_quartz"][1] == 0.0
        assert out["arch_lassen"][1] == 1.0

    def test_reuse_normalizer(self):
        records = self._records()
        _, norm = derive_feature_frame(records)
        out2, norm2 = derive_feature_frame(records, normalizer=norm)
        assert norm2 is norm

    def test_normalizer_serialization(self):
        _, norm = derive_feature_frame(self._records())
        back = FeatureNormalizer.from_dict(norm.to_dict())
        assert back.means_ == norm.means_
        assert back.stds_ == norm.stds_

    def test_unfitted_normalizer_raises(self):
        with pytest.raises(RuntimeError):
            FeatureNormalizer().transform(self._records())

    def test_zero_instructions_rejected(self):
        records = self._records().with_column(
            "total_instructions", [0.0, 1.0]
        )
        with pytest.raises(ValueError):
            derive_feature_frame(records)


class TestDatasetStatistics:
    """Structural expectations about the generated data distribution."""

    def test_gpu_rows_fraction(self, small_dataset):
        # 11 GPU apps x 2 GPU systems / (20 apps x 4 systems) = 27.5%.
        gpu = small_dataset.frame.to_matrix(["uses_gpu"])[:, 0]
        assert gpu.mean() == pytest.approx(11 * 2 / 80, abs=0.01)

    def test_quartz_rarely_fastest(self, small_dataset):
        """Quartz (oldest CPUs) should almost never win a group."""
        Y = small_dataset.Y()
        wins = (Y.argmin(axis=1) == 0).mean()
        assert wins < 0.15

    def test_gpu_systems_win_gpu_apps(self, small_dataset):
        from repro.apps import GPU_APPS
        apps = np.array([str(a) for a in small_dataset.frame["app"]])
        Y = small_dataset.Y()
        mask = np.isin(apps, GPU_APPS)
        winner = Y[mask].argmin(axis=1)
        assert (winner >= 2).mean() > 0.6  # Lassen=2 or Corona=3
