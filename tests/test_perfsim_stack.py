"""Tests for the software-stack efficiency model and noise study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import APPLICATIONS, generate_inputs
from repro.arch import LASSEN, QUARTZ
from repro.perfsim.config import make_run_config
from repro.perfsim.execution import (
    PYTHON_STACK_SIGMA_SCALE,
    _stack_efficiency,
    simulate_run,
)


class TestStackEfficiency:
    def test_deterministic(self):
        a = _stack_efficiency("AMG", "Quartz", "1node")
        b = _stack_efficiency("AMG", "Quartz", "1node")
        assert a == b

    def test_varies_by_machine(self):
        factors = {
            m: _stack_efficiency("AMG", m, "1node")
            for m in ("Quartz", "Ruby", "Lassen", "Corona")
        }
        assert len(set(factors.values())) == 4

    def test_varies_by_scale(self):
        assert _stack_efficiency("AMG", "Quartz", "1core") != \
            _stack_efficiency("AMG", "Quartz", "2node")

    def test_positive(self):
        for app in APPLICATIONS:
            assert _stack_efficiency(app, "Ruby", "1node") > 0

    def test_python_stack_spread_is_wider(self):
        """Across many synthetic app names, the python-stack factor
        distribution has larger log-spread (the Fig. 5 mechanism)."""
        names = [f"app{i}" for i in range(300)]
        native = np.log([
            _stack_efficiency(n, "Lassen", "1node", python_stack=False)
            for n in names
        ])
        python = np.log([
            _stack_efficiency(n, "Lassen", "1node", python_stack=True)
            for n in names
        ])
        assert python.std() > 1.3 * native.std()
        assert PYTHON_STACK_SIGMA_SCALE > 1.0

    def test_stack_effects_flag(self):
        app = APPLICATIONS["CoMD"]
        inp = generate_inputs(app, 1, seed=0)[0]
        config = make_run_config(app, QUARTZ, "1node")
        with_stack = simulate_run(app, inp, QUARTZ, config, seed=0,
                                  stack_effects=True).time_seconds
        without = simulate_run(app, inp, QUARTZ, config, seed=0,
                               stack_effects=False).time_seconds
        assert with_stack != without

    def test_counters_unaffected_by_stack_effects(self):
        """The stack factor scales time, never the event counts."""
        app = APPLICATIONS["CoMD"]
        inp = generate_inputs(app, 1, seed=0)[0]
        config = make_run_config(app, QUARTZ, "1node")
        a = simulate_run(app, inp, QUARTZ, config, seed=0,
                         stack_effects=True).counts
        b = simulate_run(app, inp, QUARTZ, config, seed=0,
                         stack_effects=False).counts
        assert a == b


class TestCounterNoiseStudy:
    def test_tiny_run_shape(self):
        from repro.core.evaluation import counter_noise_sensitivity_study

        frame = counter_noise_sensitivity_study(
            noise_scales=(1.0,), inputs_per_app=2,
            model_kwargs={"n_estimators": 20, "max_depth": 4},
        )
        assert frame.num_rows == 2  # cpu_source + gpu_source
        assert set(frame.unique("source")) == {"cpu_source", "gpu_source"}
        assert (frame.to_matrix(["mae"]) > 0).all()

    def test_restores_machine_noise(self):
        from repro.arch.machines import MACHINES
        from repro.core.evaluation import counter_noise_sensitivity_study

        before = {m: MACHINES[m].counter_noise_sigma for m in MACHINES}
        counter_noise_sensitivity_study(
            noise_scales=(0.5,), inputs_per_app=1,
            model_kwargs={"n_estimators": 5, "max_depth": 3},
        )
        after = {m: MACHINES[m].counter_noise_sigma for m in MACHINES}
        assert before == after
