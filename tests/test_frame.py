"""Unit tests for the columnar dataframe substrate."""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import Frame, concat, read_csv, write_csv


@pytest.fixture
def sample() -> Frame:
    return Frame(
        {
            "app": ["amg", "comd", "amg", "sw4"],
            "time": [1.5, 2.0, 0.5, 3.25],
            "nodes": [1, 2, 1, 2],
        }
    )


class TestConstruction:
    def test_shape(self, sample):
        assert sample.shape == (4, 3)
        assert sample.num_rows == 4
        assert sample.columns == ["app", "time", "nodes"]

    def test_empty(self):
        f = Frame()
        assert f.num_rows == 0
        assert f.columns == []

    def test_scalar_broadcast(self):
        f = Frame({"x": [1, 2, 3], "tag": "run"})
        assert list(f["tag"]) == ["run"] * 3

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length"):
            Frame({"a": [1, 2], "b": [1, 2, 3]})

    def test_2d_column_raises(self):
        with pytest.raises(ValueError, match="1-D"):
            Frame({"a": np.zeros((2, 2))})

    def test_dtype_coercion(self, sample):
        assert sample["time"].dtype == np.float64
        assert sample["nodes"].dtype == np.int64
        assert sample["app"].dtype == object

    def test_columns_are_copies(self):
        src = np.array([1.0, 2.0])
        f = Frame({"x": src})
        src[0] = 99.0
        assert f["x"][0] == 1.0

    def test_from_records_union_keys(self):
        f = Frame.from_records([{"a": 1.0}, {"a": 2.0, "b": 5.0}])
        assert np.isnan(f["b"][0]) and f["b"][1] == 5.0

    def test_to_records_roundtrip(self, sample):
        rebuilt = Frame.from_records(sample.to_records())
        assert rebuilt == sample


class TestSelection:
    def test_getitem_column(self, sample):
        assert list(sample["app"][:2]) == ["amg", "comd"]

    def test_getitem_missing_column(self, sample):
        with pytest.raises(KeyError, match="available"):
            sample["nope"]

    def test_getitem_list(self, sample):
        sub = sample[["time", "app"]]
        assert sub.columns == ["time", "app"]

    def test_filter(self, sample):
        fast = sample.filter(sample["time"] < 1.6)
        assert fast.num_rows == 2
        assert set(fast["app"]) == {"amg"}

    def test_filter_bad_mask(self, sample):
        with pytest.raises(ValueError, match="boolean"):
            sample.filter(np.array([1, 0, 1, 0]))

    def test_take_with_repeats(self, sample):
        t = sample.take([0, 0, 3])
        assert list(t["app"]) == ["amg", "amg", "sw4"]

    def test_head(self, sample):
        assert sample.head(2).num_rows == 2
        assert sample.head(100).num_rows == 4

    def test_sort_values(self, sample):
        s = sample.sort_values("time")
        assert list(s["time"]) == sorted(sample["time"])

    def test_sort_descending(self, sample):
        s = sample.sort_values("time", descending=True)
        assert s["time"][0] == 3.25

    def test_sort_multi_key_stable(self):
        f = Frame({"k": [1, 0, 1, 0], "v": [2.0, 1.0, 1.0, 2.0]})
        s = f.sort_values(["k", "v"])
        assert list(s["k"]) == [0, 0, 1, 1]
        assert list(s["v"]) == [1.0, 2.0, 1.0, 2.0]

    def test_unique(self, sample):
        assert list(sample.unique("app")) == ["amg", "comd", "sw4"]


class TestMutationsReturnNew:
    def test_with_column(self, sample):
        f2 = sample.with_column("double", sample["time"] * 2)
        assert "double" not in sample
        assert np.allclose(f2["double"], sample["time"] * 2)

    def test_drop(self, sample):
        f2 = sample.drop("time")
        assert f2.columns == ["app", "nodes"]
        assert "time" in sample

    def test_drop_missing_raises(self, sample):
        with pytest.raises(KeyError):
            sample.drop("ghost")

    def test_rename(self, sample):
        f2 = sample.rename({"time": "seconds"})
        assert "seconds" in f2 and "time" not in f2

    def test_rename_missing_raises(self, sample):
        with pytest.raises(KeyError):
            sample.rename({"ghost": "x"})


class TestGroupbyJoin:
    def test_groupby_named_aggs(self, sample):
        g = sample.groupby("app", {"time": "mean"})
        assert g.num_rows == 3
        amg = g.filter(np.array([a == "amg" for a in g["app"]]))
        assert amg["time"][0] == pytest.approx(1.0)

    def test_groupby_callable(self, sample):
        g = sample.groupby("app", {"n": ("time", len)})
        total = int(np.sum(g["n"]))
        assert total == 4

    def test_groupby_multi_key(self, sample):
        g = sample.groupby(["app", "nodes"], {"time": "sum"})
        assert g.num_rows == 3  # (amg,1), (comd,2), (sw4,2)

    def test_join_inner(self, sample):
        other = Frame({"app": ["amg", "sw4"], "family": ["solver", "stencil"]})
        j = sample.join(other, on="app", how="inner")
        assert j.num_rows == 3
        assert set(j["family"]) == {"solver", "stencil"}

    def test_join_left_fills_missing(self, sample):
        other = Frame({"app": ["amg"], "score": [9.0]})
        j = sample.join(other, on="app", how="left")
        assert j.num_rows == 4
        assert np.isnan(j["score"][1])

    def test_join_bad_how(self, sample):
        with pytest.raises(ValueError):
            sample.join(sample, on="app", how="outer")

    def test_describe(self, sample):
        d = sample.describe("time")
        assert d["count"] == 4
        assert d["min"] == 0.5

    def test_describe_object_raises(self, sample):
        with pytest.raises(TypeError):
            sample.describe("app")


class TestMatrixConcat:
    def test_to_matrix(self, sample):
        m = sample.to_matrix(["time", "nodes"])
        assert m.shape == (4, 2)
        assert m.dtype == np.float64

    def test_to_matrix_object_raises(self, sample):
        with pytest.raises(TypeError):
            sample.to_matrix(["app"])

    def test_concat(self, sample):
        both = concat([sample, sample])
        assert both.num_rows == 8
        assert both.columns == sample.columns

    def test_concat_mismatch_raises(self, sample):
        with pytest.raises(ValueError):
            concat([sample, sample.drop("time")])

    def test_concat_empty_list(self):
        assert concat([]).num_rows == 0


class TestCSV:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(sample, path)
        back = read_csv(path)
        assert back == sample

    def test_read_from_buffer(self):
        buf = io.StringIO("a,b\n1,x\n2,y\n")
        f = read_csv(buf)
        assert f["a"].dtype == np.int64
        assert list(f["b"]) == ["x", "y"]

    def test_ragged_row_raises(self):
        with pytest.raises(ValueError, match="fields"):
            read_csv(io.StringIO("a,b\n1\n"))

    def test_float_precision_preserved(self, tmp_path):
        f = Frame({"x": [0.1 + 0.2, 1e-17, 1e300]})
        path = tmp_path / "p.csv"
        write_csv(f, path)
        assert np.array_equal(read_csv(path)["x"], f["x"])


@given(
    values=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        min_size=1, max_size=50,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_csv_roundtrip_floats(values, tmp_path_factory):
    f = Frame({"x": np.array(values, dtype=np.float64)})
    buf = io.StringIO()
    import csv as _csv
    # round-trip through in-memory CSV
    from repro.frame.io import _read, _render  # type: ignore
    writer = _csv.writer(buf)
    writer.writerow(["x"])
    for v in f["x"]:
        writer.writerow([_render(v)])
    buf.seek(0)
    back = _read(buf)
    assert np.array_equal(back["x"], f["x"])


@given(
    n=st.integers(1, 30),
    seed=st.integers(0, 1000),
)
@settings(max_examples=50, deadline=None)
def test_property_sort_is_permutation(n, seed):
    rng = np.random.default_rng(seed)
    f = Frame({"v": rng.normal(size=n)})
    s = f.sort_values("v")
    assert sorted(f["v"]) == list(s["v"])


@given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_property_groupby_count_partitions_rows(keys):
    f = Frame({"k": keys, "v": np.arange(len(keys), dtype=np.float64)})
    g = f.groupby("k", {"n": ("v", len)})
    assert int(np.sum(g["n"])) == len(keys)
