"""Tests for the provenance-stamped run-directory store (repro.artifacts)."""

import json

import pytest

from repro.artifacts import (
    MANIFEST_FORMAT_VERSION,
    MANIFEST_NAME,
    RunDir,
    find_run,
    list_runs,
    load_run,
    verify_run,
)
from repro.config import EvaluateConfig, ExperimentConfig, TrainConfig
from repro.errors import ArtifactError, ReproError


@pytest.fixture
def experiment():
    return ExperimentConfig("evaluate", EvaluateConfig(inputs_per_app=2))


@pytest.fixture
def finalized(tmp_path, experiment):
    run = RunDir.create(tmp_path / "runs", experiment)
    run.save_metrics({"xgboost": {"mae": 0.03, "sos": 0.9}})
    run.save_json("extra/notes.json", {"note": "hello"})
    run.finalize()
    return run


class TestRunDir:
    def test_directory_name_is_content_derived(self, tmp_path, experiment):
        run = RunDir.create(tmp_path, experiment)
        assert run.path.name == (
            f"evaluate-{experiment.content_hash()[:12]}"
        )
        # Same config -> same directory (idempotent).
        again = RunDir.create(tmp_path, experiment)
        assert again.path == run.path

    def test_escaping_artifact_names_rejected(self, tmp_path, experiment):
        run = RunDir.create(tmp_path, experiment)
        with pytest.raises(ArtifactError, match="escapes"):
            run.file("../outside.json")
        with pytest.raises(ArtifactError):
            run.file("/etc/passwd")

    def test_attach_copies_external_file(self, tmp_path, experiment):
        source = tmp_path / "data.csv"
        source.write_text("a,b\n1,2\n")
        run = RunDir.create(tmp_path / "runs", experiment)
        target = run.attach(source)
        assert target.read_text() == source.read_text()
        with pytest.raises(ArtifactError, match="not a file"):
            run.attach(tmp_path / "missing.csv")

    def test_manifest_records_provenance(self, finalized, experiment):
        manifest = json.loads((finalized.path / MANIFEST_NAME).read_text())
        assert manifest["manifest_format_version"] == MANIFEST_FORMAT_VERSION
        assert manifest["command"] == "evaluate"
        assert manifest["config_hash"] == experiment.content_hash()
        assert manifest["seed"] == experiment.seed
        assert manifest["config_schema_version"] >= 1
        assert manifest["dataset_schema_version"] >= 1
        assert manifest["model_format_version"] >= 1
        assert manifest["wall_time_seconds"] >= 0
        assert set(manifest["files"]) == {"metrics.json",
                                          "extra/notes.json"}
        for meta in manifest["files"].values():
            assert len(meta["sha256"]) == 64
            assert meta["bytes"] > 0

    def test_save_model_round_trips(self, tmp_path, experiment):
        import numpy as np

        from repro.ml import LinearRegression

        model = LinearRegression().fit(
            np.arange(8.0).reshape(4, 2), np.arange(4.0)
        )
        run = RunDir.create(tmp_path, experiment)
        run.save_model(model)
        run.finalize()
        restored = load_run(run.path).model()
        X = np.arange(8.0).reshape(4, 2)
        assert np.allclose(restored.predict(X), model.predict(X))


class TestLoadRun:
    def test_load_round_trip(self, finalized, experiment):
        loaded = load_run(finalized.path)
        assert loaded.command == "evaluate"
        assert loaded.config == experiment
        assert loaded.config_hash == experiment.content_hash()
        assert loaded.seed == experiment.seed
        assert loaded.files() == ("extra/notes.json", "metrics.json")
        assert loaded.metrics()["xgboost"]["mae"] == 0.03
        assert loaded.read_json("extra/notes.json") == {"note": "hello"}

    def test_not_a_run_dir(self, tmp_path):
        with pytest.raises(ArtifactError, match="not a run directory"):
            load_run(tmp_path)

    def test_corrupt_manifest(self, finalized):
        (finalized.path / MANIFEST_NAME).write_text("{oops")
        with pytest.raises(ArtifactError, match="corrupt"):
            load_run(finalized.path)

    def test_version_mismatch(self, finalized):
        manifest = json.loads((finalized.path / MANIFEST_NAME).read_text())
        manifest["manifest_format_version"] = 999
        (finalized.path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="format version"):
            load_run(finalized.path)

    def test_missing_keys(self, finalized):
        manifest = json.loads((finalized.path / MANIFEST_NAME).read_text())
        del manifest["config_hash"]
        (finalized.path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="config_hash"):
            load_run(finalized.path)

    def test_artifact_error_is_typed(self):
        assert issubclass(ArtifactError, ReproError)


class TestVerifyRun:
    def test_clean_run_verifies(self, finalized):
        assert verify_run(finalized.path).command == "evaluate"

    def test_bit_rot_detected(self, finalized):
        (finalized.path / "metrics.json").write_text("{\"tampered\": true}")
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            verify_run(finalized.path)

    def test_missing_file_detected(self, finalized):
        (finalized.path / "metrics.json").unlink()
        with pytest.raises(ArtifactError, match="missing"):
            verify_run(finalized.path)

    def test_config_hash_tamper_detected(self, finalized):
        manifest = json.loads((finalized.path / MANIFEST_NAME).read_text())
        manifest["config_hash"] = "0" * 64
        (finalized.path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="config hash mismatch"):
            verify_run(finalized.path)

    def test_truncated_manifest_is_typed(self, finalized):
        # The torn-write scenario the atomic writers exist to prevent:
        # a manifest cut mid-byte must surface as ArtifactError, never a
        # leaked JSONDecodeError.
        manifest = finalized.path / MANIFEST_NAME
        data = manifest.read_bytes()
        manifest.write_bytes(data[: len(data) // 2])
        with pytest.raises(ArtifactError, match="corrupt"):
            verify_run(finalized.path)

    def test_missing_manifest_is_typed(self, finalized):
        (finalized.path / MANIFEST_NAME).unlink()
        with pytest.raises(ArtifactError, match="not a run directory"):
            verify_run(finalized.path)

    def test_same_size_tamper_detected(self, finalized):
        # A flipped byte that keeps the file length: only the checksum
        # can catch it.
        path = finalized.path / "metrics.json"
        data = bytearray(path.read_bytes())
        data[-2] ^= 0x01
        path.write_bytes(bytes(data))
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            verify_run(finalized.path)

    def test_orphan_file_detected(self, finalized):
        # A file written after finalize() has no provenance — it must be
        # flagged, not silently accepted (telemetry artifacts included).
        (finalized.path / "orphan.json").write_text("{}")
        with pytest.raises(ArtifactError, match="orphan.json"):
            verify_run(finalized.path)

    def test_orphan_in_subdirectory_detected(self, finalized):
        sub = finalized.path / "extra"
        sub.mkdir(exist_ok=True)
        (sub / "stray.txt").write_text("stray")
        with pytest.raises(ArtifactError, match="extra/stray.txt"):
            verify_run(finalized.path)


class TestTrainRunManifest:
    def test_model_format_version_recorded(self, tmp_path):
        exp = ExperimentConfig("train", TrainConfig(inputs_per_app=2))
        run = RunDir.create(tmp_path, exp)
        run.finalize()
        from repro.ml.serialization import MODEL_FORMAT_VERSION

        manifest = load_run(run.path).manifest
        assert manifest["model_format_version"] == MODEL_FORMAT_VERSION


class TestRegistryDiscovery:
    """list_runs/find_run: the serving layer's registry lookups, which
    must tolerate a registry being mutated while watched."""

    def _make(self, root, inputs_per_app, command="evaluate"):
        cfg = (TrainConfig(inputs_per_app=inputs_per_app)
               if command == "train"
               else EvaluateConfig(inputs_per_app=inputs_per_app))
        run = RunDir.create(root, ExperimentConfig(command, cfg))
        run.save_metrics({"m": {"v": inputs_per_app}})
        run.finalize()
        return run

    def test_lists_finalized_runs_sorted(self, tmp_path):
        r2 = self._make(tmp_path, 2)
        r3 = self._make(tmp_path, 3)
        names = [run.path.name for run in list_runs(tmp_path)]
        assert names == sorted([r2.path.name, r3.path.name])

    def test_missing_root_is_empty_not_an_error(self, tmp_path):
        assert list_runs(tmp_path / "nowhere") == []

    def test_skips_half_built_runs(self, tmp_path):
        """A publisher mid-copy leaves a dir without a manifest; the
        watcher's discovery pass must skip it, not die on it."""
        keeper = self._make(tmp_path, 2)
        (tmp_path / "train-0123abcd").mkdir()  # no manifest yet
        (tmp_path / "stray_file.json").write_text("{}")
        torn = tmp_path / "evaluate-deadbeef0000"
        torn.mkdir()
        (torn / MANIFEST_NAME).write_text('{"files": ')  # torn JSON
        found = list_runs(tmp_path)
        assert [run.path for run in found] == [keeper.path]

    def test_filters_by_command(self, tmp_path):
        self._make(tmp_path, 2, command="evaluate")
        train = self._make(tmp_path, 2, command="train")
        found = list_runs(tmp_path, command="train")
        assert [run.path for run in found] == [train.path]

    def test_find_run_by_hash_prefix(self, tmp_path):
        run = self._make(tmp_path, 2)
        chash = load_run(run.path).config_hash
        assert find_run(tmp_path, chash[:10]).path == run.path
        assert find_run(tmp_path, chash.upper()[:10]).path == run.path

    def test_find_run_rejects_empty_and_missing(self, tmp_path):
        self._make(tmp_path, 2)
        with pytest.raises(ArtifactError, match="empty config hash"):
            find_run(tmp_path, "  ")
        with pytest.raises(ArtifactError, match="matches config hash"):
            find_run(tmp_path, "ffffffffffff")

    def test_find_run_rejects_ambiguous_prefix(self, tmp_path):
        a = load_run(self._make(tmp_path, 2).path).config_hash
        b = load_run(self._make(tmp_path, 3).path).config_hash
        prefix = ""
        for ca, cb in zip(a, b):
            if ca != cb:
                break
            prefix += ca
        # One shared-prefix character is enough to be ambiguous (the
        # empty string is rejected as empty first).
        if prefix:
            with pytest.raises(ArtifactError, match="ambiguous"):
                find_run(tmp_path, prefix)

    def test_mutation_after_load_is_caught_by_verify(self, finalized):
        """load_run + verify_run on a run dir mutated *between* the
        watcher's poll and the promotion check: the torn write is
        detected, so the caller (ModelManager) keeps its old model."""
        loaded = load_run(finalized.path)  # watcher saw a healthy run
        victim = finalized.path / "metrics.json"
        victim.write_text(victim.read_text()[:-4])  # truncated mid-copy
        # The stale LoadedRun still answers from its manifest...
        assert "metrics.json" in loaded.files()
        # ...but promotion re-verifies the bytes and refuses.
        with pytest.raises(ArtifactError, match="metrics.json"):
            verify_run(finalized.path)

    def test_file_swapped_while_watched_is_caught(self, finalized):
        """Same-size content swap (no mtime/size tell) is still caught
        by the checksum pass."""
        load_run(finalized.path)
        victim = finalized.path / "extra" / "notes.json"
        original = victim.read_text()
        victim.write_text(original[:-8] + '"HELLO"}'[: 8])
        assert len(victim.read_text()) == len(original)
        with pytest.raises(ArtifactError, match="notes.json"):
            verify_run(finalized.path)
