"""Tests for the split / cross-validation protocol."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import KFold, cross_validate, train_test_split
from repro.ml.linear import LinearRegression
from repro.ml.model_selection import GroupShuffleSplit


class TestTrainTestSplit:
    def test_partition(self):
        tr, te = train_test_split(100, 0.1, random_state=0)
        assert len(tr) == 90 and len(te) == 10
        assert set(tr) | set(te) == set(range(100))
        assert not set(tr) & set(te)

    def test_deterministic(self):
        a = train_test_split(50, 0.2, random_state=5)
        b = train_test_split(50, 0.2, random_state=5)
        np.testing.assert_array_equal(a[0], b[0])

    def test_different_seeds_differ(self):
        a = train_test_split(100, 0.2, random_state=1)
        b = train_test_split(100, 0.2, random_state=2)
        assert not np.array_equal(a[1], b[1])

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(10, 0.0)
        with pytest.raises(ValueError):
            train_test_split(10, 1.0)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            train_test_split(1, 0.5)

    def test_group_split_keeps_groups_together(self):
        groups = np.repeat(np.arange(10), 4)
        tr, te = train_test_split(40, 0.3, random_state=0, groups=groups)
        tr_groups = set(groups[tr])
        te_groups = set(groups[te])
        assert not tr_groups & te_groups

    def test_group_shape_mismatch(self):
        with pytest.raises(ValueError):
            train_test_split(10, 0.2, groups=np.arange(5))


class TestKFold:
    def test_every_sample_validated_once(self):
        folds = list(KFold(5, random_state=0).split(23))
        seen = np.concatenate([val for _, val in folds])
        assert sorted(seen) == list(range(23))

    def test_train_val_disjoint(self):
        for tr, val in KFold(4, random_state=1).split(20):
            assert not set(tr) & set(val)
            assert len(tr) + len(val) == 20

    def test_unshuffled_contiguous(self):
        folds = list(KFold(2, shuffle=False).split(10))
        np.testing.assert_array_equal(folds[0][1], np.arange(5))

    def test_too_many_splits(self):
        with pytest.raises(ValueError):
            list(KFold(5).split(3))

    def test_bad_n_splits(self):
        with pytest.raises(ValueError):
            KFold(1)


class TestCrossValidate:
    def test_returns_mean_of_folds(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        Y = X @ rng.normal(size=(3, 2))
        out = cross_validate(LinearRegression, X, Y, n_splits=5,
                             random_state=0)
        assert out["mae"] == pytest.approx(np.mean(out["mae_per_fold"]))
        assert len(out["mae_per_fold"]) == 5
        assert out["mae"] < 1e-8  # linear data, exact fit

    def test_sos_included_for_vector_targets(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 2))
        Y = np.column_stack([X[:, 0], X[:, 0] + 1])
        out = cross_validate(LinearRegression, X, Y, n_splits=3)
        assert "sos" in out

    def test_sos_absent_for_scalar_targets(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 2))
        out = cross_validate(LinearRegression, X, X[:, 0], n_splits=3)
        assert "sos" not in out


class TestGroupShuffleSplit:
    def test_repeats_and_group_integrity(self):
        groups = np.repeat(np.arange(8), 3)
        splitter = GroupShuffleSplit(0.25, n_repeats=4, random_state=0)
        splits = list(splitter.split(groups))
        assert len(splits) == 4
        for tr, te in splits:
            assert not set(groups[tr]) & set(groups[te])

    def test_deterministic(self):
        groups = np.repeat(np.arange(5), 2)
        a = list(GroupShuffleSplit(0.2, 2, random_state=3).split(groups))
        b = list(GroupShuffleSplit(0.2, 2, random_state=3).split(groups))
        for (t1, v1), (t2, v2) in zip(a, b):
            np.testing.assert_array_equal(t1, t2)


@given(n=st.integers(10, 200), frac=st.floats(0.05, 0.5),
       seed=st.integers(0, 1000))
@settings(max_examples=50, deadline=None)
def test_property_split_sizes(n, frac, seed):
    tr, te = train_test_split(n, frac, random_state=seed)
    assert len(te) == max(1, int(round(frac * n)))
    assert len(tr) + len(te) == n


@given(n=st.integers(6, 100), k=st.integers(2, 6), seed=st.integers(0, 1000))
@settings(max_examples=50, deadline=None)
def test_property_kfold_balanced(n, k, seed):
    if n < k:
        return
    sizes = [len(val) for _, val in KFold(k, random_state=seed).split(n)]
    assert max(sizes) - min(sizes) <= 1
    assert sum(sizes) == n
