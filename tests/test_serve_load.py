"""Deterministic load tests for the serving stack (marked slow).

The harness drives the real HTTP server with the scheduler
simulation's seeded Poisson arrival process and seeded payload
synthesis, so the defect mix (clean / degraded / malformed) is exact
and assertions are equalities, not tolerances.  Latency numbers are of
course machine-dependent — the tests assert the *counters* and that
the histograms are populated, not wall-clock values.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import telemetry
from repro.serve import (
    ModelManager,
    PredictionService,
    http_request,
    run_load,
    synthesize_payloads,
)

from .test_serve import make_train_run

pytestmark = pytest.mark.slow

N_REQUESTS = 40
DEGRADED_FRACTION = 0.1
MALFORMED_FRACTION = 0.1


@pytest.fixture(scope="module")
def load_registry(tmp_path_factory, trained_xgb, small_dataset):
    root = tmp_path_factory.mktemp("load_registry")
    make_train_run(root, trained_xgb, small_dataset, seed=0)
    return root


@pytest.fixture(scope="module")
def load_payloads():
    return synthesize_payloads(
        N_REQUESTS, seed=11,
        degraded_fraction=DEGRADED_FRACTION,
        malformed_fraction=MALFORMED_FRACTION,
    )


async def _serve_load(registry_root, payloads, rate_per_second,
                      seed=11, **service_kwargs):
    """Start a service, drive it over HTTP, shut down cleanly."""
    manager = ModelManager(registry_root)
    manager.promote(manager.resolve_hash(None))
    service = PredictionService(manager, **service_kwargs)
    host, port = await service.start(port=0)
    manager.start_watching()
    try:
        report = await run_load(host, port, payloads,
                                rate_per_second=rate_per_second,
                                seed=seed)
        metrics = service.metrics_payload()
    finally:
        await service.stop()
    return report, metrics


def test_seeded_payloads_are_reproducible():
    """Same seed, byte-identical payload stream; different seed, not."""
    a = synthesize_payloads(8, seed=3, degraded_fraction=0.25)
    b = synthesize_payloads(8, seed=3, degraded_fraction=0.25)
    c = synthesize_payloads(8, seed=4, degraded_fraction=0.25)
    dumps = lambda p: json.dumps(p, sort_keys=True)  # noqa: E731
    assert [dumps(x) for x in a] == [dumps(x) for x in b]
    assert [dumps(x) for x in a] != [dumps(x) for x in c]


def test_load_run_counters_and_histograms(load_registry, load_payloads):
    """The headline load test: exact goodput/defect accounting plus
    populated latency and batch-size histograms."""
    telemetry.configure("metrics")
    telemetry.reset()
    try:
        report, metrics = asyncio.run(_serve_load(
            load_registry, load_payloads, rate_per_second=400.0,
        ))
    finally:
        telemetry.configure("off")
        telemetry.reset()

    n_degraded = round(N_REQUESTS * DEGRADED_FRACTION)
    n_malformed = round(N_REQUESTS * MALFORMED_FRACTION)
    assert report.sent == N_REQUESTS
    assert report.failed == 0
    assert report.shed == 0  # default limits dwarf 40 requests
    assert report.rejected == n_malformed  # typed 400s, exactly
    assert report.ok == N_REQUESTS - n_malformed
    # Degraded records still answer 200 — from the imputed tier.
    assert report.tiers == {
        "model": N_REQUESTS - n_malformed - n_degraded,
        "imputed": n_degraded,
    }
    assert report.goodput_per_sec > 0
    assert report.percentile_ms(99) >= report.percentile_ms(50) > 0

    # The service's own view agrees and the histograms are populated.
    service_view = metrics["service"]
    assert service_view["requests"]["predict"] == N_REQUESTS
    assert service_view["admission"]["decisions"]["shed"] == 0
    assert service_view["tiers"]["counts"]["imputed"] == n_degraded
    tel = metrics["telemetry"]["histograms"]
    batch_rows = tel["serve.coalescer.batch_rows"]
    assert batch_rows["count"] >= 1
    assert batch_rows["sum"] == report.ok  # every 200 rode a batch
    latency = tel["serve.http.predict.seconds"]
    assert latency["count"] == N_REQUESTS
    assert latency["sum"] > 0

    # The report is a JSON-clean artifact (what --self-test persists).
    as_dict = report.to_dict()
    assert json.loads(json.dumps(as_dict)) == as_dict
    assert as_dict["latency_ms"]["p99"] >= as_dict["latency_ms"]["p50"]


def test_load_outcome_is_seed_deterministic(load_registry, load_payloads):
    """Two identical load runs produce identical outcome counters
    (latency varies; accounting must not)."""
    report1, _ = asyncio.run(_serve_load(
        load_registry, load_payloads, rate_per_second=400.0,
    ))
    report2, _ = asyncio.run(_serve_load(
        load_registry, load_payloads, rate_per_second=400.0,
    ))
    for report in (report1, report2):
        assert report.sent == N_REQUESTS
    assert (report1.ok, report1.rejected, report1.shed, report1.failed) \
        == (report2.ok, report2.rejected, report2.shed, report2.failed)
    assert report1.tiers == report2.tiers
    assert report1.statuses == report2.statuses


def test_overload_sheds_and_recovers(load_registry):
    """A simultaneous burst against a hard_limit=1 service sheds most
    of the burst with typed 503s, serves at least one model answer, and
    the service stays healthy afterwards."""
    payloads = synthesize_payloads(12, seed=5)

    async def scenario():
        manager = ModelManager(load_registry)
        manager.promote(manager.resolve_hash(None))
        service = PredictionService(
            manager, soft_inflight=1, max_inflight=1,
            max_batch=64, batch_deadline_s=0.1,
        )
        host, port = await service.start(port=0)
        try:
            # rate 0 = everything at once: the overload shape.
            report = await run_load(host, port, payloads,
                                    rate_per_second=0.0)
            status, health = await http_request(host, port, "GET",
                                                "/healthz")
            return report, service.admission.snapshot(), status, health
        finally:
            await service.stop()

    report, admission, status, health = asyncio.run(scenario())
    assert report.sent == 12
    assert report.failed == 0
    assert report.ok >= 1
    assert report.shed >= 1  # the burst must hit the hard limit
    assert report.ok + report.shed == 12
    assert admission["decisions"]["shed"] == report.shed
    assert admission["inflight"] == 0  # drained
    assert status == 200 and health["status"] == "ok"


def test_http_surface(load_registry, load_payloads):
    """The non-predict endpoints and HTTP-level error handling."""

    async def scenario():
        manager = ModelManager(load_registry)
        chash = manager.resolve_hash(None)
        manager.promote(chash)
        service = PredictionService(manager)
        host, port = await service.start(port=0)
        try:
            results = {
                "healthz": await http_request(host, port, "GET",
                                              "/healthz"),
                "model": await http_request(host, port, "GET", "/model"),
                "metrics": await http_request(host, port, "GET",
                                              "/metrics"),
                "nowhere": await http_request(host, port, "GET",
                                              "/nowhere"),
                "get_predict": await http_request(host, port, "GET",
                                                  "/predict"),
                "bad_json": await http_request(
                    host, port, "POST", "/predict",
                    payload=None, timeout_s=30.0,
                ),
                "predict": await http_request(
                    host, port, "POST", "/predict",
                    payload=dict(load_payloads[0]),
                ),
                "bad_payload": await http_request(
                    host, port, "POST", "/predict", payload={"nope": 1}
                ),
            }
            return chash, results
        finally:
            await service.stop()

    chash, results = asyncio.run(scenario())
    status, health = results["healthz"]
    assert (status, health["status"]) == (200, "ok")
    status, model = results["model"]
    assert status == 200 and model["config_hash"] == chash
    assert model["n_features"] > 0 and model["degradation_armed"]
    status, metrics = results["metrics"]
    assert status == 200 and metrics["service"]["model"]["config_hash"] \
        == chash
    assert results["nowhere"][0] == 404
    assert results["get_predict"][0] == 405
    status, body = results["bad_json"]  # empty body is not JSON
    assert status == 400 and body["reason"] == "bad-payload"
    status, body = results["predict"]
    assert status == 200 and body["model_hash"] == chash
    assert body["recommended"] in body["systems"]
    status, body = results["bad_payload"]
    assert status == 400 and "unknown request key" in body["error"]


def _latency_slo(threshold_s):
    from repro.telemetry.slo import SLOShedPolicy, SLOSpec

    spec = SLOSpec(name="serve-predict-latency", objective="latency",
                   target=0.9, histogram="serve.http.predict.seconds",
                   threshold_s=threshold_s)
    return SLOShedPolicy(spec, degrade_burn=1.0, shed_burn=4.0)


def test_slo_burn_sheds_exact_counts(load_registry):
    """SLO admission over real HTTP: with an unmeetable latency
    threshold every answered request burns budget, so the shed count is
    exact and identical run after run — one 200, then typed 503s whose
    bodies name the request and the admission state."""
    payloads = synthesize_payloads(8, seed=7)

    async def scenario():
        manager = ModelManager(load_registry)
        manager.promote(manager.resolve_hash(None))
        service = PredictionService(manager, slo=_latency_slo(1e-9),
                                    max_batch=1, batch_deadline_s=0.001)
        host, port = await service.start(port=0)
        try:
            results = []
            for i, payload in enumerate(payloads):
                payload = dict(payload)
                payload["request_id"] = f"req-load-{i}"
                results.append(await http_request(
                    host, port, "POST", "/predict", payload=payload
                ))
            return results, service.admission.snapshot()
        finally:
            await service.stop()

    results, admission = asyncio.run(scenario())
    statuses = [status for status, _ in results]
    assert statuses == [200] + [503] * 7
    for i, (status, body) in enumerate(results):
        assert body["request_id"] == f"req-load-{i}"
        if status == 503:
            assert body["reason"] == "shed"
            assert body["admission"]["state"] == "shed"
    assert admission["decisions"] == {"full": 1, "degraded": 0, "shed": 7}
    # Shed 503s never feed the burn tracker: one answered request.
    assert admission["slo"]["total"] == 1
    assert admission["slo"]["decision"] == "shed"


def test_slo_feature_off_counters_unchanged(load_registry, load_payloads):
    """No policy installed: the SLO-capable controller reproduces the
    watermark run bit-for-bit (the feature-off contract)."""
    report, metrics = asyncio.run(_serve_load(
        load_registry, load_payloads, rate_per_second=400.0, slo=None,
    ))
    n_malformed = round(N_REQUESTS * MALFORMED_FRACTION)
    assert report.sent == N_REQUESTS
    assert report.shed == 0 and report.failed == 0
    assert report.rejected == n_malformed
    admission = metrics["service"]["admission"]
    assert "slo" not in admission
    assert admission["decisions"]["full"] == N_REQUESTS - n_malformed


def test_shed_flight_dump_survives_verify_run(load_registry, tmp_path):
    """A shed transition dumps flight.json into the run dir, and the
    finalized run (dump included) passes artifact verification."""
    from repro.artifacts import RunDir, verify_run
    from repro.config import ExperimentConfig, ServeConfig
    from repro.telemetry import flightrec

    payloads = synthesize_payloads(4, seed=9)
    run = RunDir.create(
        tmp_path, ExperimentConfig("serve",
                                   ServeConfig(registry=str(load_registry)))
    )

    async def scenario():
        manager = ModelManager(load_registry)
        manager.promote(manager.resolve_hash(None))
        service = PredictionService(manager, slo=_latency_slo(1e-9),
                                    max_batch=1, batch_deadline_s=0.001,
                                    flight_events=128)
        service.flight_path = run.file("flight.json")
        host, port = await service.start(port=0)
        try:
            return [
                (await http_request(host, port, "POST", "/predict",
                                    payload=dict(p)))[0]
                for p in payloads
            ]
        finally:
            await service.stop()

    try:
        statuses = asyncio.run(scenario())
        assert statuses == [200, 503, 503, 503]
        dump = json.loads(run.file("flight.json").read_text())
        assert dump["flight_format_version"] == 1
        assert dump["reason"] == "shed-transition"
        kinds = {event["kind"] for event in dump["events"]}
        assert "admission-transition" in kinds
        assert "coalescer-flush" in kinds  # the batch path records too
        run.finalize()
        verified = verify_run(run.path)
        assert "flight.json" in verified.files()
    finally:
        flightrec.disable()
        flightrec.recorder().clear()
