"""Correctness of the content-addressed shard cache.

The cache must be invisible in the output (cold == warm, frame for
frame) and paranoid about its own storage: a corrupted or truncated
entry is detected, evicted, and regenerated — never served.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.apps.catalog import APPLICATIONS
from repro.arch.machines import MACHINES
from repro.dataset.generate import generate_dataset
from repro.dataset.store import CacheStats, ShardCache, shard_cache_key

GEN_KWARGS = dict(inputs_per_app=2, seed=11, apps=["CoMD", "XSBench"])
#: 2 apps x 3 scales x 4 systems shards.
N_SHARDS = 2 * 3 * 4


@pytest.fixture
def cache(tmp_path) -> ShardCache:
    return ShardCache(tmp_path / "shards")


def _entry_paths(cache: ShardCache) -> list[Path]:
    return sorted(Path(cache.cache_dir).glob("*.json"))


class TestColdWarm:
    def test_cold_equals_warm_frame_for_frame(self, cache):
        cold = generate_dataset(**GEN_KWARGS, cache=cache)
        assert cache.stats.misses == N_SHARDS and cache.stats.hits == 0
        warm = generate_dataset(**GEN_KWARGS, cache=cache)
        assert cache.stats.hits == N_SHARDS
        assert cold.frame == warm.frame
        assert warm.frame == generate_dataset(**GEN_KWARGS).frame

    def test_cache_populates_one_entry_per_shard(self, cache):
        generate_dataset(**GEN_KWARGS, cache=cache)
        assert len(_entry_paths(cache)) == N_SHARDS
        assert len(cache) == N_SHARDS

    def test_different_seed_misses(self, cache):
        generate_dataset(**GEN_KWARGS, cache=cache)
        other = dict(GEN_KWARGS, seed=12)
        generate_dataset(**other, cache=cache)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2 * N_SHARDS


class TestCorruption:
    """A damaged entry is evicted and regenerated, not served."""

    def _poison_one(self, cache, mutate) -> None:
        generate_dataset(**GEN_KWARGS, cache=cache)
        victim = _entry_paths(cache)[0]
        mutate(victim)
        cache.stats = CacheStats()  # reset counters for the warm run

    @pytest.mark.parametrize("mutate", [
        lambda p: p.write_text(p.read_text()[: len(p.read_text()) // 2]),
        lambda p: p.write_text("{not json"),
        lambda p: p.write_text("{}"),
        lambda p: p.write_bytes(b"\x00\xff" * 64),
    ], ids=["truncated", "garbage", "empty-object", "binary"])
    def test_damaged_entry_regenerated(self, cache, mutate):
        self._poison_one(cache, mutate)
        reference = generate_dataset(**GEN_KWARGS)
        warm = generate_dataset(**GEN_KWARGS, cache=cache)
        assert warm.frame == reference.frame
        assert cache.stats.evictions == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == N_SHARDS - 1

    def test_tampered_record_fails_checksum(self, cache):
        def flip_value(path: Path) -> None:
            payload = json.loads(path.read_text())
            payload["records"][0]["time_seconds"] += 1.0
            path.write_text(json.dumps(payload))

        self._poison_one(cache, flip_value)
        reference = generate_dataset(**GEN_KWARGS)
        warm = generate_dataset(**GEN_KWARGS, cache=cache)
        assert warm.frame == reference.frame
        assert cache.stats.evictions == 1

    def test_stale_schema_version_rejected(self, cache):
        def backdate(path: Path) -> None:
            payload = json.loads(path.read_text())
            payload["schema_version"] = -1
            path.write_text(json.dumps(payload))

        self._poison_one(cache, backdate)
        warm = generate_dataset(**GEN_KWARGS, cache=cache)
        assert warm.frame == generate_dataset(**GEN_KWARGS).frame
        assert cache.stats.evictions == 1


class TestCacheKey:
    def test_key_is_stable(self):
        app, machine = APPLICATIONS["CoMD"], MACHINES["Quartz"]
        assert shard_cache_key(app, machine, "1node", 0, 4) == \
            shard_cache_key(app, machine, "1node", 0, 4)

    def test_key_covers_every_axis(self):
        app, machine = APPLICATIONS["CoMD"], MACHINES["Quartz"]
        base = shard_cache_key(app, machine, "1node", 0, 4)
        assert base != shard_cache_key(
            APPLICATIONS["XSBench"], machine, "1node", 0, 4)
        assert base != shard_cache_key(
            app, MACHINES["Lassen"], "1node", 0, 4)
        assert base != shard_cache_key(app, machine, "2node", 0, 4)
        assert base != shard_cache_key(app, machine, "1node", 1, 4)
        assert base != shard_cache_key(app, machine, "1node", 0, 5)


class TestEviction:
    def test_max_entries_evicts_oldest(self, tmp_path):
        cache = ShardCache(tmp_path / "c", max_entries=4)
        for i in range(10):
            cache.put(f"{i:064x}", [{"x": float(i)}])
        assert len(cache) == 4
        assert cache.stats.evictions == 6
        # The four newest survive.
        for i in range(6, 10):
            assert cache.get(f"{i:064x}") == [{"x": float(i)}]

    def test_bad_max_entries_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ShardCache(tmp_path / "c", max_entries=0)

    def test_atomic_put_roundtrip(self, tmp_path):
        cache = ShardCache(tmp_path / "c")
        records = [{"app": "CoMD", "time_seconds": 1.25, "n": 3.0}]
        digest = "ab" * 32
        cache.put(digest, records)
        assert cache.get(digest) == records
        assert not list(Path(cache.cache_dir).glob("*.tmp.*"))
