"""Tests for RPV math (Section IV)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rpv import (
    fastest_system,
    rpv,
    rpv_relative_to_fastest,
    rpv_relative_to_slowest,
    system_order,
)


class TestPaperExample:
    """Section IV: (TestApp, "-s 5") at 10/8/21 minutes on X/Y/Z."""

    def test_relative_to_x(self):
        np.testing.assert_allclose(
            rpv([10.0, 8.0, 21.0], base=0), [1.0, 0.8, 2.1]
        )

    def test_relative_to_slowest(self):
        np.testing.assert_allclose(
            rpv_relative_to_slowest([10.0, 8.0, 21.0]),
            [10 / 21, 8 / 21, 1.0],
        )

    def test_relative_to_fastest(self):
        np.testing.assert_allclose(
            rpv_relative_to_fastest([10.0, 8.0, 21.0]),
            [10 / 8, 1.0, 21 / 8],
        )

    def test_fastest_is_argmin(self):
        # Algorithm 2's corrected machine choice.
        assert fastest_system(np.array([1.0, 0.8, 2.1])) == 1

    def test_system_order(self):
        np.testing.assert_array_equal(
            system_order(np.array([1.0, 0.8, 2.1])), [1, 0, 2]
        )


class TestValidation:
    def test_base_component_is_one(self):
        times = np.array([5.0, 2.0, 9.0, 4.0])
        for base in range(4):
            assert rpv(times, base)[base] == 1.0

    def test_base_out_of_range(self):
        with pytest.raises(IndexError):
            rpv([1.0, 2.0], base=2)

    def test_nonpositive_times(self):
        with pytest.raises(ValueError):
            rpv([1.0, 0.0], base=0)
        with pytest.raises(ValueError):
            rpv_relative_to_slowest([1.0, -2.0])

    def test_scalar_rejected(self):
        with pytest.raises(ValueError):
            rpv_relative_to_slowest([5.0])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            rpv([1.0, np.nan], base=0)


@given(
    times=st.lists(st.floats(1e-3, 1e6), min_size=2, max_size=8),
)
@settings(max_examples=100, deadline=None)
def test_property_slowest_form_bounded(times):
    v = rpv_relative_to_slowest(np.array(times))
    assert v.max() == pytest.approx(1.0)
    assert (v > 0).all() and (v <= 1.0 + 1e-12).all()


@given(times=st.lists(st.floats(1e-3, 1e6), min_size=2, max_size=8))
@settings(max_examples=100, deadline=None)
def test_property_fastest_form_bounded_below(times):
    v = rpv_relative_to_fastest(np.array(times))
    assert v.min() == pytest.approx(1.0)
    assert (v >= 1.0 - 1e-12).all()


@given(
    times=st.lists(st.floats(1e-3, 1e6), min_size=2, max_size=6),
    scale=st.floats(1e-3, 1e3),
)
@settings(max_examples=100, deadline=None)
def test_property_rpv_scale_invariant(times, scale):
    """RPVs are invariant to a common rescaling of times (unit change)."""
    t = np.array(times)
    np.testing.assert_allclose(
        rpv_relative_to_slowest(t), rpv_relative_to_slowest(t * scale),
        rtol=1e-9,
    )


@given(times=st.lists(st.floats(1e-3, 1e6), min_size=2, max_size=6),
       base=st.integers(0, 5))
@settings(max_examples=100, deadline=None)
def test_property_order_preserved_across_bases(times, base):
    """The induced system ordering is independent of the base choice."""
    t = np.array(times)
    if base >= len(t):
        base = 0
    np.testing.assert_array_equal(
        system_order(rpv(t, base)), system_order(rpv_relative_to_slowest(t))
    )
