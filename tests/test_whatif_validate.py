"""Tests for the what-if API and model audits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import APPLICATIONS, generate_inputs
from repro.arch import QUARTZ
from repro.core.whatif import estimate_speedup, porting_value
from repro.hatchet_lite import run_record
from repro.perfsim.config import make_run_config
from repro.perfsim.validate import audit_all, audit_applications, audit_machines
from repro.profiler import profile_run


def _record(app_name, seed=0):
    app = APPLICATIONS[app_name]
    inp = generate_inputs(app, 1, seed=seed)[0]
    config = make_run_config(app, QUARTZ, "1node")
    return run_record(profile_run(app, inp, QUARTZ, config, seed=seed))


class TestWhatIf:
    def test_speedup_self_is_one(self, trained_xgb):
        record = _record("CANDLE")
        assert estimate_speedup(trained_xgb, record,
                                "Quartz", "Quartz") == pytest.approx(1.0)

    def test_speedup_reciprocal(self, trained_xgb):
        record = _record("CANDLE")
        ab = estimate_speedup(trained_xgb, record, "Quartz", "Lassen")
        ba = estimate_speedup(trained_xgb, record, "Lassen", "Quartz")
        assert ab * ba == pytest.approx(1.0)

    def test_gpu_apps_gain_on_gpu_systems_on_average(self, trained_xgb):
        """Averaged over the ML apps and both GPU systems — a single
        (app, system) pair can legitimately lose to Quartz via its
        software-stack draw."""
        speedups = []
        for app in ("CANDLE", "CosmoFlow", "miniGAN", "DeepCam"):
            record = _record(app)
            for system in ("Lassen", "Corona"):
                speedups.append(
                    estimate_speedup(trained_xgb, record, "Quartz", system)
                )
        assert np.mean(speedups) > 1.0

    def test_unknown_system(self, trained_xgb):
        with pytest.raises(KeyError):
            estimate_speedup(trained_xgb, _record("CoMD"),
                             "Quartz", "Summit")

    def test_case_insensitive(self, trained_xgb):
        record = _record("CoMD")
        a = estimate_speedup(trained_xgb, record, "quartz", "RUBY")
        b = estimate_speedup(trained_xgb, record, "Quartz", "Ruby")
        assert a == b

    def test_porting_value_ranked(self, trained_xgb):
        records = [_record(a) for a in ("CANDLE", "miniVite", "XSBench")]
        frame = porting_value(trained_xgb, records)
        assert frame.num_rows == 3
        speedups = np.asarray(frame["speedup_vs_source"])
        assert (np.diff(speedups) <= 1e-12).all()  # descending
        assert (speedups > 0).all()
        assert set(frame["best_gpu_system"]) <= {"Lassen", "Corona"}
        # Note: "best GPU system" includes that system's CPUs, so
        # CPU-only apps can legitimately rank high (e.g. via Corona's
        # Rome CPUs); the ranking itself is what the API guarantees.

    def test_porting_value_empty(self, trained_xgb):
        with pytest.raises(ValueError):
            porting_value(trained_xgb, [])


class TestAudits:
    def test_machines_clean(self):
        assert audit_machines().num_rows == 0

    def test_applications_clean(self):
        assert audit_applications().num_rows == 0

    def test_audit_all_clean(self):
        frame = audit_all()
        assert frame.num_rows == 0
        assert frame.columns == ["kind", "subject", "check", "detail"]

    def test_audit_catches_broken_machine(self, monkeypatch):
        from dataclasses import replace

        import repro.arch.machines as am

        broken = replace(am.MACHINES["Quartz"].cpu, clock_ghz=99.0)
        monkeypatch.setitem(
            am.MACHINES, "Quartz",
            replace(am.MACHINES["Quartz"], cpu=broken),
        )
        frame = audit_machines()
        assert frame.num_rows >= 1
        assert "clock_range" in list(frame["check"])

    def test_audit_catches_broken_app(self, monkeypatch):
        from dataclasses import replace

        import repro.apps.catalog as cat

        broken = replace(cat.APPLICATIONS["CoMD"], irregularity=50.0)
        monkeypatch.setitem(cat.APPLICATIONS, "CoMD", broken)
        frame = audit_applications()
        assert "irregularity_range" in list(frame["check"])
