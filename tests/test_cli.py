"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.command == "generate"
        assert args.inputs_per_app == 12

    def test_bad_model_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "svm"])

    def test_bad_scale_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["profile", "--app", "AMG", "--machine", "Quartz",
                 "--scale", "4node"]
            )

    def test_schedule_fault_profile(self):
        args = build_parser().parse_args(
            ["schedule", "--fault-profile", "heavy", "--checkpoint",
             "--max-attempts", "3"]
        )
        assert args.fault_profile == "heavy"
        assert args.checkpoint is True
        assert args.max_attempts == 3
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["schedule", "--fault-profile", "apocalyptic"]
            )


class TestCommands:
    def test_generate_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        code = main(["generate", "--inputs-per-app", "1", "--seed", "3",
                     "--output", str(out)])
        assert code == 0
        assert out.exists()
        assert "240 rows" in capsys.readouterr().out  # 20*1*3*4

    def test_dataset_alias_with_jobs_and_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "shards"
        cold = tmp_path / "cold.csv"
        warm = tmp_path / "warm.csv"
        argv = ["dataset", "--inputs-per-app", "1", "--seed", "3",
                "--jobs", "2", "--cache-dir", str(cache_dir)]
        assert main(argv + ["--output", str(cold)]) == 0
        out = capsys.readouterr().out
        assert "0 hits" in out and "misses" in out
        assert main(argv + ["--output", str(warm)]) == 0
        out = capsys.readouterr().out
        assert "0 misses" in out
        assert cold.read_bytes() == warm.read_bytes()

    def test_profile_prints_counters(self, capsys):
        code = main(["profile", "--app", "XSBench", "--machine", "Quartz",
                     "--scale", "1core"])
        assert code == 0
        out = capsys.readouterr().out
        assert "XSBench on Quartz" in out
        assert "total_instructions" in out

    def test_profile_save(self, tmp_path):
        out = tmp_path / "p.json"
        code = main(["profile", "--app", "AMG", "--machine", "Corona",
                     "--save", str(out)])
        assert code == 0
        assert out.exists()

    def test_profile_unknown_app_fails_cleanly(self, capsys):
        code = main(["profile", "--app", "HPL", "--machine", "Quartz"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown application 'HPL'" in err
        assert "AMG" in err  # the message enumerates what *would* work

    def test_profile_unknown_machine_fails_cleanly(self, capsys):
        code = main(["profile", "--app", "AMG", "--machine", "Summit"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown machine 'Summit'" in err
        assert "Quartz" in err

    def test_train_then_predict(self, tmp_path, capsys):
        model_path = tmp_path / "m.pkl"
        code = main(["train", "--inputs-per-app", "2", "--seed", "1",
                     "--model", "linear", "--output", str(model_path)])
        assert code == 0
        assert model_path.exists()
        code = main(["predict", "--predictor", str(model_path),
                     "--app", "CANDLE", "--machine", "Ruby"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fastest first" in out

    def test_evaluate(self, capsys):
        code = main(["evaluate", "--inputs-per-app", "2", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        for model in ("mean", "linear", "forest", "xgboost"):
            assert model in out

    def test_importance_top(self, capsys):
        code = main(["importance", "--inputs-per-app", "2", "--seed", "1",
                     "--top", "5"])
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 5

    def test_whatif(self, tmp_path, capsys):
        model_path = tmp_path / "m.pkl"
        assert main(["train", "--inputs-per-app", "2", "--seed", "1",
                     "--model", "linear", "--output", str(model_path)]) == 0
        capsys.readouterr()
        code = main(["whatif", "--predictor", str(model_path),
                     "--apps", "CANDLE", "XSBench", "--source", "Ruby"])
        assert code == 0
        out = capsys.readouterr().out
        assert "porting shortlist" in out
        assert "CANDLE" in out and "XSBench" in out

    def test_calibrate(self, capsys):
        code = main(["calibrate", "--inputs-per-app", "1", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SOS ceiling" in out
        assert "noise floor" in out

    def test_report(self, capsys):
        code = main(["report", "--inputs-per-app", "1", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MP-HPC dataset report" in out
        assert "fastest-system share" in out

    def test_schedule_with_swf(self, tmp_path, capsys):
        swf = tmp_path / "trace.swf"
        code = main(["schedule", "--jobs", "200", "--inputs-per-app", "2",
                     "--seed", "1", "--strategies", "model",
                     "--swf-output", str(swf)])
        assert code == 0
        assert swf.exists()
        assert "model" in capsys.readouterr().out

class TestExperimentSpine:
    """--save-config / --config / --run-dir on every subcommand."""

    def test_save_config_then_replay_is_bit_identical(self, tmp_path,
                                                      capsys):
        cfg = tmp_path / "cfg.json"
        run1 = tmp_path / "runs1"
        run2 = tmp_path / "runs2"
        assert main(["evaluate", "--inputs-per-app", "2", "--seed", "1",
                     "--save-config", str(cfg),
                     "--run-dir", str(run1)]) == 0
        first = capsys.readouterr().out
        assert f"config written to {cfg}" in first
        assert main(["evaluate", "--config", str(cfg),
                     "--run-dir", str(run2)]) == 0
        # Same config hash -> same run-dir name; same metrics bytes.
        (dir1,) = list(run1.iterdir())
        (dir2,) = list(run2.iterdir())
        assert dir1.name == dir2.name
        assert ((dir1 / "metrics.json").read_bytes()
                == (dir2 / "metrics.json").read_bytes())

    def test_config_replaces_flags(self, tmp_path, capsys):
        from repro.config import DatasetConfig, ExperimentConfig

        cfg = tmp_path / "cfg.json"
        out = tmp_path / "replayed.csv"
        ExperimentConfig("generate", DatasetConfig(
            inputs_per_app=1, seed=3, output=str(out)
        )).save(cfg)
        # The --inputs-per-app flag is ignored: the config wins.
        assert main(["generate", "--inputs-per-app", "7",
                     "--config", str(cfg)]) == 0
        assert out.exists()
        assert "240 rows" in capsys.readouterr().out

    def test_config_for_wrong_command_rejected(self, tmp_path, capsys):
        from repro.config import EvaluateConfig, ExperimentConfig

        cfg = tmp_path / "cfg.json"
        ExperimentConfig("evaluate", EvaluateConfig()).save(cfg)
        assert main(["train", "--config", str(cfg)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_config_file_exits_2(self, tmp_path, capsys):
        code = main(["evaluate", "--config", str(tmp_path / "nope.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_config_file_exits_2(self, tmp_path, capsys):
        cfg = tmp_path / "bad.json"
        cfg.write_text("{broken")
        code = main(["evaluate", "--config", str(cfg)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_manifest_records_provenance(self, tmp_path, capsys):
        from repro.artifacts import verify_run
        from repro.config import CONFIG_SCHEMA_VERSION

        runs = tmp_path / "runs"
        assert main(["train", "--inputs-per-app", "2", "--seed", "1",
                     "--model", "linear",
                     "--output", str(tmp_path / "m.pkl"),
                     "--run-dir", str(runs)]) == 0
        assert "run manifest written to" in capsys.readouterr().out
        (run_path,) = list(runs.iterdir())
        run = verify_run(run_path)  # re-hashes every artifact
        assert run.command == "train"
        assert run.seed == 1
        assert run.manifest["config_schema_version"] == CONFIG_SCHEMA_VERSION
        assert "m.pkl" in run.files()
        assert "model.json" in run.files()
        assert "metrics.json" in run.files()
        # The portable model round-trips from the run directory.
        assert run.model() is not None

    @pytest.mark.parametrize("argv", [
        ["report", "--inputs-per-app", "1", "--seed", "2"],
        ["importance", "--inputs-per-app", "2", "--seed", "1",
         "--top", "3"],
        ["calibrate", "--inputs-per-app", "1", "--seed", "3"],
        ["profile", "--app", "AMG", "--machine", "Corona"],
        ["schedule", "--jobs", "50", "--inputs-per-app", "2",
         "--seed", "1", "--strategies", "model"],
    ], ids=lambda argv: argv[0])
    def test_every_subcommand_supports_spine_flags(self, argv, tmp_path,
                                                   capsys):
        cfg = tmp_path / "cfg.json"
        runs = tmp_path / "runs"
        assert main(argv + ["--save-config", str(cfg),
                            "--run-dir", str(runs)]) == 0
        capsys.readouterr()
        assert cfg.exists()
        from repro.artifacts import load_run

        (run_path,) = list(runs.iterdir())
        assert load_run(run_path).command == argv[0]
        # Replay from the saved config alone exits cleanly too.
        assert main([argv[0], "--config", str(cfg)]) == 0

    def test_bad_config_value_exits_2(self, tmp_path, capsys):
        import json

        cfg = tmp_path / "cfg.json"
        from repro.config import EvaluateConfig, ExperimentConfig

        data = ExperimentConfig("evaluate", EvaluateConfig()).to_dict()
        data["config"]["inputs_per_app"] = -2
        cfg.write_text(json.dumps(data))
        assert main(["evaluate", "--config", str(cfg)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "inputs_per_app" in err
