"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.command == "generate"
        assert args.inputs_per_app == 12

    def test_bad_model_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "svm"])

    def test_bad_scale_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["profile", "--app", "AMG", "--machine", "Quartz",
                 "--scale", "4node"]
            )

    def test_schedule_fault_profile(self):
        args = build_parser().parse_args(
            ["schedule", "--fault-profile", "heavy", "--checkpoint",
             "--max-attempts", "3"]
        )
        assert args.fault_profile == "heavy"
        assert args.checkpoint is True
        assert args.max_attempts == 3
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["schedule", "--fault-profile", "apocalyptic"]
            )


class TestCommands:
    def test_generate_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        code = main(["generate", "--inputs-per-app", "1", "--seed", "3",
                     "--output", str(out)])
        assert code == 0
        assert out.exists()
        assert "240 rows" in capsys.readouterr().out  # 20*1*3*4

    def test_dataset_alias_with_jobs_and_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "shards"
        cold = tmp_path / "cold.csv"
        warm = tmp_path / "warm.csv"
        argv = ["dataset", "--inputs-per-app", "1", "--seed", "3",
                "--jobs", "2", "--cache-dir", str(cache_dir)]
        assert main(argv + ["--output", str(cold)]) == 0
        out = capsys.readouterr().out
        assert "0 hits" in out and "misses" in out
        assert main(argv + ["--output", str(warm)]) == 0
        out = capsys.readouterr().out
        assert "0 misses" in out
        assert cold.read_bytes() == warm.read_bytes()

    def test_profile_prints_counters(self, capsys):
        code = main(["profile", "--app", "XSBench", "--machine", "Quartz",
                     "--scale", "1core"])
        assert code == 0
        out = capsys.readouterr().out
        assert "XSBench on Quartz" in out
        assert "total_instructions" in out

    def test_profile_save(self, tmp_path):
        out = tmp_path / "p.json"
        code = main(["profile", "--app", "AMG", "--machine", "Corona",
                     "--save", str(out)])
        assert code == 0
        assert out.exists()

    def test_profile_unknown_app_fails_cleanly(self, capsys):
        code = main(["profile", "--app", "HPL", "--machine", "Quartz"])
        assert code == 2
        err = capsys.readouterr().err
        assert "HPL" in err
        assert "valid --app choices" in err
        assert "AMG" in err  # the message enumerates what *would* work

    def test_profile_unknown_machine_fails_cleanly(self, capsys):
        code = main(["profile", "--app", "AMG", "--machine", "Summit"])
        assert code == 2
        err = capsys.readouterr().err
        assert "Summit" in err
        assert "valid --machine choices" in err
        assert "Quartz" in err

    def test_train_then_predict(self, tmp_path, capsys):
        model_path = tmp_path / "m.pkl"
        code = main(["train", "--inputs-per-app", "2", "--seed", "1",
                     "--model", "linear", "--output", str(model_path)])
        assert code == 0
        assert model_path.exists()
        code = main(["predict", "--predictor", str(model_path),
                     "--app", "CANDLE", "--machine", "Ruby"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fastest first" in out

    def test_evaluate(self, capsys):
        code = main(["evaluate", "--inputs-per-app", "2", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        for model in ("mean", "linear", "forest", "xgboost"):
            assert model in out

    def test_importance_top(self, capsys):
        code = main(["importance", "--inputs-per-app", "2", "--seed", "1",
                     "--top", "5"])
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 5

    def test_whatif(self, tmp_path, capsys):
        model_path = tmp_path / "m.pkl"
        assert main(["train", "--inputs-per-app", "2", "--seed", "1",
                     "--model", "linear", "--output", str(model_path)]) == 0
        capsys.readouterr()
        code = main(["whatif", "--predictor", str(model_path),
                     "--apps", "CANDLE", "XSBench", "--source", "Ruby"])
        assert code == 0
        out = capsys.readouterr().out
        assert "porting shortlist" in out
        assert "CANDLE" in out and "XSBench" in out

    def test_calibrate(self, capsys):
        code = main(["calibrate", "--inputs-per-app", "1", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SOS ceiling" in out
        assert "noise floor" in out

    def test_report(self, capsys):
        code = main(["report", "--inputs-per-app", "1", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MP-HPC dataset report" in out
        assert "fastest-system share" in out

    def test_schedule_with_swf(self, tmp_path, capsys):
        swf = tmp_path / "trace.swf"
        code = main(["schedule", "--jobs", "200", "--inputs-per-app", "2",
                     "--seed", "1", "--strategies", "model",
                     "--swf-output", str(swf)])
        assert code == 0
        assert swf.exists()
        assert "model" in capsys.readouterr().out
