"""Tests for the dataset report and conservative backfilling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.report import (
    coverage_table,
    dataset_report,
    target_summary,
    winner_table,
)
from repro.sched import ClusterState, Job, RoundRobinStrategy, Scheduler

SYSTEMS = ("Quartz", "Ruby", "Lassen", "Corona")


class TestDatasetReport:
    def test_coverage_grid(self, small_dataset):
        grid = coverage_table(small_dataset)
        assert grid.num_rows == 20  # one row per app
        # every (app, system) cell holds inputs x scales rows
        for col in grid.columns[1:]:
            assert (np.asarray(grid[col]) == 4 * 3).all()

    def test_target_summary_fields(self, small_dataset):
        s = target_summary(small_dataset)
        assert s["rows"] == small_dataset.num_rows
        assert 0 < s["rpv_mean"] < 1
        assert 0 <= s["near_tied_fraction"] <= 1

    def test_winner_table_shares_sum_to_one(self, small_dataset):
        winners = winner_table(small_dataset)
        assert np.asarray(winners["overall"]).sum() == pytest.approx(1.0)
        for scale in ("1core", "1node", "2node"):
            assert np.asarray(winners[scale]).sum() == pytest.approx(1.0)

    def test_report_text(self, small_dataset):
        text = dataset_report(small_dataset)
        assert "MP-HPC dataset report" in text
        for system in SYSTEMS:
            assert system in text


class MapStrategy:
    """Test helper: fixed job-id -> machine assignment."""

    name = "map"

    def __init__(self, mapping: dict[int, str], default: str):
        self.mapping = mapping
        self.default = default

    def assign(self, job, index, cluster):
        return self.mapping.get(job.job_id, self.default)


class TestConservativeBackfill:
    def _job(self, job_id, runtime, nodes=1, submit=0.0):
        return Job(job_id=job_id, app="CoMD", uses_gpu=False,
                   nodes_required=nodes,
                   runtimes={s: runtime for s in SYSTEMS},
                   submit_time=submit)

    def _workload(self):
        # job0 fills Quartz; job1 (head) blocks on Quartz with a
        # reservation at t=50; jobs 2 and 3 target Ruby where nodes are
        # free — one fits under the reservation horizon, one does not.
        return [
            self._job(0, runtime=50.0, nodes=2, submit=0.0),
            self._job(1, runtime=50.0, nodes=2, submit=1.0),
            self._job(2, runtime=10.0, nodes=1, submit=2.0),
            self._job(3, runtime=500.0, nodes=1, submit=3.0),
        ]

    def _strategy(self):
        return MapStrategy({2: "Ruby", 3: "Ruby"}, default="Quartz")

    def test_easy_lets_long_job_backfill_elsewhere(self):
        cluster = ClusterState({"Quartz": 2, "Ruby": 2})
        sched = Scheduler(self._strategy(), cluster, conservative=False)
        result = sched.run(self._workload())
        starts = dict(zip(result.job_ids, result.start_times))
        assert starts[3] < 50.0  # long job backfilled before the shadow

    def test_conservative_blocks_long_backfill(self):
        cluster = ClusterState({"Quartz": 2, "Ruby": 2})
        sched = Scheduler(self._strategy(), cluster, conservative=True)
        result = sched.run(self._workload())
        starts = dict(zip(result.job_ids, result.start_times))
        # The 500s job would outlive the reservation horizon; it may
        # not jump ahead even on another machine.
        assert starts[3] >= starts[1]

    def test_conservative_still_allows_short_backfill(self):
        cluster = ClusterState({"Quartz": 2, "Ruby": 2})
        sched = Scheduler(self._strategy(), cluster, conservative=True)
        result = sched.run(self._workload())
        starts = dict(zip(result.job_ids, result.start_times))
        assert starts[2] < starts[1]  # 10s job fits under the horizon

    def test_conservative_never_more_backfills_than_easy(self):
        rng = np.random.default_rng(4)
        jobs = [
            self._job(i, runtime=float(rng.uniform(1, 60)),
                      nodes=int(rng.integers(1, 3)))
            for i in range(60)
        ]
        easy = Scheduler(RoundRobinStrategy(),
                         ClusterState({s: 2 for s in SYSTEMS}),
                         conservative=False).run(list(jobs))
        cons = Scheduler(RoundRobinStrategy(),
                         ClusterState({s: 2 for s in SYSTEMS}),
                         conservative=True).run(list(jobs))
        assert cons.backfilled <= easy.backfilled
        assert cons.num_jobs == easy.num_jobs == 60
