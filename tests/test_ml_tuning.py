"""Tests for grid search and the frame pivot helper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frame import Frame
from repro.ml import RidgeRegression
from repro.ml.tuning import GridSearchCV


def _linear_data(n=120, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = X @ np.array([1.0, -2.0, 0.5]) + 0.01 * rng.normal(size=n)
    return X, y


class TestGridSearchCV:
    def test_finds_low_regularization_for_clean_linear_data(self):
        X, y = _linear_data()
        gs = GridSearchCV(
            RidgeRegression, {"alpha": [1000.0, 0.01]}, n_splits=3,
            random_state=0,
        ).fit(X, y)
        assert gs.best_params_ == {"alpha": 0.01}
        assert gs.best_score_ < 0.05

    def test_results_cover_grid(self):
        X, y = _linear_data()
        gs = GridSearchCV(
            RidgeRegression, {"alpha": [0.1, 1.0, 10.0]}, n_splits=3
        ).fit(X, y)
        assert len(gs.results_) == 3
        assert {r["params"]["alpha"] for r in gs.results_} == {0.1, 1.0, 10.0}

    def test_best_estimator_refit_on_all_data(self):
        X, y = _linear_data()
        gs = GridSearchCV(RidgeRegression, {"alpha": [0.01]},
                          n_splits=3).fit(X, y)
        pred = gs.predict(X)
        assert np.abs(pred[:, 0] - y).mean() < 0.05

    def test_deterministic(self):
        X, y = _linear_data()
        a = GridSearchCV(RidgeRegression, {"alpha": [0.1, 1.0]},
                         random_state=1).fit(X, y)
        b = GridSearchCV(RidgeRegression, {"alpha": [0.1, 1.0]},
                         random_state=1).fit(X, y)
        assert a.best_params_ == b.best_params_
        assert a.best_score_ == b.best_score_

    def test_validation(self):
        with pytest.raises(ValueError):
            GridSearchCV(RidgeRegression, {})
        with pytest.raises(ValueError):
            GridSearchCV(RidgeRegression, {"alpha": []})

    def test_predict_before_fit(self):
        gs = GridSearchCV(RidgeRegression, {"alpha": [1.0]})
        with pytest.raises(RuntimeError):
            gs.predict(np.zeros((1, 3)))


class TestFramePivot:
    def _long(self):
        return Frame(
            {
                "model": ["xgb", "xgb", "lin", "lin"],
                "arch": ["Quartz", "Ruby", "Quartz", "Ruby"],
                "mae": [0.1, 0.2, 0.3, 0.4],
            }
        )

    def test_wide_shape(self):
        wide = self._long().pivot("model", "arch", "mae")
        assert wide.num_rows == 2
        assert wide.columns == ["model", "mae_Quartz", "mae_Ruby"]

    def test_values_placed_correctly(self):
        wide = self._long().pivot("model", "arch", "mae")
        row = {m: i for i, m in enumerate(wide["model"])}
        assert wide["mae_Ruby"][row["xgb"]] == pytest.approx(0.2)
        assert wide["mae_Quartz"][row["lin"]] == pytest.approx(0.3)

    def test_missing_combination_is_nan(self):
        f = Frame({"a": ["x", "y"], "b": ["p", "q"], "v": [1.0, 2.0]})
        wide = f.pivot("a", "b", "v")
        assert np.isnan(wide["v_q"][0])

    def test_duplicate_combination_rejected(self):
        f = Frame({"a": ["x", "x"], "b": ["p", "p"], "v": [1.0, 2.0]})
        with pytest.raises(ValueError):
            f.pivot("a", "b", "v")

    def test_object_values_rejected(self):
        f = Frame({"a": ["x"], "b": ["p"], "v": ["hello"]})
        with pytest.raises(TypeError):
            f.pivot("a", "b", "v")
