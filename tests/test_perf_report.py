"""repro.perf: deterministic self-profiling reports."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import perf


def _busy_workload():
    """Small but non-trivial: named helpers + numpy allocations."""
    def inner(n):
        acc = np.zeros(n)
        for _ in range(20):
            acc = acc + np.arange(n, dtype=np.float64)
        return float(acc.sum())

    total = 0.0
    for _ in range(5):
        total += inner(4096)
    return total


def test_collect_produces_valid_checksummed_report():
    report = perf.collect(_busy_workload, label="busy", top=10,
                          meta={"jobs": 5})
    assert perf.validate_report(report) is report
    assert report["workload"] == "busy"
    assert report["meta"] == {"jobs": 5}
    assert report["schema_version"] == perf.SCHEMA_VERSION
    assert report["wall_time_s"] > 0
    assert report["checksum"] == perf.checksum_report(report)
    # The report is JSON round-trippable and the checksum survives it.
    loaded = json.loads(json.dumps(report))
    assert perf.validate_report(loaded)["checksum"] == report["checksum"]


def test_collect_call_counts_are_exact():
    """cProfile is deterministic: the helper's call count is exact."""
    report = perf.collect(_busy_workload, top=200)
    by_name = {(r["function"]): r for r in report["functions"]}
    assert "inner" in by_name, sorted(by_name)
    assert by_name["inner"]["ncalls"] == 5
    assert report["counters"]["total_calls"] >= 5
    assert report["counters"]["primitive_calls"] >= 5


def test_collect_sees_numpy_allocations():
    """numpy registers buffers with tracemalloc → counters are nonzero."""
    report = perf.collect(_busy_workload, top=50)
    assert report["counters"]["peak_traced_bytes"] > 0
    assert report["counters"]["numpy_blocks"] > 0
    assert report["counters"]["numpy_bytes"] > 0
    levels = {r["cache_level"] for r in report["allocations"]}
    assert levels <= {"L1", "L2", "L3", "DRAM"}


def test_collect_restores_tracemalloc_state():
    import tracemalloc

    assert not tracemalloc.is_tracing()
    perf.collect(lambda: None, top=1)
    assert not tracemalloc.is_tracing()
    tracemalloc.start()
    try:
        perf.collect(lambda: None, top=1)
        assert tracemalloc.is_tracing()
    finally:
        tracemalloc.stop()


def test_collect_rejects_bad_top():
    with pytest.raises(ValueError):
        perf.collect(lambda: None, top=0)


def test_validate_rejects_tampered_report():
    report = perf.collect(_busy_workload, top=5)
    tampered = json.loads(json.dumps(report))
    tampered["wall_time_s"] = 0.0
    with pytest.raises(ValueError, match="checksum"):
        perf.validate_report(tampered)


def test_validate_names_first_defect():
    with pytest.raises(ValueError, match="must be an object"):
        perf.validate_report([1, 2])
    report = perf.collect(lambda: None, top=1)
    clipped = {k: v for k, v in report.items() if k != "functions"}
    with pytest.raises(ValueError, match="missing keys.*functions"):
        perf.validate_report(clipped)
    wrong_version = dict(report, schema_version=99)
    with pytest.raises(ValueError, match="schema_version"):
        perf.validate_report(wrong_version)


def test_cache_level_classification():
    assert perf._cache_level(1024) == "L1"
    assert perf._cache_level(512 * 1024) == "L2"
    assert perf._cache_level(16 * 1024 * 1024) == "L3"
    assert perf._cache_level(1 << 30) == "DRAM"


def test_render_report_top3():
    report = perf.collect(_busy_workload, top=10)
    text = perf.render_report(report, top=3)
    lines = text.splitlines()
    assert "perf profile (workload)" in lines[0]
    assert "top 3 functions by self time" in text
    # Exactly the top-3 function rows render, in self-time order.
    start = lines.index("top 3 functions by self time:") + 1
    rendered = lines[start:start + 3]
    for row, line in zip(report["functions"][:3], rendered):
        assert row["function"] in line
