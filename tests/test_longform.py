"""Schema-v2 long-format dataset: build, round-trip, migration errors.

The load-bearing guarantee: the wide (v1) table and the long (v2) table
are two views of the same measurements, and converting v1 -> v2 -> v1
is **bit-identical** (pinned with :func:`frame_digest`, a SHA-256 over
every column's name, dtype, and bytes) — so every paper figure renders
the same from either schema.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.descriptor import descriptor_from_spec, spec_from_descriptor
from repro.arch.machines import MACHINES, SYSTEM_ORDER
from repro.dataset.generate import MPHPCDataset, generate_dataset
from repro.dataset.longform import LongformDataset, build_longform, frame_digest
from repro.dataset.schema import (
    COUNTER_FEATURES,
    LONG_FEATURE_COLUMNS,
    LONG_META_COLUMNS,
    LONG_TARGET_COLUMN,
)
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def longform(small_dataset) -> LongformDataset:
    return build_longform(small_dataset)


class TestBuildLongform:
    def test_row_expansion(self, small_dataset, longform):
        assert longform.num_rows == small_dataset.num_rows * len(SYSTEM_ORDER)
        assert longform.targets == tuple(SYSTEM_ORDER)

    def test_column_layout(self, longform):
        expected = (list(LONG_META_COLUMNS) + list(LONG_FEATURE_COLUMNS)
                    + [LONG_TARGET_COLUMN])
        assert list(longform.frame.columns) == expected

    def test_rel_time_is_target_over_source(self, longform):
        frame = longform.frame
        src = np.asarray(frame["time_seconds"], dtype=np.float64)
        tgt = np.asarray(frame["target_time_seconds"], dtype=np.float64)
        assert np.array_equal(longform.y(), tgt / src)

    def test_self_target_rel_time_is_one(self, longform):
        frame = longform.frame
        self_rows = (frame["machine"].astype(str)
                     == frame["target_machine"].astype(str))
        assert self_rows.any()
        assert np.allclose(longform.y()[self_rows], 1.0)

    def test_descriptor_columns_match_specs(self, longform):
        frame = longform.frame
        tgt_names = frame["target_machine"].astype(str)
        for name in SYSTEM_ORDER:
            rows = np.flatnonzero(tgt_names == name)
            vec = descriptor_from_spec(MACHINES[name]).vector()
            got = np.array([
                frame[col][rows[0]]
                for col in longform.feature_columns
                if col.startswith("tgt_")
            ])
            assert np.array_equal(got, vec)

    def test_X_y_shapes(self, longform):
        X, y = longform.X(), longform.y()
        assert X.shape == (longform.num_rows, len(LONG_FEATURE_COLUMNS))
        assert y.shape == (longform.num_rows,)
        assert np.isfinite(X).all() and np.isfinite(y).all()

    def test_custom_descriptor_target(self, small_dataset):
        """A machine that never existed at collection time can be a
        target via an explicit descriptor — the zero-shot premise."""
        ghost = descriptor_from_spec(MACHINES["Ruby"])
        ghost = type(ghost).from_dict({**ghost.to_dict(), "name": "Ghost"})
        descriptors = {name: descriptor_from_spec(spec)
                       for name, spec in MACHINES.items()}
        descriptors["Ghost"] = ghost
        with pytest.raises(DatasetError, match="no row on target"):
            # No measured times on Ghost -> targets including it fail
            # loudly instead of fabricating labels.
            build_longform(small_dataset, descriptors=descriptors,
                           targets=tuple(SYSTEM_ORDER) + ("Ghost",))

    def test_unknown_target_descriptor_rejected(self, small_dataset):
        with pytest.raises(DatasetError, match="no descriptor for target"):
            build_longform(small_dataset,
                           targets=tuple(SYSTEM_ORDER) + ("Mystery",))


class TestWideRoundTrip:
    def test_bit_identical_round_trip(self, small_dataset, longform):
        """v1 -> v2 -> v1 reproduces every byte of every column."""
        wide = longform.to_wide()
        assert frame_digest(wide.frame) == frame_digest(small_dataset.frame)

    def test_round_trip_on_other_seed(self):
        dataset = generate_dataset(inputs_per_app=2, seed=777)
        again = build_longform(dataset).to_wide()
        assert frame_digest(again.frame) == frame_digest(dataset.frame)

    def test_rpv_matches_exactly(self, small_dataset, longform):
        wide = longform.to_wide()
        assert np.array_equal(wide.Y(), small_dataset.Y())
        assert np.array_equal(wide.X(), small_dataset.X())

    def test_to_wide_requires_full_machine_set(self, longform):
        held_out = longform.exclude_machine("Corona")
        with pytest.raises(DatasetError, match="full frozen machine set"):
            held_out.to_wide()


class TestExcludeMachine:
    def test_drops_machine_as_source_and_target(self, longform):
        held_out = longform.exclude_machine("Corona")
        frame = held_out.frame
        assert "Corona" not in set(frame["machine"].astype(str))
        assert "Corona" not in set(frame["target_machine"].astype(str))
        assert held_out.targets == ("Quartz", "Ruby", "Lassen")
        # 3/4 of sources x 3/4 of targets survive.
        assert held_out.num_rows == longform.num_rows * 9 // 16

    def test_excluding_everything_raises(self, longform):
        held = longform
        with pytest.raises(DatasetError, match="leaves no rows"):
            for name in SYSTEM_ORDER:
                held = held.exclude_machine(name)

    def test_target_descriptors_reconstruct(self, longform):
        held_out = longform.exclude_machine("Corona")
        descs = held_out.target_descriptors()
        assert set(descs) == {"Quartz", "Ruby", "Lassen"}
        for name, desc in descs.items():
            expected = descriptor_from_spec(MACHINES[name])
            assert np.array_equal(desc.vector(), expected.vector())
            # The reconstructed descriptor is registerable again.
            assert spec_from_descriptor(desc).name == name


class TestPersistence:
    def test_save_load_round_trip(self, longform, tmp_path):
        path = tmp_path / "long.csv"
        longform.save(path)
        loaded = LongformDataset.load(path)
        assert loaded.targets == longform.targets
        assert np.allclose(loaded.X(), longform.X())
        assert np.allclose(loaded.y(), longform.y())

    def test_load_rejects_v1_with_upgrade_hint(self, small_dataset,
                                               tmp_path):
        path = tmp_path / "wide.csv"
        small_dataset.save(path)
        with pytest.raises(DatasetError) as err:
            LongformDataset.load(path)
        message = str(err.value)
        assert "schema-v1" in message
        assert "build_longform" in message  # the upgrade hint

    def test_v1_loader_rejects_v2_with_hint(self, longform, tmp_path):
        path = tmp_path / "long.csv"
        longform.save(path)
        with pytest.raises(DatasetError, match="long"):
            MPHPCDataset.load(path)

    def test_load_names_schema_drift(self, longform, tmp_path):
        from repro.frame import write_csv

        path = tmp_path / "drift.csv"
        frame = longform.frame.select(
            [c for c in longform.frame.columns if c != "tgt_cores"]
        )
        write_csv(frame, path)
        with pytest.raises(DatasetError, match="tgt_cores"):
            LongformDataset.load(path)


class TestCounterDtypePreservation:
    def test_counters_survive_expansion_exactly(self, small_dataset,
                                                longform):
        wide = small_dataset.frame
        n_targets = len(SYSTEM_ORDER)
        for name in COUNTER_FEATURES:
            expanded = longform.frame[name]
            assert expanded.dtype == wide[name].dtype
            assert np.array_equal(expanded[::n_targets], wide[name])
