"""Telemetry subsystem: spans, metrics, merging, and CLI integration.

Pins the subsystem's contracts:

* spans nest, close exception-safely (recording ``error=True``), and
  work as decorators — including functions decorated while telemetry
  was still off;
* histogram bucket edges follow upper-edge-inclusive (Prometheus
  ``le``) semantics, and merging is exact with matching edges / a typed
  error otherwise;
* metrics merged across ``repro.parallel`` worker processes equal the
  sequential run's numbers for deterministic workloads;
* ``SimStats`` / ``CacheStats`` keep their pinned schemas;
* the CLI round-trip: ``--telemetry trace`` writes manifest-inventoried
  ``trace.json``/``metrics.json`` and ``repro report <run-dir>``
  renders them.
"""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.errors import TelemetryError
from repro.sched.simulator import SimStats
from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.spans import Tracer


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts and ends with telemetry off and empty."""
    telemetry.configure("off")
    telemetry.reset()
    yield
    telemetry.configure("off")
    telemetry.reset()


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------
class TestSpans:
    def test_nesting_records_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, parent = tracer.spans()
        assert a.parent_id == parent.span_id
        assert b.parent_id == parent.span_id

    def test_span_closes_and_flags_error_when_body_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span.error is True
        assert span.error_type == "RuntimeError"
        assert span.end_ns >= span.start_ns
        # The stack unwound: a new span is again a root.
        with tracer.span("next"):
            pass
        assert tracer.spans()[-1].parent_id is None

    def test_durations_are_monotonic_and_attrs_kept(self):
        tracer = Tracer()
        with tracer.span("timed", shards=3) as sp:
            sp.annotate(rows=12)
        (span,) = tracer.spans()
        assert span.duration_ns >= 0
        assert span.duration_s >= 0.0
        assert span.attrs == {"shards": 3, "rows": 12}

    def test_decorator_form(self):
        tracer = Tracer()

        @tracer.span("work", kind="test")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert work(2) == 3
        spans = tracer.spans()
        assert [s.name for s in spans] == ["work", "work"]
        assert spans[0].attrs == {"kind": "test"}

    def test_decorator_applied_while_disabled_activates_later(self):
        tracer = Tracer(enabled=False)

        @tracer.span("late")
        def work():
            return 42

        assert work() == 42
        assert tracer.spans() == []
        tracer.enabled = True
        assert work() == 42
        assert [s.name for s in tracer.spans()] == ["late"]

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ghost"):
            pass
        assert tracer.spans() == []

    def test_module_level_span_obeys_mode(self):
        with telemetry.span("off-mode"):
            pass
        assert telemetry.spans() == []
        telemetry.configure("trace")
        with telemetry.span("on-mode"):
            pass
        assert [s.name for s in telemetry.spans()] == ["on-mode"]

    def test_metrics_mode_does_not_trace(self):
        telemetry.configure("metrics")
        with telemetry.span("not-recorded"):
            pass
        assert telemetry.spans() == []


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(TelemetryError, match="negative"):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("rows")
        g.set(10)
        g.set(3)
        assert g.value == 3.0

    def test_histogram_bucket_edges(self):
        h = Histogram("lat", (1.0, 10.0, 100.0))
        # Upper-edge-inclusive: v == edge lands in that edge's bucket.
        for value, bucket in ((0.5, 0), (1.0, 0), (1.5, 1), (10.0, 1),
                              (99.0, 2), (100.0, 2), (101.0, 3)):
            before = list(h.counts)
            h.observe(value)
            after = list(h.counts)
            changed = [i for i in range(len(after))
                       if after[i] != before[i]]
            assert changed == [bucket], (value, changed)
        assert h.count == 7
        assert h.counts == [2, 2, 2, 1]
        assert h.sum == pytest.approx(0.5 + 1 + 1.5 + 10 + 99 + 100 + 101)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(TelemetryError, match="strictly"):
            Histogram("bad", (1.0, 1.0))
        with pytest.raises(TelemetryError, match="bucket"):
            Histogram("empty", ())

    def test_histogram_merge_exact(self):
        a = Histogram("h", (1.0, 2.0))
        b = Histogram("h", (1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.sum == pytest.approx(11.0)
        assert a.state()["min"] == 0.5
        assert a.state()["max"] == 9.0

    def test_histogram_merge_mismatched_edges_raises(self):
        a = Histogram("h", (1.0, 2.0))
        b = Histogram("h", (1.0, 3.0))
        with pytest.raises(TelemetryError, match="mismatched bucket"):
            a.merge(b)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TelemetryError, match="Counter"):
            reg.gauge("x")

    def test_histogram_bucket_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0, 2.0))
        with pytest.raises(TelemetryError, match="already exists"):
            reg.histogram("h", (1.0, 3.0))

    def test_snapshot_and_merge_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h", (1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["counts"] == [1, 0]
        other = MetricsRegistry()
        other.merge_snapshot(snap)
        other.merge_snapshot(snap)
        merged = other.snapshot()
        assert merged["counters"] == {"c": 4}
        assert merged["histograms"]["h"]["counts"] == [2, 0]

    def test_snapshot_is_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h", (1.0,)).observe(2.0)
        json.dumps(reg.snapshot())  # must not raise

    def test_disabled_accessors_return_shared_null_metric(self):
        assert telemetry.counter("a") is telemetry.NULL_METRIC
        assert telemetry.gauge("b") is telemetry.NULL_METRIC
        assert telemetry.histogram("c") is telemetry.NULL_METRIC
        telemetry.counter("a").inc()
        telemetry.histogram("c").observe(1.0)
        telemetry.configure("metrics")
        assert telemetry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_unknown_mode_rejected(self):
        with pytest.raises(TelemetryError, match="unknown telemetry mode"):
            telemetry.configure("verbose")


# ---------------------------------------------------------------------------
# Cross-process merging via repro.parallel
# ---------------------------------------------------------------------------
def _metric_task(n: int) -> int:
    """Module-level worker: deterministic metric updates per task."""
    telemetry.counter("xp.tasks").inc()
    telemetry.counter("xp.total").inc(n)
    telemetry.histogram("xp.size", (2.0, 8.0)).observe(float(n))
    return n * n


class TestCrossProcessMerge:
    def test_jobs2_snapshot_equals_jobs1(self):
        from repro.parallel import run_tasks

        tasks = [1, 2, 3, 4, 5, 6, 7, 8]

        telemetry.configure("metrics")
        telemetry.reset()
        seq = run_tasks(_metric_task, tasks, jobs=1)
        seq_snap = telemetry.snapshot()

        telemetry.reset()
        par = run_tasks(_metric_task, tasks, jobs=2)
        par_snap = telemetry.snapshot()

        assert par == seq
        assert par_snap == seq_snap
        assert par_snap["counters"] == {"xp.tasks": 8, "xp.total": 36}
        assert par_snap["histograms"]["xp.size"]["counts"] == [2, 6, 0]

    def test_pool_path_untouched_when_telemetry_off(self):
        from repro.parallel import run_tasks

        results = run_tasks(_metric_task, [3, 4], jobs=2)
        assert results == [9, 16]
        telemetry.configure("metrics")
        assert telemetry.snapshot()["counters"] == {}


# ---------------------------------------------------------------------------
# Typed stats dataclasses
# ---------------------------------------------------------------------------
class TestSimStats:
    def test_key_schema_pinned(self):
        assert SimStats.KEYS == (
            "wakeups", "starts", "backfilled", "retries", "sched_events"
        )

    def test_derived_sched_events_and_dict_access(self):
        stats = SimStats(wakeups=10, starts=7, backfilled=2, retries=1)
        assert stats.sched_events == 17
        assert stats["sched_events"] == 17
        assert stats["backfilled"] == 2
        assert stats.as_dict() == {
            "wakeups": 10, "starts": 7, "backfilled": 2,
            "retries": 1, "sched_events": 17,
        }
        with pytest.raises(KeyError):
            stats["bogus"]

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SimStats().wakeups = 5

    def test_scheduler_fills_simstats(self):
        import numpy as np

        from repro.sched import ClusterState, Job, Scheduler
        from repro.sched.strategies import RoundRobinStrategy

        jobs = [
            Job(job_id=i, app="CoMD", uses_gpu=False, nodes_required=1,
                runtimes={"Quartz": 60.0, "Ruby": 60.0, "Lassen": 60.0,
                          "Corona": 60.0},
                submit_time=float(i),
                predicted_rpv=np.ones(4), true_rpv=np.ones(4))
            for i in range(5)
        ]
        sched = Scheduler(RoundRobinStrategy(), ClusterState())
        sched.run(jobs)
        stats = sched.last_run_stats
        assert isinstance(stats, SimStats)
        assert stats.starts == 5
        assert stats.sched_events == stats.wakeups + stats.starts


class TestCacheStats:
    def test_merge_and_since(self):
        from repro.dataset.store import CacheStats

        a = CacheStats(hits=1, misses=2, evictions=0)
        b = CacheStats(hits=3, misses=1, evictions=2)
        assert a.merge(b) is a
        assert a.as_dict() == {"hits": 4, "misses": 3, "evictions": 2}
        delta = a.since(CacheStats(hits=1, misses=1, evictions=1))
        assert delta == CacheStats(hits=3, misses=2, evictions=1)

    def test_generate_dataset_returns_cache_stats(self, tmp_path):
        from repro.dataset import generate_dataset
        from repro.dataset.store import CacheStats

        kwargs = dict(inputs_per_app=1, seed=3, apps=["CoMD"],
                      cache_dir=tmp_path / "cache")
        cold = generate_dataset(**kwargs)
        assert isinstance(cold.cache_stats, CacheStats)
        assert cold.cache_stats.hits == 0
        assert cold.cache_stats.misses > 0
        warm = generate_dataset(**kwargs)
        assert warm.cache_stats.misses == 0
        assert warm.cache_stats.hits == cold.cache_stats.misses
        # Cacheless generation reports no stats at all.
        plain = generate_dataset(inputs_per_app=1, seed=3, apps=["CoMD"])
        assert plain.cache_stats is None

    def test_cache_stats_feed_telemetry_counters(self, tmp_path):
        from repro.dataset import generate_dataset

        telemetry.configure("metrics")
        generate_dataset(inputs_per_app=1, seed=3, apps=["CoMD"],
                         cache_dir=tmp_path / "cache")
        counters = telemetry.snapshot()["counters"]
        assert counters["dataset.cache.misses"] > 0
        assert counters["dataset.cache.hits"] == 0
        assert counters["dataset.shards.generated"] > 0


# ---------------------------------------------------------------------------
# Exporters and report rendering
# ---------------------------------------------------------------------------
class TestExport:
    def _spans(self):
        tracer = Tracer()
        with tracer.span("outer", phase="x"):
            with tracer.span("inner"):
                pass
        return tracer.spans()

    def test_chrome_trace_shape(self):
        doc = telemetry.chrome_trace(self._spans())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 2
        for event in complete:
            assert {"name", "ph", "ts", "dur", "pid", "tid",
                    "args"} <= set(event)
            assert event["ts"] >= 0
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "repro"
        json.dumps(doc)

    def test_jsonl_one_object_per_line(self):
        text = telemetry.spans_jsonl(self._spans())
        lines = text.strip().split("\n")
        assert len(lines) == 2
        assert {json.loads(line)["name"] for line in lines} == {
            "inner", "outer"
        }

    def test_sim_events_to_chrome(self):
        events = [(0.0, "start", 1, "Quartz"),
                  (5.0, "backfill_start", 2, "Lassen"),
                  (9.0, "reserve", 3, "")]
        doc = telemetry.sim_events_to_chrome(events)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 3
        rows = {e["args"]["machine"] for e in instants}
        assert rows == {"Quartz", "Lassen", ""}
        json.dumps(doc)

    def test_report_self_time_rollup(self):
        from repro.telemetry.report import span_rollup

        doc = telemetry.chrome_trace(self._spans())
        rollup = {r["name"]: r for r in span_rollup(doc)}
        assert rollup["inner"]["calls"] == 1
        # Parent self time excludes the child's duration.
        outer = rollup["outer"]
        assert outer["self_s"] <= outer["total_s"]

    def test_render_run_report_smoke(self):
        telemetry.configure("trace")
        with telemetry.span("phase"):
            telemetry.counter("c").inc(3)
        text = telemetry.render_run_report(
            {"command": "x", "config_hash": "abc", "seed": 1, "files": {}},
            {"telemetry": telemetry.snapshot(), "mae": 0.03},
            telemetry.chrome_trace(telemetry.spans()),
        )
        assert "phase" in text
        assert "c" in text
        assert "mae" in text

    def test_format_uncertainty_table(self):
        from repro.telemetry.report import format_uncertainty_table

        text = format_uncertainty_table({
            "Ruby": {"mean_std": 0.12, "p95_std": 0.3, "max_std": 0.45},
            "Quartz": {"mean_std": 0.08, "p95_std": 0.2, "max_std": 0.3},
        })
        lines = text.splitlines()
        assert lines[0].split() == ["machine", "mean_std", "p95_std",
                                    "max_std"]
        # Sorted by machine name; values rendered to 4 decimals.
        assert lines[2].startswith("Quartz")
        assert "0.1200" in lines[3]
        assert format_uncertainty_table({}) \
            == "no per-machine uncertainty recorded"

    def test_render_run_report_includes_uncertainty(self):
        text = telemetry.render_run_report(
            {"command": "schedule", "config_hash": "abc", "seed": 1,
             "files": {}},
            {"uncertainty": {"Ruby": {"mean_std": 0.1, "p95_std": 0.2,
                                      "max_std": 0.3}},
             "mae": 0.03},
            None,
        )
        assert "per-machine predictive uncertainty" in text
        assert "Ruby" in text
        # The mapping renders as a table, not a headline dump.
        assert "'mean_std'" not in text
        assert "mae" in text


# ---------------------------------------------------------------------------
# CLI end-to-end
# ---------------------------------------------------------------------------
class TestCLI:
    def test_schedule_trace_roundtrip(self, tmp_path, capsys):
        from repro.artifacts import load_run, verify_run
        from repro.cli import main

        run_root = tmp_path / "runs"
        rc = main([
            "schedule", "--jobs", "50", "--inputs-per-app", "1",
            "--strategies", "model", "--telemetry", "trace",
            "--run-dir", str(run_root),
        ])
        assert rc == 0
        (run_dir,) = list(run_root.iterdir())

        run = verify_run(run_dir)  # everything inventoried, no orphans
        assert "trace.json" in run.manifest["files"]
        assert "metrics.json" in run.manifest["files"]
        assert "sim_trace_model.json" in run.manifest["files"]

        trace = run.read_json("trace.json")
        names = {e["name"] for e in trace["traceEvents"]
                 if e["ph"] == "X"}
        assert "sched.run" in names
        assert "dataset.generate" in names

        metrics = run.read_json("metrics.json")
        assert metrics["telemetry"]["counters"]["sched.runs"] == 1
        assert "model" in metrics  # headline metrics survive the merge

        capsys.readouterr()
        assert main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "top spans by self time" in out
        assert "sched.run" in out
        assert "sched.runs" in out

        # load_run still reads the run plainly.
        assert load_run(run_dir).command == "schedule"

    def test_schedule_with_uncertainty_report_roundtrip(self, tmp_path,
                                                        capsys):
        from repro.artifacts import verify_run
        from repro.cli import main

        run_root = tmp_path / "runs"
        rc = main([
            "schedule", "--jobs", "50", "--inputs-per-app", "1",
            "--strategies", "model", "risk-aware",
            "--with-uncertainty", "--run-dir", str(run_root),
        ])
        assert rc == 0
        (run_dir,) = list(run_root.iterdir())
        metrics = verify_run(run_dir).read_json("metrics.json")
        assert set(metrics["uncertainty"]) \
            == {"Quartz", "Ruby", "Lassen", "Corona"}
        for stats in metrics["uncertainty"].values():
            assert 0 <= stats["mean_std"] <= stats["p95_std"] \
                <= stats["max_std"]

        capsys.readouterr()
        assert main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "per-machine predictive uncertainty" in out
        assert "Corona" in out

    def test_telemetry_off_writes_no_artifacts(self, tmp_path):
        from repro.artifacts import verify_run
        from repro.cli import main

        run_root = tmp_path / "runs"
        rc = main([
            "schedule", "--jobs", "50", "--inputs-per-app", "1",
            "--strategies", "model", "--run-dir", str(run_root),
        ])
        assert rc == 0
        (run_dir,) = list(run_root.iterdir())
        run = verify_run(run_dir)
        assert "trace.json" not in run.manifest["files"]
        metrics = run.read_json("metrics.json")
        assert "telemetry" not in metrics

    def test_main_resets_telemetry_between_invocations(self, tmp_path):
        from repro.cli import main

        run_root = tmp_path / "runs"
        rc = main([
            "schedule", "--jobs", "50", "--inputs-per-app", "1",
            "--strategies", "model", "--telemetry", "metrics",
            "--run-dir", str(run_root),
        ])
        assert rc == 0
        assert telemetry.mode() == "off"
        telemetry.configure("metrics")
        assert telemetry.snapshot()["counters"] == {}

    def test_report_without_run_still_reports_dataset(self, capsys):
        from repro.cli import main

        assert main(["report", "--inputs-per-app", "1"]) == 0
        assert "rows" in capsys.readouterr().out.lower()

    def test_report_rejects_non_run_directory(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", str(tmp_path)]) == 2
        assert "not a run directory" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Reset keeps handed-out metric handles live (regression: reset() used
# to discard the objects, so any module that cached a counter kept
# feeding an orphan the snapshot never saw again)
# ---------------------------------------------------------------------------
class TestResetRebind:
    def test_registry_handles_survive_reset(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        hist = reg.histogram("h", (1.0,))
        gauge = reg.gauge("g")
        counter.inc(3)
        hist.observe(0.5)
        gauge.set(7)
        reg.reset()
        # Untouched-since-reset metrics stay out of the snapshot...
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }
        # ...and the PRE-reset handles still feed the registry.
        counter.inc(2)
        hist.observe(2.0)
        gauge.set(1)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.0}
        assert snap["histograms"]["h"]["counts"] == [0, 1]
        # Same objects, not re-registered lookalikes.
        assert reg.counter("c") is counter
        assert reg.histogram("h", (1.0,)) is hist

    def test_module_level_handle_survives_reset(self):
        telemetry.configure("metrics")
        cached = telemetry.counter("xr.cached")
        cached.inc()
        telemetry.reset()
        cached.inc(5)
        assert telemetry.snapshot()["counters"] == {"xr.cached": 5}


# ---------------------------------------------------------------------------
# Cross-process span merging: jobs=2 must rebuild jobs=1's span tree
# ---------------------------------------------------------------------------
def _span_task(n: int) -> int:
    """Module-level worker: a two-level span tree per task."""
    with telemetry.span("xp.item", n=n):
        with telemetry.span("xp.inner"):
            pass
    return n


def _tree_digest(records):
    """Structural digest of a span forest: names + parent-child shape.

    Ignores span ids, timing, and sibling order — the only things
    allowed to differ between an inline run and a pool run.
    """
    names = {r.span_id: r.name for r in records}
    children: dict = {}
    for r in records:
        parent = r.parent_id if r.parent_id in names else None
        children.setdefault(parent, []).append(r.span_id)

    def node(span_id):
        kids = tuple(sorted(node(c) for c in children.get(span_id, [])))
        return (names[span_id], kids)

    return tuple(sorted(node(root) for root in children.get(None, [])))


class TestCrossProcessSpanMerge:
    def _run(self, jobs: int):
        from repro.parallel import run_tasks

        telemetry.configure("trace")
        telemetry.reset()
        with telemetry.trace_context("trace-xp"):
            with telemetry.span("xp.run"):
                run_tasks(_span_task, [1, 2, 3], jobs=jobs)
        return telemetry.spans()

    def test_jobs2_tree_structurally_equals_jobs1(self):
        seq = self._run(jobs=1)
        par = self._run(jobs=2)
        digest = _tree_digest(seq)
        assert _tree_digest(par) == digest
        # Pin the shape itself, not just the equality: one xp.run root
        # holding three xp.item children, each with one xp.inner child.
        item = ("xp.item", (("xp.inner", ()),))
        assert digest == (("xp.run", (item, item, item)),)

    def test_adopted_spans_join_the_callers_trace(self):
        par = self._run(jobs=2)
        assert {r.trace_id for r in par} == {"trace-xp"}
        run_span = [r for r in par if r.name == "xp.run"][0]
        items = [r for r in par if r.name == "xp.item"]
        assert len(items) == 3
        assert {r.parent_id for r in items} == {run_span.span_id}
