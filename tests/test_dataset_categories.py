"""Tests for the Section V-C counter-category taxonomy."""

from __future__ import annotations

import pytest

from repro.dataset.categories import (
    CATEGORY_OF,
    FEATURE_CATEGORIES,
    category_importances,
)
from repro.dataset.schema import FEATURE_COLUMNS


class TestTaxonomy:
    def test_partition_is_complete_and_disjoint(self):
        all_features = [
            f for features in FEATURE_CATEGORIES.values() for f in features
        ]
        assert sorted(all_features) == sorted(set(all_features))
        assert set(all_features) == set(FEATURE_COLUMNS)

    def test_paper_categories_present(self):
        # Section V-C names control flow, data intensity, and I/O.
        for category in ("control_flow", "data_intensity", "io"):
            assert category in FEATURE_CATEGORIES

    def test_branch_is_control_flow(self):
        assert CATEGORY_OF["branch_intensity"] == "control_flow"

    def test_cache_misses_are_data_intensity(self):
        for f in ("l1_load_misses", "l2_store_misses", "mem_stalls"):
            assert CATEGORY_OF[f] == "data_intensity"


class TestAggregation:
    def test_sums_preserved(self):
        imps = {f: 1.0 / len(FEATURE_COLUMNS) for f in FEATURE_COLUMNS}
        agg = category_importances(imps)
        assert sum(agg.values()) == pytest.approx(1.0)

    def test_sorted_descending(self):
        imps = {f: 0.0 for f in FEATURE_COLUMNS}
        imps["branch_intensity"] = 0.7
        imps["io_bytes_read"] = 0.3
        agg = category_importances(imps)
        assert list(agg)[:2] == ["control_flow", "io"]

    def test_unknown_feature_rejected(self):
        with pytest.raises(KeyError):
            category_importances({"flux_capacitance": 1.0})

    def test_with_trained_model(self, trained_xgb):
        agg = category_importances(trained_xgb.feature_importances())
        assert sum(agg.values()) == pytest.approx(1.0)
        assert set(agg) == set(FEATURE_CATEGORIES)
