"""The uncertainty protocol threaded through ml -> core -> workload -> sched.

Two invariants the whole refactor hangs on:

* attaching uncertainty NEVER changes the point predictions — the mean
  side of every ``*_with_uncertainty`` call is **bit-identical**
  (``np.array_equal``, not ``allclose``) to the plain call, so all
  existing figures/benchmarks stay byte-stable;
* the risk-aware strategy degrades gracefully: confident predictions
  reproduce model-based assignment, missing ``rpv_std`` falls back to
  the base margin.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.predictor import CrossArchPredictor
from repro.dataset.schema import FEATURE_COLUMNS
from repro.errors import PackingError
from repro.ml.boosting import GradientBoostedTrees
from repro.ml.forest import RandomForestRegressor
from repro.sched.job import Job
from repro.sched.machines import ClusterState
from repro.sched.strategies import (
    STRATEGIES,
    ModelBasedStrategy,
    RiskAwareStrategy,
    strategy_by_name,
)
from repro.workloads.trace import build_workload


@pytest.fixture(scope="module")
def Xy(small_dataset, split_indices):
    train_rows, test_rows = split_indices
    frame = small_dataset.frame.take(train_rows)
    X = frame.to_matrix(list(FEATURE_COLUMNS))
    Y = frame.to_matrix(list(small_dataset.target_columns))
    X_test = small_dataset.frame.take(test_rows).to_matrix(
        list(FEATURE_COLUMNS)
    )
    return X, Y, X_test


@pytest.fixture(scope="module")
def xgb_with_heads(small_dataset, split_indices) -> CrossArchPredictor:
    train_rows, _ = split_indices
    return CrossArchPredictor.train(
        small_dataset, model="xgboost", rows=train_rows,
        n_estimators=40, max_depth=4,
        quantile_heads=(0.25, 0.75), n_quantile_rounds=40,
    )


class TestBoostingQuantileHeads:
    def test_heads_flip_has_uncertainty(self, Xy):
        X, Y, _ = Xy
        plain = GradientBoostedTrees(n_estimators=5, max_depth=3)
        assert not plain.has_uncertainty
        headed = GradientBoostedTrees(
            n_estimators=5, max_depth=3,
            quantile_heads=(0.25, 0.75), n_quantile_rounds=5,
        ).fit(X[:200], Y[:200])
        assert headed.has_uncertainty

    def test_heads_do_not_change_predictions(self, Xy):
        """The load-bearing exactness claim: quantile heads are fitted
        AFTER the main loop with no shared rng, so the main ensemble —
        and therefore every figure — is bit-identical with or without
        them."""
        X, Y, X_test = Xy
        kwargs = dict(n_estimators=20, max_depth=4, random_state=0)
        plain = GradientBoostedTrees(**kwargs).fit(X, Y)
        headed = GradientBoostedTrees(
            quantile_heads=(0.25, 0.75), n_quantile_rounds=10, **kwargs
        ).fit(X, Y)
        assert np.array_equal(plain.predict(X_test), headed.predict(X_test))

    def test_uncertainty_mean_is_predict(self, Xy):
        X, Y, X_test = Xy
        model = GradientBoostedTrees(
            n_estimators=15, max_depth=4,
            quantile_heads=(0.25, 0.75), n_quantile_rounds=15,
        ).fit(X, Y)
        mean, spread = model.predict_with_uncertainty(X_test)
        assert np.array_equal(mean, model.predict(X_test))
        assert spread.shape == mean.shape
        assert (spread >= 0).all()
        assert spread.any()  # fitted heads actually separate

    def test_uncertainty_without_heads_raises(self, Xy):
        X, Y, X_test = Xy
        model = GradientBoostedTrees(n_estimators=5, max_depth=3)
        model.fit(X[:200], Y[:200])
        with pytest.raises(RuntimeError, match="quantile heads"):
            model.predict_with_uncertainty(X_test)

    @pytest.mark.parametrize("heads,error", [
        ((0.5,), "2 levels"),
        ((0.0, 0.5), "in \\(0, 1\\)"),
        ((0.25, 1.0), "in \\(0, 1\\)"),
        ((0.25, 0.25), "distinct"),
    ])
    def test_constructor_validation(self, heads, error):
        with pytest.raises(ValueError, match=error):
            GradientBoostedTrees(quantile_heads=heads)

    def test_quantile_rounds_validation(self):
        with pytest.raises(ValueError, match="n_quantile_rounds"):
            GradientBoostedTrees(quantile_heads=(0.25, 0.75),
                                 n_quantile_rounds=0)


class TestForestUncertainty:
    def test_ensemble_spread(self, Xy):
        X, Y, X_test = Xy
        forest = RandomForestRegressor(n_estimators=8, max_depth=6,
                                       random_state=0).fit(X, Y)
        assert forest.has_uncertainty
        mean, spread = forest.predict_with_uncertainty(X_test)
        assert np.array_equal(mean, forest.predict(X_test))
        assert (spread >= 0).all() and spread.any()


class TestPredictorThreading:
    def test_has_uncertainty_reflects_model(self, trained_xgb,
                                            xgb_with_heads):
        assert not trained_xgb.has_uncertainty
        assert xgb_with_heads.has_uncertainty

    def test_mean_bit_identical(self, xgb_with_heads, small_dataset,
                                split_indices):
        _, test_rows = split_indices
        X = small_dataset.X()[test_rows]
        mean, spread = xgb_with_heads.predict_with_uncertainty(X)
        assert np.array_equal(mean, xgb_with_heads.predict(X))
        assert spread.shape == mean.shape
        assert (spread >= 0).all()

    def test_packed_mean_bit_identical(self, xgb_with_heads,
                                       small_dataset, split_indices):
        _, test_rows = split_indices
        Xb = xgb_with_heads.pack(small_dataset.X()[test_rows])
        mean, spread = xgb_with_heads.predict_packed_with_uncertainty(Xb)
        assert np.array_equal(mean, xgb_with_heads.predict_packed(Xb))
        assert (spread >= 0).all()

    def test_packed_rejects_wrong_dtype(self, xgb_with_heads,
                                        small_dataset):
        X = small_dataset.X()[:4]
        with pytest.raises(PackingError, match="uint8"):
            xgb_with_heads.predict_packed_with_uncertainty(
                X.astype(np.float64)
            )

    def test_packed_rejects_wrong_width(self, xgb_with_heads):
        bad = np.zeros((3, len(FEATURE_COLUMNS) + 2), dtype=np.uint8)
        with pytest.raises(PackingError, match="expected"):
            xgb_with_heads.predict_packed_with_uncertainty(bad)

    def test_plain_xgboost_raises_with_remedy(self, trained_xgb,
                                              small_dataset):
        with pytest.raises(TypeError, match="quantile_heads"):
            trained_xgb.predict_with_uncertainty(small_dataset.X()[:2])


class TestWorkloadUncertainty:
    def test_jobs_carry_rpv_std(self, small_dataset, xgb_with_heads):
        jobs = build_workload(small_dataset, n_jobs=50, seed=11,
                              predictor=xgb_with_heads,
                              with_uncertainty=True)
        for job in jobs:
            assert job.rpv_std is not None
            assert job.rpv_std.shape == job.predicted_rpv.shape
            assert (job.rpv_std >= 0).all()

    def test_flag_never_changes_predicted_rpv(self, small_dataset,
                                              xgb_with_heads):
        """Same seed, same predictor: with_uncertainty must be a pure
        annotation — predicted_rpv stays bit-identical."""
        plain = build_workload(small_dataset, n_jobs=40, seed=5,
                               predictor=xgb_with_heads)
        annotated = build_workload(small_dataset, n_jobs=40, seed=5,
                                   predictor=xgb_with_heads,
                                   with_uncertainty=True)
        for a, b in zip(plain, annotated):
            assert np.array_equal(a.predicted_rpv, b.predicted_rpv)
            assert a.rpv_std is None and b.rpv_std is not None

    def test_requires_predictor(self, small_dataset):
        with pytest.raises(ValueError, match="requires a predictor"):
            build_workload(small_dataset, n_jobs=5,
                           with_uncertainty=True)

    def test_requires_uncertainty_capable_predictor(self, small_dataset,
                                                    trained_xgb):
        with pytest.raises(TypeError, match="quantile_heads"):
            build_workload(small_dataset, n_jobs=5, seed=1,
                           predictor=trained_xgb, with_uncertainty=True)


SYSTEMS = ("Quartz", "Ruby", "Lassen", "Corona")


def _job(job_id, rpv, std=None, nodes=1):
    return Job(
        job_id=job_id, app="lulesh", uses_gpu=False, nodes_required=nodes,
        runtimes={s: 10.0 for s in SYSTEMS},
        predicted_rpv=np.asarray(rpv, dtype=np.float64),
        rpv_std=None if std is None
        else np.asarray(std, dtype=np.float64),
    )


def _cluster(**free):
    """A cluster where each machine's free-node count is controlled by
    pre-occupying the rest of its nodes."""
    totals = {"Quartz": 16, "Ruby": 16, "Lassen": 16, "Corona": 16}
    cluster = ClusterState(totals)
    for name, want_free in free.items():
        used = totals[name] - want_free
        if used:
            cluster.machines[name].start(used, end_time=1e9)
    return cluster


class TestRiskAwareStrategy:
    def test_registered_with_alias(self):
        assert STRATEGIES["risk-aware"] is RiskAwareStrategy
        assert STRATEGIES["risk_aware"] is RiskAwareStrategy
        assert isinstance(strategy_by_name("risk-aware"),
                          RiskAwareStrategy)

    def test_confident_collapses_to_model_based(self):
        """Zero spread -> only the base margin; well-separated RPVs
        make the choice identical to ModelBasedStrategy's."""
        rpv = [0.2, 0.6, 1.0, 1.4]
        job = _job(0, rpv, std=[0.0, 0.0, 0.0, 0.0])
        cluster = _cluster()
        risk = RiskAwareStrategy()
        model = ModelBasedStrategy()
        assert risk.assign(job, 0, cluster) == \
            model.assign(_job(0, rpv), 0, cluster) == "Quartz"

    def test_high_variance_falls_back_to_load_balancing(self):
        """Near-tied RPVs + large spread: the margin swallows the gap
        and the freest (by fraction) machine wins instead of the
        nominal fastest."""
        job = _job(1, [0.50, 0.55, 2.0, 2.0], std=[0.3] * 4)
        cluster = _cluster(Quartz=2, Ruby=14)
        assert RiskAwareStrategy().assign(job, 0, cluster) == "Ruby"
        # Same predictions, no spread: margin is just base_margin
        # (0.02 < the 0.05 gap), so the nominal fastest wins.
        confident = _job(2, [0.50, 0.55, 2.0, 2.0], std=[0.0] * 4)
        assert RiskAwareStrategy().assign(confident, 0, cluster) == "Quartz"

    def test_load_balances_by_fraction_not_count(self):
        """The tie-break uses free-node *fraction*, so a small machine
        that is mostly idle beats a big machine with more absolute free
        nodes but higher utilization."""
        totals = {"Quartz": 100, "Ruby": 10}
        cluster = ClusterState(totals)
        cluster.machines["Quartz"].start(60, end_time=1e9)  # 40 free, 40%
        cluster.machines["Ruby"].start(1, end_time=1e9)     # 9 free, 90%
        job = _job(3, [1.0, 1.0, 1.0, 1.0], std=[1.0] * 4)
        strategy = RiskAwareStrategy(
            systems=("Quartz", "Ruby"),
        )
        assert strategy.assign(job, 0, cluster) == "Ruby"

    def test_margin_scales_with_mean_std(self):
        strategy = RiskAwareStrategy(base_margin=0.02, risk_scale=2.0)
        job = _job(4, [1.0] * 4, std=[0.1, 0.2, 0.3, 0.4])
        margin = strategy._margin(job, ["Quartz", "Ruby"])
        assert margin == pytest.approx(0.02 + 2.0 * 0.15)

    def test_jobs_without_std_use_base_margin(self):
        strategy = RiskAwareStrategy(base_margin=0.07)
        job = _job(5, [1.0] * 4)
        assert job.rpv_std is None
        assert strategy._margin(job, ["Quartz"]) == 0.07
        # And assignment still works end to end.
        assert strategy.assign(job, 0, _cluster()) in SYSTEMS


    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="base_margin"):
            RiskAwareStrategy(base_margin=-0.1)
        with pytest.raises(ValueError, match="risk_scale"):
            RiskAwareStrategy(risk_scale=-1.0)
