"""The spine modules must not import higher layers (no import cycles).

Mirrors the CI guard (tools/check_layering.py) inside tier-1, so a
layering regression fails the ordinary test run too.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TOOL = REPO / "tools" / "check_layering.py"


def _load_tool():
    spec = importlib.util.spec_from_file_location("check_layering", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_spine_modules_import_no_higher_layers():
    assert _load_tool().violations() == []


def test_tool_runs_clean_as_a_script():
    proc = subprocess.run(
        [sys.executable, str(TOOL)], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr
    assert "layering OK" in proc.stdout


def test_tool_detects_a_planted_violation(tmp_path, monkeypatch):
    tool = _load_tool()
    src = tmp_path / "src"
    (src / "repro").mkdir(parents=True)
    (src / "repro" / "errors.py").write_text(
        "from repro.sched import Scheduler\n"
    )
    (src / "repro" / "registry.py").write_text(
        "from repro.errors import UnknownNameError\n"
    )
    (src / "repro" / "config.py").write_text(
        "import repro.registry\nimport repro.ml\n"
    )
    monkeypatch.setattr(tool, "SRC", src)
    problems = tool.violations()
    assert len(problems) == 2
    assert any("repro.errors" in p and "repro.sched" in p for p in problems)
    assert any("repro.config" in p and "repro.ml" in p for p in problems)
