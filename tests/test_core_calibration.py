"""Tests for noise-floor and orderability diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.calibration import (
    NoiseFloor,
    estimate_noise_floor,
    gap_statistics,
)


class TestNoiseFloor:
    @pytest.fixture(scope="class")
    def floor(self) -> NoiseFloor:
        return estimate_noise_floor(inputs_per_app=2, seed=0,
                                    apps=["CoMD", "CANDLE", "XSBench"])

    def test_group_count(self, floor):
        assert floor.groups == 3 * 2 * 3  # apps x inputs x scales

    def test_ceiling_in_unit_interval(self, floor):
        assert 0.0 <= floor.sos_ceiling <= 1.0

    def test_floor_positive_with_noise(self, floor):
        assert floor.rpv_mae_floor > 0.0

    def test_ceiling_reasonably_high(self, floor):
        # Calibration target: orderings mostly stable across trials
        # (the paper's SOS of 0.86 implies its measurements were).
        assert floor.sos_ceiling >= 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_noise_floor(inputs_per_app=0)


class TestGapStatistics:
    def test_known_gaps(self):
        Y = np.array([[1.0, 0.5, 0.25, 0.19]])
        stats = gap_statistics(Y)
        assert stats["median"] == pytest.approx(0.06)
        assert stats["near_tied_fraction"] == 0.0

    def test_near_tied_detection(self):
        Y = np.array([[1.0, 0.99, 0.5, 0.2],
                      [1.0, 0.7, 0.4, 0.1]])
        stats = gap_statistics(Y)
        assert stats["near_tied_fraction"] == pytest.approx(0.5)

    def test_quartiles_ordered(self):
        rng = np.random.default_rng(0)
        Y = rng.uniform(0.1, 1.0, size=(100, 4))
        stats = gap_statistics(Y)
        assert stats["p25"] <= stats["median"] <= stats["p75"]

    def test_validation(self):
        with pytest.raises(ValueError):
            gap_statistics(np.ones((3,)))
        with pytest.raises(ValueError):
            gap_statistics(np.ones((3, 1)))

    def test_on_real_dataset(self, small_dataset):
        stats = gap_statistics(small_dataset.Y())
        assert 0.0 <= stats["near_tied_fraction"] <= 1.0
        assert stats["median"] > 0.0
