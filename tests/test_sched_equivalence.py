"""Bit-identical equivalence: fast Scheduler vs frozen ReferenceScheduler.

The fast engine in :mod:`repro.sched.simulator` (incremental queue,
indexed machine state, strategy memoization) must produce *exactly* the
same :class:`~repro.sched.simulator.ScheduleResult` as the frozen seed
implementation in :mod:`repro.sched._reference` — same placements, same
float start/end times bit for bit, same backfill count, same trace and
fault statistics.  These tests sweep the configuration space: every
strategy, every R1 x R2 queue-policy pairing, batch and Poisson
arrivals, conservative and EASY backfilling, inflated walltime
estimates, small backfill depth (stressing stale-entry handling), and
the failure-aware loop under every fault profile with and without
checkpointing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.machines import SYSTEM_ORDER
from repro.resilience import FAULT_PROFILES, FaultInjector, RetryPolicy
from repro.sched import ClusterState, Job, Scheduler, strategy_by_name
from repro.sched._reference import ReferenceScheduler
from repro.sched.policies import policy_by_name

STRATEGIES = ("round_robin", "random", "user_rr", "model", "oracle",
              "uncertainty")
POLICIES = ("fcfs", "sjf", "ljf", "widest", "smallest")

APPS = ("CoMD", "miniFE", "LULESH", "AMG")


def make_jobs(seed: int, n: int, arrivals: str = "poisson") -> list[Job]:
    """Random workload exercising contention, GPU mix, and varied RPVs."""
    rng = np.random.default_rng(seed)
    jobs = []
    t = 0.0
    for i in range(n):
        if arrivals == "poisson":
            t += float(rng.exponential(8.0))
        submit = 0.0 if arrivals == "batch" else t
        rpv = rng.uniform(0.5, 3.0, size=len(SYSTEM_ORDER))
        base = float(rng.uniform(5.0, 120.0))
        runtimes = {s: base * float(r) for s, r in zip(SYSTEM_ORDER, rpv)}
        jobs.append(Job(
            job_id=i,
            app=APPS[int(rng.integers(len(APPS)))],
            uses_gpu=bool(rng.integers(2)),
            nodes_required=int(rng.integers(1, 4)),
            runtimes=runtimes,
            submit_time=submit,
            predicted_rpv=rpv * rng.uniform(0.9, 1.1, size=rpv.shape),
            true_rpv=rpv,
        ))
    return jobs


def small_cluster() -> ClusterState:
    # Few nodes per machine so queues form and backfilling matters.
    return ClusterState({s: 3 for s in SYSTEM_ORDER})


def assert_identical(a, b) -> None:
    """Field-by-field bit-identity of two ScheduleResults."""
    assert np.array_equal(a.job_ids, b.job_ids)
    assert a.machines == b.machines
    assert np.array_equal(a.submit_times, b.submit_times)
    assert np.array_equal(a.start_times, b.start_times)
    assert np.array_equal(a.end_times, b.end_times)
    assert np.array_equal(a.runtimes, b.runtimes)
    assert a.strategy_name == b.strategy_name
    assert a.backfilled == b.backfilled
    assert a.extra == b.extra


def run_both(jobs, **kwargs):
    """Run fast and reference engines with *independent* strategy
    instances (strategies are stateful) but identical configuration."""
    strat = kwargs.pop("strategy")
    ref_kwargs = dict(kwargs)
    # Clusters and fault injectors are mutable simulation state — each
    # engine needs its own copy.
    if kwargs.get("cluster") is not None:
        src = kwargs["cluster"]
        ref_kwargs["cluster"] = ClusterState(
            {n: src[n].total_nodes for n in src.names})
    if kwargs.get("faults") is not None:
        inj = kwargs["faults"]
        ref_kwargs["faults"] = FaultInjector(inj.profile, seed=inj.seed)
    fast = Scheduler(strategy_by_name(strat, seed=5), **kwargs)
    ref = ReferenceScheduler(strategy_by_name(strat, seed=5), **ref_kwargs)
    return fast.run(jobs), ref.run(jobs)


class TestReliableEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("arrivals", ("batch", "poisson"))
    def test_every_strategy(self, strategy, arrivals):
        jobs = make_jobs(seed=11, n=120, arrivals=arrivals)
        got, want = run_both(jobs, strategy=strategy,
                             cluster=small_cluster(), trace=True)
        assert_identical(got, want)

    @pytest.mark.parametrize("r1", POLICIES)
    @pytest.mark.parametrize("r2", POLICIES)
    def test_every_policy_pair(self, r1, r2):
        jobs = make_jobs(seed=23, n=80)
        got, want = run_both(
            jobs, strategy="model", cluster=small_cluster(),
            queue_policy=policy_by_name(r1),
            backfill_policy=policy_by_name(r2), trace=True)
        assert_identical(got, want)

    @pytest.mark.parametrize("strategy", ("model", "random", "user_rr"))
    def test_conservative_backfilling(self, strategy):
        jobs = make_jobs(seed=31, n=100)
        got, want = run_both(jobs, strategy=strategy,
                             cluster=small_cluster(), conservative=True)
        assert_identical(got, want)

    def test_walltime_factor(self):
        jobs = make_jobs(seed=37, n=100)
        got, want = run_both(jobs, strategy="model",
                             cluster=small_cluster(), walltime_factor=3.0)
        assert_identical(got, want)

    def test_backfill_disabled(self):
        jobs = make_jobs(seed=41, n=100)
        got, want = run_both(jobs, strategy="model",
                             cluster=small_cluster(), backfill=False)
        assert_identical(got, want)

    def test_tiny_backfill_depth(self):
        # Depth 2 stresses the stale-entry window padding: scheduled
        # entries linger in the lazy queue and must not consume slots.
        jobs = make_jobs(seed=43, n=120)
        got, want = run_both(jobs, strategy="model",
                             cluster=small_cluster(), backfill_depth=2,
                             trace=True)
        assert_identical(got, want)

    def test_default_cluster(self):
        jobs = make_jobs(seed=47, n=150)
        got, want = run_both(jobs, strategy="uncertainty", trace=True)
        assert_identical(got, want)

    def test_scheduler_instance_reuse(self):
        # Caches (strategy memos, sticky choices) must not leak across
        # runs of the same Scheduler/strategy instances.  The seed
        # engine never evicted them (the unbounded-cache bug), so the
        # reference comparison for run B clears the reference
        # strategy's cache by hand — the RNG trajectories through run A
        # are identical (same assign call sequence), making run B
        # bit-comparable.
        jobs_a = make_jobs(seed=53, n=60)
        jobs_b = make_jobs(seed=59, n=60)
        fast_strat = strategy_by_name("random", seed=5)
        ref_strat = strategy_by_name("random", seed=5)
        fast = Scheduler(fast_strat, cluster=small_cluster())
        ref = ReferenceScheduler(ref_strat, cluster=small_cluster())
        assert_identical(fast.run(jobs_a), ref.run(jobs_a))
        assert fast_strat._cache == {}  # fast engine drained it itself
        ref_strat._cache.clear()
        assert_identical(fast.run(jobs_b), ref.run(jobs_b))

    def test_strategy_caches_drain(self):
        # After a fault-free run every job started exactly once, so all
        # per-job cache entries must have been released.
        jobs = make_jobs(seed=61, n=80)
        for name in ("random", "user_rr", "model"):
            strat = strategy_by_name(name, seed=5)
            Scheduler(strat, cluster=small_cluster()).run(jobs)
            cache = getattr(strat, "_cache", None)
            if cache is None:
                cache = strat._pref_cache
            assert cache == {}


class TestFaultyEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_every_strategy_heavy(self, strategy):
        jobs = make_jobs(seed=67, n=80)
        got, want = run_both(
            jobs, strategy=strategy, cluster=small_cluster(),
            faults=FaultInjector(FAULT_PROFILES["heavy"], seed=3),
            trace=True)
        assert_identical(got, want)

    @pytest.mark.parametrize("profile", ("heavy", "light", "none"))
    @pytest.mark.parametrize("checkpoint", (False, True))
    def test_profiles_and_checkpointing(self, profile, checkpoint):
        jobs = make_jobs(seed=71, n=80)
        got, want = run_both(
            jobs, strategy="model", cluster=small_cluster(),
            faults=FaultInjector(FAULT_PROFILES[profile], seed=9),
            retry=RetryPolicy(max_attempts=4, checkpoint=checkpoint),
            trace=True)
        assert_identical(got, want)

    @pytest.mark.parametrize("r1,r2", [("sjf", "fcfs"), ("ljf", "widest"),
                                       ("smallest", "sjf")])
    def test_policies_under_faults(self, r1, r2):
        jobs = make_jobs(seed=73, n=80)
        got, want = run_both(
            jobs, strategy="random", cluster=small_cluster(),
            queue_policy=policy_by_name(r1),
            backfill_policy=policy_by_name(r2),
            faults=FaultInjector(FAULT_PROFILES["light"], seed=13),
            trace=True)
        assert_identical(got, want)

    def test_conservative_under_faults(self):
        jobs = make_jobs(seed=79, n=80)
        got, want = run_both(
            jobs, strategy="user_rr", cluster=small_cluster(),
            conservative=True,
            faults=FaultInjector(FAULT_PROFILES["heavy"], seed=17))
        assert_identical(got, want)
