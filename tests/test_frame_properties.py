"""Additional property-based tests for the frame substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import Frame, concat

keys = st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1,
                max_size=30)


@given(left_keys=keys, right_keys=st.lists(
    st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=4,
    unique=True,
))
@settings(max_examples=50, deadline=None)
def test_property_inner_join_row_bounds(left_keys, right_keys):
    """Inner-join output has between 0 and len(left) rows when the right
    key column is unique."""
    left = Frame({"k": left_keys,
                  "x": np.arange(len(left_keys), dtype=np.float64)})
    right = Frame({"k": right_keys,
                   "y": np.arange(len(right_keys), dtype=np.float64)})
    joined = left.join(right, on="k", how="inner")
    assert 0 <= joined.num_rows <= left.num_rows
    matched = set(left_keys) & set(right_keys)
    expected = sum(1 for k in left_keys if k in matched)
    assert joined.num_rows == expected


@given(left_keys=keys)
@settings(max_examples=50, deadline=None)
def test_property_left_join_preserves_rows(left_keys):
    left = Frame({"k": left_keys,
                  "x": np.arange(len(left_keys), dtype=np.float64)})
    right = Frame({"k": ["a"], "y": [1.0]})
    joined = left.join(right, on="k", how="left")
    assert joined.num_rows == left.num_rows


@given(
    chunks=st.lists(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=10),
        min_size=1, max_size=5,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_concat_lengths_add(chunks):
    frames = [Frame({"v": np.array(c, dtype=np.float64)}) for c in chunks]
    merged = concat(frames)
    assert merged.num_rows == sum(len(c) for c in chunks)
    np.testing.assert_array_equal(
        merged["v"], np.concatenate([np.array(c) for c in chunks])
    )


@given(values=st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=25),
       group_count=st.integers(1, 3))
@settings(max_examples=50, deadline=None)
def test_property_groupby_sum_preserves_total(values, group_count):
    groups = [f"g{i % group_count}" for i in range(len(values))]
    f = Frame({"g": groups, "v": np.array(values, dtype=np.float64)})
    agg = f.groupby("g", {"v": "sum"})
    assert float(np.sum(agg["v"])) == pytest.approx(float(np.sum(values)),
                                                    rel=1e-9, abs=1e-9)


@given(values=st.lists(
    st.tuples(st.sampled_from(["r1", "r2"]), st.sampled_from(["c1", "c2"])),
    min_size=1, max_size=4, unique=True,
))
@settings(max_examples=50, deadline=None)
def test_property_pivot_preserves_values(values):
    rows = [r for r, _ in values]
    cols = [c for _, c in values]
    vals = np.arange(len(values), dtype=np.float64)
    f = Frame({"r": rows, "c": cols, "v": vals})
    wide = f.pivot("r", "c", "v")
    for (r, c), v in zip(values, vals):
        i = list(wide["r"]).index(r)
        assert wide[f"v_{c}"][i] == v


@given(n=st.integers(1, 40), seed=st.integers(0, 500))
@settings(max_examples=40, deadline=None)
def test_property_take_filter_consistency(n, seed):
    rng = np.random.default_rng(seed)
    f = Frame({"v": rng.normal(size=n)})
    mask = f["v"] > 0
    filtered = f.filter(mask)
    taken = f.take(np.flatnonzero(mask))
    assert filtered == taken
