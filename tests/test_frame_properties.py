"""Property-based tests for the frame substrate and feature normalizer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.features import FeatureNormalizer
from repro.dataset.schema import MAGNITUDE_FEATURES
from repro.frame import Frame, concat

keys = st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1,
                max_size=30)


@given(left_keys=keys, right_keys=st.lists(
    st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=4,
    unique=True,
))
@settings(max_examples=50, deadline=None)
def test_property_inner_join_row_bounds(left_keys, right_keys):
    """Inner-join output has between 0 and len(left) rows when the right
    key column is unique."""
    left = Frame({"k": left_keys,
                  "x": np.arange(len(left_keys), dtype=np.float64)})
    right = Frame({"k": right_keys,
                   "y": np.arange(len(right_keys), dtype=np.float64)})
    joined = left.join(right, on="k", how="inner")
    assert 0 <= joined.num_rows <= left.num_rows
    matched = set(left_keys) & set(right_keys)
    expected = sum(1 for k in left_keys if k in matched)
    assert joined.num_rows == expected


@given(left_keys=keys)
@settings(max_examples=50, deadline=None)
def test_property_left_join_preserves_rows(left_keys):
    left = Frame({"k": left_keys,
                  "x": np.arange(len(left_keys), dtype=np.float64)})
    right = Frame({"k": ["a"], "y": [1.0]})
    joined = left.join(right, on="k", how="left")
    assert joined.num_rows == left.num_rows


@given(
    chunks=st.lists(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=10),
        min_size=1, max_size=5,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_concat_lengths_add(chunks):
    frames = [Frame({"v": np.array(c, dtype=np.float64)}) for c in chunks]
    merged = concat(frames)
    assert merged.num_rows == sum(len(c) for c in chunks)
    np.testing.assert_array_equal(
        merged["v"], np.concatenate([np.array(c) for c in chunks])
    )


@given(values=st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=25),
       group_count=st.integers(1, 3))
@settings(max_examples=50, deadline=None)
def test_property_groupby_sum_preserves_total(values, group_count):
    groups = [f"g{i % group_count}" for i in range(len(values))]
    f = Frame({"g": groups, "v": np.array(values, dtype=np.float64)})
    agg = f.groupby("g", {"v": "sum"})
    assert float(np.sum(agg["v"])) == pytest.approx(float(np.sum(values)),
                                                    rel=1e-9, abs=1e-9)


@given(values=st.lists(
    st.tuples(st.sampled_from(["r1", "r2"]), st.sampled_from(["c1", "c2"])),
    min_size=1, max_size=4, unique=True,
))
@settings(max_examples=50, deadline=None)
def test_property_pivot_preserves_values(values):
    rows = [r for r, _ in values]
    cols = [c for _, c in values]
    vals = np.arange(len(values), dtype=np.float64)
    f = Frame({"r": rows, "c": cols, "v": vals})
    wide = f.pivot("r", "c", "v")
    for (r, c), v in zip(values, vals):
        i = list(wide["r"]).index(r)
        assert wide[f"v_{c}"][i] == v


@given(n=st.integers(1, 40), seed=st.integers(0, 500))
@settings(max_examples=40, deadline=None)
def test_property_take_filter_consistency(n, seed):
    rng = np.random.default_rng(seed)
    f = Frame({"v": rng.normal(size=n)})
    mask = f["v"] > 0
    filtered = f.filter(mask)
    taken = f.take(np.flatnonzero(mask))
    assert filtered == taken


# ---------------------------------------------------------------------------
# Frame subset / column ops
# ---------------------------------------------------------------------------
@given(n=st.integers(1, 30), seed=st.integers(0, 500))
@settings(max_examples=40, deadline=None)
def test_property_with_columns_equals_chained_with_column(n, seed):
    """The batched column attach is exactly the chained one, including
    replace-in-place ordering."""
    rng = np.random.default_rng(seed)
    f = Frame({"a": rng.normal(size=n), "b": rng.normal(size=n)})
    new = {"b": rng.normal(size=n), "c": rng.normal(size=n),
           "d": rng.normal(size=n)}
    chained = f
    for name, values in new.items():
        chained = chained.with_column(name, values)
    batched = f.with_columns(new)
    assert batched == chained
    assert batched.columns == ["a", "b", "c", "d"]


@given(n=st.integers(1, 30), seed=st.integers(0, 500))
@settings(max_examples=40, deadline=None)
def test_property_with_columns_leaves_original_untouched(n, seed):
    rng = np.random.default_rng(seed)
    f = Frame({"a": rng.normal(size=n)})
    before = f["a"].copy()
    f.with_columns({"a": rng.normal(size=n), "z": rng.normal(size=n)})
    np.testing.assert_array_equal(f["a"], before)
    assert "z" not in f


@given(n=st.integers(1, 25), seed=st.integers(0, 500),
       picks=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1,
                      max_size=3, unique=True))
@settings(max_examples=40, deadline=None)
def test_property_select_preserves_data_and_order(n, seed, picks):
    rng = np.random.default_rng(seed)
    f = Frame({name: rng.normal(size=n) for name in ["a", "b", "c"]})
    sub = f.select(picks)
    assert sub.columns == picks
    for name in picks:
        np.testing.assert_array_equal(sub[name], f[name])


@given(n=st.integers(1, 25), seed=st.integers(0, 500))
@settings(max_examples=40, deadline=None)
def test_property_take_then_take_composes(n, seed):
    rng = np.random.default_rng(seed)
    f = Frame({"v": rng.normal(size=n), "s": [f"r{i}" for i in range(n)]})
    first = rng.integers(0, n, size=n)
    second = rng.integers(0, n, size=n)
    assert f.take(first).take(second) == f.take(first[second])


# ---------------------------------------------------------------------------
# FeatureNormalizer
# ---------------------------------------------------------------------------
magnitude_rows = st.lists(
    st.floats(0.0, 1e12, allow_nan=False, allow_infinity=False),
    min_size=2, max_size=40,
)


def _magnitude_frame(values: list[float], seed: int) -> Frame:
    """A frame with every magnitude column, each a distinct permutation
    of the generated values so columns are not trivially identical."""
    rng = np.random.default_rng(seed)
    base = np.asarray(values, dtype=np.float64)
    return Frame({
        feature: rng.permutation(base) for feature in MAGNITUDE_FEATURES
    })


@given(values=magnitude_rows, seed=st.integers(0, 100))
@settings(max_examples=50, deadline=None)
def test_property_normalizer_no_nan_inf_leakage(values, seed):
    frame = _magnitude_frame(values, seed)
    out = FeatureNormalizer().fit(frame).transform(frame)
    for feature in MAGNITUDE_FEATURES:
        assert np.isfinite(out[feature]).all()


@given(values=magnitude_rows, seed=st.integers(0, 100))
@settings(max_examples=50, deadline=None)
def test_property_normalizer_fit_invariant_to_row_order(values, seed):
    frame = _magnitude_frame(values, seed)
    rng = np.random.default_rng(seed + 1)
    shuffled = frame.take(rng.permutation(frame.num_rows))
    a = FeatureNormalizer().fit(frame)
    b = FeatureNormalizer().fit(shuffled)
    for feature in MAGNITUDE_FEATURES:
        assert a.means_[feature] == pytest.approx(b.means_[feature],
                                                  rel=1e-12, abs=1e-12)
        assert a.stds_[feature] == pytest.approx(b.stds_[feature],
                                                 rel=1e-12, abs=1e-12)


@given(values=magnitude_rows, seed=st.integers(0, 100))
@settings(max_examples=50, deadline=None)
def test_property_normalizer_transform_commutes_with_permutation(values, seed):
    frame = _magnitude_frame(values, seed)
    norm = FeatureNormalizer().fit(frame)
    order = np.random.default_rng(seed + 2).permutation(frame.num_rows)
    transformed_then_permuted = norm.transform(frame).take(order)
    permuted_then_transformed = norm.transform(frame.take(order))
    assert transformed_then_permuted == permuted_then_transformed


@given(values=magnitude_rows, seed=st.integers(0, 100))
@settings(max_examples=50, deadline=None)
def test_property_normalizer_round_trip_recovers_values(values, seed):
    """Inverting the z-score and the log1p recovers the raw magnitudes."""
    frame = _magnitude_frame(values, seed)
    norm = FeatureNormalizer().fit(frame)
    out = norm.transform(frame)
    for feature in MAGNITUDE_FEATURES:
        raw = np.asarray(frame[feature], dtype=np.float64)
        z = np.asarray(out[feature], dtype=np.float64)
        recovered = np.expm1(z * norm.stds_[feature] + norm.means_[feature])
        np.testing.assert_allclose(recovered, raw, rtol=1e-6, atol=1e-6)


@given(values=magnitude_rows, seed=st.integers(0, 100))
@settings(max_examples=50, deadline=None)
def test_property_normalizer_serialization_round_trip(values, seed):
    frame = _magnitude_frame(values, seed)
    norm = FeatureNormalizer().fit(frame)
    back = FeatureNormalizer.from_dict(norm.to_dict())
    assert norm.transform(frame) == back.transform(frame)
