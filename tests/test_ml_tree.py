"""Unit and property tests for the histogram tree engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.tree import Binner, TreeParams, grow_tree


class TestBinner:
    def test_bins_in_range(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 3))
        b = Binner(n_bins=16)
        codes = b.fit_transform(X)
        assert codes.dtype == np.uint8
        assert codes.max() < 16

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Binner().transform(np.zeros((2, 2)))

    def test_out_of_range_values_clamp(self):
        X = np.linspace(0, 1, 100)[:, None]
        b = Binner(n_bins=8).fit(X)
        lo = b.transform(np.array([[-100.0]]))
        hi = b.transform(np.array([[100.0]]))
        assert lo[0, 0] == 0
        assert hi[0, 0] == b.transform(np.array([[1.0]]))[0, 0]

    def test_constant_feature(self):
        X = np.ones((50, 1))
        codes = Binner(n_bins=8).fit_transform(X)
        assert (codes == codes[0, 0]).all()

    def test_bad_n_bins(self):
        with pytest.raises(ValueError):
            Binner(n_bins=1)
        with pytest.raises(ValueError):
            Binner(n_bins=1000)

    def test_shape_mismatch_raises(self):
        b = Binner().fit(np.zeros((10, 3)))
        with pytest.raises(ValueError):
            b.transform(np.zeros((5, 2)))

    def test_binning_preserves_order(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=200)
        b = Binner(n_bins=32).fit(x[:, None])
        codes = b.transform(np.sort(x)[:, None])[:, 0]
        assert (np.diff(codes.astype(int)) >= 0).all()


class TestGrowTree:
    def _simple_data(self, n=400, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.uniform(0, 1, size=(n, 2))
        y = np.where(X[:, 0] > 0.5, 2.0, -1.0)
        return X, y

    def test_learns_step_function(self):
        X, y = self._simple_data()
        b = Binner(32)
        Xb = b.fit_transform(X)
        tree = grow_tree(Xb, -y, np.ones_like(y), TreeParams(max_depth=2),
                         n_bins=32)
        pred = tree.predict_binned(Xb)[:, 0]
        assert np.abs(pred - y).mean() < 0.05

    def test_max_depth_zero_gives_mean_leaf(self):
        X, y = self._simple_data()
        Xb = Binner(16).fit_transform(X)
        tree = grow_tree(Xb, -y, np.ones_like(y),
                         TreeParams(max_depth=0, reg_lambda=0.0), n_bins=16)
        assert tree.n_nodes == 1
        assert tree.predict_binned(Xb)[0, 0] == pytest.approx(y.mean())

    def test_depth_bound_respected(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(500, 4))
        y = rng.normal(size=500)
        Xb = Binner(16).fit_transform(X)
        tree = grow_tree(Xb, -y, np.ones_like(y), TreeParams(max_depth=3),
                         n_bins=16)
        assert tree.max_depth_reached <= 3

    def test_min_samples_leaf(self):
        X, y = self._simple_data(n=100)
        Xb = Binner(16).fit_transform(X)
        tree = grow_tree(Xb, -y, np.ones_like(y),
                         TreeParams(max_depth=10, min_samples_leaf=30),
                         n_bins=16)
        for node in tree._nodes:
            if node.feature < 0:
                assert node.n_samples >= 30 or node.n_samples == 0

    def test_multi_output_leaves(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(size=(300, 3))
        Y = np.column_stack([X[:, 0] > 0.5, X[:, 0] <= 0.5]).astype(float)
        Xb = Binner(16).fit_transform(X)
        tree = grow_tree(Xb, -Y, np.ones_like(Y), TreeParams(max_depth=2),
                         n_bins=16)
        pred = tree.predict_binned(Xb)
        assert pred.shape == (300, 2)
        assert np.abs(pred - Y).mean() < 0.1

    def test_pure_target_makes_no_split(self):
        X = np.random.default_rng(0).uniform(size=(100, 2))
        y = np.full(100, 3.0)
        Xb = Binner(16).fit_transform(X)
        tree = grow_tree(Xb, -y, np.ones_like(y), TreeParams(max_depth=5),
                         n_bins=16)
        assert tree.n_nodes == 1

    def test_gamma_blocks_weak_splits(self):
        X, y = self._simple_data()
        Xb = Binner(16).fit_transform(X)
        strong = grow_tree(Xb, -y, np.ones_like(y),
                           TreeParams(max_depth=3, gamma=0.0), n_bins=16)
        blocked = grow_tree(Xb, -y, np.ones_like(y),
                            TreeParams(max_depth=3, gamma=1e12), n_bins=16)
        assert strong.n_nodes > 1
        assert blocked.n_nodes == 1

    def test_feature_subset_restricts_splits(self):
        X, y = self._simple_data()
        Xb = Binner(16).fit_transform(X)
        # Feature 0 carries the signal; restrict to feature 1 only.
        tree = grow_tree(Xb, -y, np.ones_like(y), TreeParams(max_depth=3),
                         n_bins=16, feature_subset=np.array([1]))
        gains = tree.feature_gains()
        assert gains[0] == 0.0

    def test_row_subset(self):
        X, y = self._simple_data()
        Xb = Binner(16).fit_transform(X)
        rows = np.arange(50)
        tree = grow_tree(Xb, -y, np.ones_like(y), TreeParams(max_depth=2),
                         n_bins=16, rows=rows)
        assert tree._nodes[0].n_samples == 50

    def test_leaf_scale(self):
        X, y = self._simple_data()
        Xb = Binner(16).fit_transform(X)
        full = grow_tree(Xb, -y, np.ones_like(y), TreeParams(max_depth=2),
                         n_bins=16, leaf_scale=1.0)
        half = grow_tree(Xb, -y, np.ones_like(y), TreeParams(max_depth=2),
                         n_bins=16, leaf_scale=0.5)
        np.testing.assert_allclose(
            half.predict_binned(Xb), 0.5 * full.predict_binned(Xb)
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            grow_tree(np.zeros((10, 2), dtype=np.uint8), np.zeros(5),
                      np.ones(5), TreeParams(), n_bins=8)

    def test_gain_counts_match_split_counts(self):
        X, y = self._simple_data()
        Xb = Binner(16).fit_transform(X)
        tree = grow_tree(Xb, -y, np.ones_like(y), TreeParams(max_depth=4),
                         n_bins=16)
        n_splits = sum(1 for n in tree._nodes if n.feature >= 0)
        assert tree.feature_split_counts().sum() == n_splits
        assert tree.n_leaves == tree.n_nodes - n_splits


class TestTreeParamsValidation:
    def test_negative_depth(self):
        with pytest.raises(ValueError):
            TreeParams(max_depth=-1)

    def test_negative_lambda(self):
        with pytest.raises(ValueError):
            TreeParams(reg_lambda=-0.1)


@given(
    n=st.integers(20, 200),
    seed=st.integers(0, 10_000),
    depth=st.integers(0, 6),
)
@settings(max_examples=30, deadline=None)
def test_property_prediction_bounded_by_target_range(n, seed, depth):
    """A variance-reduction tree's leaf means stay within [min(y), max(y)]."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = rng.normal(size=n)
    Xb = Binner(16).fit_transform(X)
    tree = grow_tree(Xb, -y, np.ones_like(y),
                     TreeParams(max_depth=depth, reg_lambda=0.0), n_bins=16)
    pred = tree.predict_binned(Xb)[:, 0]
    assert pred.min() >= y.min() - 1e-9
    assert pred.max() <= y.max() + 1e-9


@given(n=st.integers(10, 100), seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_property_root_value_is_shrunk_mean(n, seed):
    """With lambda=0 the root leaf equals the target mean."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 2))
    y = rng.normal(size=n)
    Xb = Binner(8).fit_transform(X)
    tree = grow_tree(Xb, -y, np.ones_like(y),
                     TreeParams(max_depth=0, reg_lambda=0.0), n_bins=8)
    assert tree._nodes[0].value[0] == pytest.approx(y.mean())


@given(seed=st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_property_deeper_trees_fit_no_worse_on_train(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(150, 3))
    y = np.sin(X[:, 0]) + rng.normal(0, 0.1, 150)
    Xb = Binner(16).fit_transform(X)
    errs = []
    for depth in (0, 2, 4):
        tree = grow_tree(Xb, -y, np.ones_like(y),
                         TreeParams(max_depth=depth, reg_lambda=0.0),
                         n_bins=16)
        errs.append(((tree.predict_binned(Xb)[:, 0] - y) ** 2).mean())
    assert errs[0] >= errs[1] - 1e-9
    assert errs[1] >= errs[2] - 1e-9
