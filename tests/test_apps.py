"""Tests for the Table II application catalog and input generation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    APPLICATIONS,
    CPU_ONLY_APPS,
    GPU_APPS,
    ML_PYTHON_APPS,
    AppSpec,
    InputConfig,
    InstructionMix,
    KernelSpec,
    generate_inputs,
    get_app,
)

TABLE_II_NAMES = {
    "AMG", "CANDLE", "CoMD", "CosmoFlow", "CRADL", "Ember", "ExaMiniMD",
    "Laghos", "miniFE", "miniGAN", "miniQMC", "miniTri", "miniVite",
    "DeepCam", "Nekbone", "PICSARLite", "SW4lite", "SWFFT",
    "Thornado-mini", "XSBench",
}


class TestCatalog:
    def test_twenty_applications(self):
        assert len(APPLICATIONS) == 20
        assert set(APPLICATIONS) == TABLE_II_NAMES

    def test_eleven_gpu_apps(self):
        # "There are twenty applications in total, and eleven of them
        # have GPU support."
        assert len(GPU_APPS) == 11
        assert len(CPU_ONLY_APPS) == 9

    def test_ml_python_apps(self):
        # The apps Fig. 5 singles out as ML/Python-based.
        assert set(ML_PYTHON_APPS) == {
            "CANDLE", "CosmoFlow", "miniGAN", "DeepCam"
        }
        assert all(APPLICATIONS[a].gpu_support for a in ML_PYTHON_APPS)

    def test_kernel_weights_sum_to_one(self):
        for app in APPLICATIONS.values():
            assert sum(k.weight for k in app.kernels) == pytest.approx(1.0)

    def test_mix_fractions_valid(self):
        for app in APPLICATIONS.values():
            vals = app.mix.as_array()
            assert (vals >= 0).all()
            assert vals.sum() <= 1.0

    def test_gpu_apps_have_offload(self):
        for name in GPU_APPS:
            assert 0 < APPLICATIONS[name].gpu_offload <= 1
        for name in CPU_ONLY_APPS:
            assert APPLICATIONS[name].gpu_offload == 0

    def test_ml_apps_are_noisiest(self):
        ml_noise = min(APPLICATIONS[a].runtime_noise_sigma
                       for a in ML_PYTHON_APPS)
        other_noise = max(
            APPLICATIONS[a].runtime_noise_sigma
            for a in APPLICATIONS if a not in ML_PYTHON_APPS
        )
        assert ml_noise > other_noise

    def test_app_characters(self):
        # Spot checks that catalog parameters encode known app behavior.
        assert APPLICATIONS["XSBench"].irregularity > 2  # random lookups
        assert APPLICATIONS["Nekbone"].vectorizable > 0.8  # dense spectral
        assert APPLICATIONS["Ember"].comm_cost > 1.0  # comm benchmark
        assert APPLICATIONS["CANDLE"].mix.fp_sp > 0.3  # fp32 tensor code
        assert APPLICATIONS["SW4lite"].mix.fp_dp > 0.25  # fp64 stencil

    def test_get_app(self):
        assert get_app("xsbench").name == "XSBench"
        with pytest.raises(KeyError):
            get_app("linpack")

    def test_instruction_scaling(self):
        app = APPLICATIONS["SWFFT"]
        # superlinear work growth (n log n modeled as exponent > 1)
        assert app.instructions(2.0) > 2.0 * app.instructions(1.0)

    def test_working_set_scaling(self):
        app = APPLICATIONS["AMG"]
        assert app.working_set(4.0) == pytest.approx(
            4.0 * app.working_set(1.0)
        )


class TestSpecValidation:
    def _mix(self):
        return InstructionMix(0.1, 0.3, 0.1, 0.1, 0.1, 0.1)

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            InstructionMix(-0.1, 0.3, 0.1, 0.1, 0.1, 0.1)

    def test_oversum_rejected(self):
        with pytest.raises(ValueError):
            InstructionMix(0.5, 0.5, 0.5, 0.1, 0.1, 0.1)

    def test_other_fraction(self):
        assert self._mix().other == pytest.approx(0.2)

    def test_perturbed_keeps_validity(self):
        m = self._mix().perturbed(np.array([3.0, 3.0, 3.0, 3.0, 3.0, 3.0]))
        assert m.as_array().sum() <= 0.97 + 1e-9

    def test_kernel_weight_bounds(self):
        with pytest.raises(ValueError):
            KernelSpec("k", 0.0)
        with pytest.raises(ValueError):
            KernelSpec("k", 1.5)

    def test_app_kernel_sum_enforced(self):
        with pytest.raises(ValueError, match="sum to 1"):
            AppSpec(
                name="bad", description="", gpu_support=False,
                mix=self._mix(),
                kernels=(KernelSpec("a", 0.5),),
                base_instructions=1e9,
            )

    def test_cpu_app_cannot_offload(self):
        with pytest.raises(ValueError):
            AppSpec(
                name="bad", description="", gpu_support=False,
                mix=self._mix(),
                kernels=(KernelSpec("a", 1.0),),
                base_instructions=1e9, gpu_offload=0.5,
            )

    def test_gpu_app_requires_offload(self):
        with pytest.raises(ValueError):
            AppSpec(
                name="bad", description="", gpu_support=True,
                mix=self._mix(),
                kernels=(KernelSpec("a", 1.0),),
                base_instructions=1e9, gpu_offload=0.0,
            )


class TestInputGeneration:
    def test_deterministic(self):
        app = APPLICATIONS["CoMD"]
        a = generate_inputs(app, 10, seed=4)
        b = generate_inputs(app, 10, seed=4)
        assert [i.label for i in a] == [i.label for i in b]
        assert [i.size_scale for i in a] == [i.size_scale for i in b]

    def test_seed_changes_inputs(self):
        app = APPLICATIONS["CoMD"]
        a = generate_inputs(app, 10, seed=1)
        b = generate_inputs(app, 10, seed=2)
        assert [i.size_scale for i in a] != [i.size_scale for i in b]

    def test_sizes_within_range(self):
        app = APPLICATIONS["AMG"]
        inputs = generate_inputs(app, 50, seed=0, size_range=(0.5, 2.0))
        for inp in inputs:
            assert 0.5 <= inp.size_scale <= 2.0

    def test_labels_unique(self):
        app = APPLICATIONS["AMG"]
        labels = [i.label for i in generate_inputs(app, 30, seed=0)]
        assert len(set(labels)) == 30

    def test_labels_use_app_cli_idiom(self):
        xs = generate_inputs(APPLICATIONS["XSBench"], 1, seed=0)[0]
        assert xs.label.startswith("-l ")  # lookups knob
        sw = generate_inputs(APPLICATIONS["SW4lite"], 1, seed=0)[0]
        assert sw.label.startswith("-h ")  # grid spacing

    def test_label_value_scales_with_size(self):
        inputs = generate_inputs(APPLICATIONS["miniFE"], 20, seed=0)
        by_size = sorted(inputs, key=lambda i: i.size_scale)
        small = int(by_size[0].label.split()[1])
        large = int(by_size[-1].label.split()[1])
        assert large > small

    def test_inverse_knob_for_grid_spacing(self):
        inputs = generate_inputs(APPLICATIONS["SW4lite"], 20, seed=0)
        by_size = sorted(inputs, key=lambda i: i.size_scale)
        coarse = float(by_size[0].label.split()[1])
        fine = float(by_size[-1].label.split()[1])
        assert fine < coarse  # bigger problem = finer spacing

    def test_mix_jitter_perturbs(self):
        app = APPLICATIONS["AMG"]
        inputs = generate_inputs(app, 5, seed=0)
        branches = {i.mix.branch for i in inputs}
        assert len(branches) == 5  # all differ

    def test_apps_get_independent_streams(self):
        a = generate_inputs(APPLICATIONS["AMG"], 5, seed=0)
        b = generate_inputs(APPLICATIONS["CoMD"], 5, seed=0)
        assert [i.size_scale for i in a] != [i.size_scale for i in b]

    def test_validation(self):
        app = APPLICATIONS["AMG"]
        with pytest.raises(ValueError):
            generate_inputs(app, 0)
        with pytest.raises(ValueError):
            generate_inputs(app, 5, size_range=(2.0, 1.0))
        with pytest.raises(ValueError):
            InputConfig("AMG", "x", size_scale=0.0, mix=app.mix)


@given(count=st.integers(1, 20), seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_property_inputs_always_valid(count, seed):
    app = APPLICATIONS["miniFE"]
    for inp in generate_inputs(app, count, seed=seed):
        assert inp.size_scale > 0
        assert inp.mix.as_array().sum() <= 1.0
        assert 0.5 <= inp.io_scale <= 2.0
