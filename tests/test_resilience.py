"""Tests for the fault-injection & graceful-degradation layer.

Covers the three pillars of the resilience subsystem:

* fault modeling  — profiles, injector determinism, retry policy;
* failure-aware scheduling — kills, requeues, checkpointing, node
  availability transitions, and the bit-identity guarantee that a null
  injector changes nothing;
* degraded prediction — the model → imputed → mean-RPV → heuristic
  chain, plus the hard-failure contract of the underlying
  ``predict_record``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.features import REQUIRED_RECORD_FIELDS
from repro.resilience import (
    FAULT_PROFILES,
    CorruptingPredictor,
    FaultInjector,
    FaultProfile,
    ResilientPredictor,
    RetryPolicy,
)
from repro.sched import (
    ClusterState,
    Job,
    MachineState,
    RoundRobinStrategy,
    Scheduler,
    completed_fraction,
    degraded_prediction_fraction,
    goodput,
    resilience_summary,
    retry_count,
    wasted_node_seconds,
)

SYSTEMS = ("Quartz", "Ruby", "Lassen", "Corona")


def _job(job_id, runtime=10.0, nodes=1, submit=0.0):
    return Job(
        job_id=job_id, app="CoMD", uses_gpu=False, nodes_required=nodes,
        runtimes={s: runtime for s in SYSTEMS}, submit_time=submit,
    )


def _workload(n=30, seed=0):
    rng = np.random.default_rng(seed)
    return [
        _job(
            i,
            runtime=float(rng.uniform(20, 200)),
            nodes=int(rng.integers(1, 3)),
            submit=float(rng.uniform(0, 300)),
        )
        for i in range(n)
    ]


def _small_cluster(n=4):
    return ClusterState({s: n for s in SYSTEMS})


# ---------------------------------------------------------------------------
class TestFaultProfile:
    def test_presets(self):
        assert FaultProfile.preset("none").is_null
        light, heavy = FAULT_PROFILES["light"], FAULT_PROFILES["heavy"]
        assert not light.is_null and not heavy.is_null
        assert heavy.node_mtbf < light.node_mtbf
        assert heavy.crash_prob > light.crash_prob

    def test_unknown_preset(self):
        with pytest.raises(KeyError) as err:
            FaultProfile.preset("apocalyptic")
        assert "light" in str(err.value)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultProfile(node_mtbf=0.0)
        with pytest.raises(ValueError):
            FaultProfile(crash_prob=1.0)
        with pytest.raises(ValueError):
            FaultProfile(repair_time=-1.0)


class TestFaultInjector:
    def test_deterministic_per_seed(self):
        a = FaultInjector(FAULT_PROFILES["heavy"], seed=7)
        b = FaultInjector(FAULT_PROFILES["heavy"], seed=7)
        assert a.next_failure_gap("Quartz") == b.next_failure_gap("Quartz")
        assert a.repair_duration("Ruby") == b.repair_duration("Ruby")
        assert a.crash_offset(3, 1, 100.0) == b.crash_offset(3, 1, 100.0)

    def test_seed_changes_draws(self):
        a = FaultInjector(FAULT_PROFILES["heavy"], seed=0)
        b = FaultInjector(FAULT_PROFILES["heavy"], seed=1)
        assert a.next_failure_gap("Quartz") != b.next_failure_gap("Quartz")

    def test_crash_offset_is_order_independent(self):
        # Per-(job, attempt) streams: asking in a different order must
        # not change any outcome.
        a = FaultInjector(FAULT_PROFILES["heavy"], seed=3)
        b = FaultInjector(FAULT_PROFILES["heavy"], seed=3)
        forward = [a.crash_offset(j, 1, 50.0) for j in range(20)]
        backward = [b.crash_offset(j, 1, 50.0) for j in reversed(range(20))]
        assert forward == backward[::-1]

    def test_null_profile_never_fires(self):
        inj = FaultInjector(FAULT_PROFILES["none"], seed=0)
        assert inj.is_null
        assert inj.next_failure_gap("Quartz") is None
        assert all(
            inj.crash_offset(j, a, 100.0) is None
            for j in range(50) for a in range(1, 4)
        )

    def test_crash_offset_within_runtime(self):
        inj = FaultInjector(FaultProfile(crash_prob=0.99), seed=0)
        offsets = [inj.crash_offset(j, 1, 80.0) for j in range(100)]
        hits = [o for o in offsets if o is not None]
        assert hits  # p=0.99 over 100 jobs
        assert all(0.0 < o < 80.0 for o in hits)

    def test_corrupt_features_copies_and_bounds(self):
        inj = FaultInjector(FaultProfile(corruption_prob=0.5), seed=0)
        X = np.arange(400, dtype=np.float64).reshape(20, 20)
        before = X.copy()
        out = inj.corrupt_features(X)
        assert np.array_equal(X, before)  # input untouched
        bad_rows = ~np.isfinite(out).all(axis=1)
        assert 0 < bad_rows.sum() < 20
        # Each hit row loses at most half its entries.
        per_row = np.isnan(out).sum(axis=1)
        assert per_row.max() <= 10

    def test_corrupt_features_null_passthrough(self):
        inj = FaultInjector(FAULT_PROFILES["none"], seed=0)
        X = np.ones((5, 3))
        assert np.array_equal(inj.corrupt_features(X), X)


class TestRetryPolicy:
    def test_gives_up(self):
        assert not RetryPolicy().gives_up(10**6)  # unlimited by default
        p = RetryPolicy(max_attempts=3)
        assert not p.gives_up(2)
        assert p.gives_up(3)

    def test_backoff_growth_and_cap(self):
        p = RetryPolicy(backoff_base=10, backoff_factor=2, backoff_cap=60,
                        jitter=0.0)
        assert [p.delay(k) for k in (1, 2, 3, 4, 5)] == [10, 20, 40, 60, 60]

    def test_jitter_bounded_and_deterministic(self):
        p = RetryPolicy(backoff_base=100, jitter=0.1)
        d = p.delay(1, job_id=5)
        assert 90.0 <= d <= 110.0
        assert d == RetryPolicy(backoff_base=100, jitter=0.1).delay(1, job_id=5)
        assert d != p.delay(1, job_id=6)  # per-job decorrelation

    def test_string_job_ids_jitter_like_int_ones(self):
        # Sweep cells pass their cell_id; the jitter contract is the
        # same as for simulator ints: bounded, deterministic, and
        # decorrelated across ids.
        p = RetryPolicy(backoff_base=100, jitter=0.1)
        d = p.delay(1, job_id="0003-deadbeef0123")
        assert 90.0 <= d <= 110.0
        assert d == p.delay(1, job_id="0003-deadbeef0123")
        assert d != p.delay(1, job_id="0004-deadbeef0456")
        assert d != p.delay(2, job_id="0003-deadbeef0123")

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


# ---------------------------------------------------------------------------
class TestMachineAvailability:
    def test_drain_blocks_new_jobs(self):
        m = MachineState("X", 4)
        m.start(1, 10.0)
        m.drain()
        assert m.state == "drain"
        assert not m.can_fit(1)  # 3 free but draining
        with pytest.raises(RuntimeError):
            m.start(1, 5.0)
        m.resume()
        assert m.can_fit(1)

    def test_take_offline_and_recover(self):
        m = MachineState("X", 2)
        m.take_offline(1)
        assert (m.usable_nodes, m.free_nodes, m.state) == (1, 1, "up")
        m.take_offline(1)
        assert m.state == "down"
        assert not m.can_fit(1) and not m.can_ever_fit(1)
        m.bring_online(1)
        assert m.state == "up"
        assert m.usable_nodes == 1

    def test_take_offline_needs_free_nodes(self):
        m = MachineState("X", 2)
        m.start(2, 10.0)
        with pytest.raises(RuntimeError):
            m.take_offline(1)  # victims must be killed first

    def test_bring_online_bounds(self):
        m = MachineState("X", 2)
        with pytest.raises(RuntimeError):
            m.bring_online(1)  # nothing offline

    def test_cancel_frees_nodes(self):
        m = MachineState("X", 4)
        seq = m.start(3, 10.0)
        m.cancel(seq)
        assert m.free_nodes == 4
        assert m.next_completion() is None
        with pytest.raises(KeyError):
            m.cancel(seq)

    def test_cancel_keeps_other_allocations(self):
        m = MachineState("X", 4)
        a = m.start(1, 10.0)
        m.start(2, 5.0)
        m.cancel(a)
        assert m.free_nodes == 2
        assert m.next_completion() == 5.0

    def test_invalid_transitions(self):
        m = MachineState("X", 1)
        with pytest.raises(RuntimeError):
            m.resume()  # not draining
        m.take_offline(1)
        with pytest.raises(RuntimeError):
            m.drain()  # down machines cannot drain


# ---------------------------------------------------------------------------
class TestFaultySimulator:
    def test_null_injector_bit_identical(self):
        jobs = _workload(40, seed=1)
        base = Scheduler(RoundRobinStrategy(), cluster=_small_cluster())
        plain = base.run(jobs)
        faulty = Scheduler(
            RoundRobinStrategy(), cluster=_small_cluster(),
            faults=FaultInjector(FAULT_PROFILES["none"], seed=0),
        ).run(jobs)
        assert np.array_equal(plain.job_ids, faulty.job_ids)
        assert plain.machines == faulty.machines
        assert np.array_equal(plain.start_times, faulty.start_times)
        assert np.array_equal(plain.end_times, faulty.end_times)
        assert plain.backfilled == faulty.backfilled

    def test_heavy_profile_completes_everything(self):
        jobs = _workload(30, seed=2)
        result = Scheduler(
            RoundRobinStrategy(), cluster=_small_cluster(),
            faults=FaultInjector(FAULT_PROFILES["heavy"], seed=5),
        ).run(jobs)
        assert result.num_jobs == 30  # unlimited retries: no job is lost
        info = result.extra["faults"]
        assert info["job_crashes"] > 0
        assert info["retries"] > 0
        assert np.all(result.end_times > result.start_times)
        assert np.all(result.start_times >= result.submit_times)

    def test_fault_run_is_reproducible(self):
        jobs = _workload(25, seed=3)
        runs = [
            Scheduler(
                RoundRobinStrategy(), cluster=_small_cluster(),
                faults=FaultInjector(FAULT_PROFILES["heavy"], seed=9),
            ).run(jobs)
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].end_times, runs[1].end_times)
        assert runs[0].extra["faults"] == runs[1].extra["faults"]

    def test_crashes_waste_work_without_checkpoint(self):
        jobs = _workload(30, seed=4)
        crashy = FaultProfile(crash_prob=0.3)
        result = Scheduler(
            RoundRobinStrategy(), cluster=_small_cluster(),
            faults=FaultInjector(crashy, seed=1),
        ).run(jobs)
        assert wasted_node_seconds(result) > 0
        assert goodput(result) < 1.0
        assert retry_count(result) > 0

    def test_checkpoint_restart_wastes_nothing(self):
        jobs = _workload(30, seed=4)
        crashy = FaultProfile(crash_prob=0.3)
        result = Scheduler(
            RoundRobinStrategy(), cluster=_small_cluster(),
            faults=FaultInjector(crashy, seed=1),
            retry=RetryPolicy(checkpoint=True),
        ).run(jobs)
        assert wasted_node_seconds(result) == 0.0
        assert goodput(result) == 1.0
        assert retry_count(result) > 0

    def test_checkpoint_preserves_progress(self):
        # With checkpointing a retried job's final attempt only runs the
        # remainder; without, every attempt restarts from zero.
        jobs = _workload(30, seed=4)
        crashy = FaultProfile(crash_prob=0.3)
        full = {j.job_id: j.runtime_on("Quartz") for j in jobs}  # uniform

        def run(retry):
            return Scheduler(
                RoundRobinStrategy(), cluster=_small_cluster(),
                faults=FaultInjector(crashy, seed=1), retry=retry,
            ).run(jobs)

        ck = run(RetryPolicy(checkpoint=True))
        retried = set(ck.extra["faults"]["attempts"])
        assert retried
        for jid, run_time in zip(ck.job_ids, ck.runtimes):
            if int(jid) in retried:
                assert run_time < full[int(jid)] - 1e-9
            else:
                assert run_time == pytest.approx(full[int(jid)])

        no_ck = run(RetryPolicy(checkpoint=False))
        for jid, run_time in zip(no_ck.job_ids, no_ck.runtimes):
            assert run_time == pytest.approx(full[int(jid)])

    def test_bounded_attempts_abandon_jobs(self):
        jobs = _workload(40, seed=5)
        crashy = FaultProfile(crash_prob=0.5)
        result = Scheduler(
            RoundRobinStrategy(), cluster=_small_cluster(),
            faults=FaultInjector(crashy, seed=2),
            retry=RetryPolicy(max_attempts=1),  # crash once → abandoned
        ).run(jobs)
        failed = result.extra["faults"]["failed_jobs"]
        assert len(failed) > 0
        assert result.num_jobs == 40 - len(failed)
        assert completed_fraction(result) == pytest.approx(
            result.num_jobs / 40
        )
        # Abandoned jobs never appear in the output arrays.
        assert set(failed).isdisjoint(result.job_ids.tolist())

    def test_node_failures_kill_and_recover(self):
        # One tiny busy machine: every node failure must evict a job.
        jobs = [_job(i, runtime=500.0) for i in range(8)]
        cluster = ClusterState({"Quartz": 2})
        profile = FaultProfile(node_mtbf=300.0, repair_time=100.0)
        result = Scheduler(
            RoundRobinStrategy(), cluster=cluster,
            faults=FaultInjector(profile, seed=0), trace=True,
        ).run(jobs)
        info = result.extra["faults"]
        assert info["node_failures"] > 0
        assert info["preemptions"] > 0
        assert result.num_jobs == 8
        kinds = {e[1] for e in result.extra["events"]}
        assert {"node_fail", "node_recover", "requeue"} <= kinds
        # Cluster heals: no node is left permanently offline beyond the
        # final pending repair.
        assert cluster["Quartz"].used_nodes == 0

    def test_fault_free_metrics_are_perfect(self):
        result = Scheduler(
            RoundRobinStrategy(), cluster=_small_cluster()
        ).run(_workload(10, seed=6))
        assert wasted_node_seconds(result) == 0.0
        assert goodput(result) == 1.0
        assert retry_count(result) == 0
        assert completed_fraction(result) == 1.0
        summary = resilience_summary(result)
        assert summary["node_failures"] == 0
        assert summary["goodput"] == 1.0


class TestDegradedPredictionFraction:
    def test_empty_counts(self):
        assert degraded_prediction_fraction({}) == 0.0

    def test_mixed_counts(self):
        counts = {"model": 6, "imputed": 3, "mean_rpv": 1}
        assert degraded_prediction_fraction(counts) == pytest.approx(0.4)

    def test_all_model(self):
        assert degraded_prediction_fraction({"model": 9}) == 0.0


# ---------------------------------------------------------------------------
def _clean_record():
    rec = {f: 1000.0 for f in REQUIRED_RECORD_FIELDS}
    rec.update(
        total_instructions=1e9, branch=1e8, store=2e8, load=3e8,
        nodes=4, cores=36, uses_gpu=0, machine="Quartz",
    )
    return rec


class TestPredictRecordHardFailures:
    """Pin the *loud* failure contract of the raw predictor: corrupted
    records raise typed, descriptive errors (the resilient wrapper turns
    these into degraded answers)."""

    def test_nan_counter_raises(self, trained_xgb):
        rec = _clean_record()
        rec["l1_load_miss"] = float("nan")
        with pytest.raises(ValueError) as err:
            trained_xgb.predict_record(rec)
        assert "l1_load_miss" in str(err.value)

    def test_positive_inf_raises(self, trained_xgb):
        rec = _clean_record()
        rec["io_read_bytes"] = float("inf")
        with pytest.raises(ValueError, match="non-finite"):
            trained_xgb.predict_record(rec)

    def test_negative_inf_raises(self, trained_xgb):
        rec = _clean_record()
        rec["mem_stall_cycles"] = float("-inf")
        with pytest.raises(ValueError, match="non-finite"):
            trained_xgb.predict_record(rec)

    def test_missing_keys_raise_with_names(self, trained_xgb):
        rec = _clean_record()
        del rec["branch"], rec["ept_bytes"]
        with pytest.raises(KeyError) as err:
            trained_xgb.predict_record(rec)
        assert "branch" in str(err.value)
        assert "ept_bytes" in str(err.value)

    def test_clean_record_predicts(self, trained_xgb):
        rpv = trained_xgb.predict_record(_clean_record())
        assert rpv.shape == (len(SYSTEMS),)
        assert np.isfinite(rpv).all()


class TestResilientPredictor:
    @pytest.fixture(scope="class")
    def chain(self, trained_xgb, small_dataset):
        return ResilientPredictor.from_training(trained_xgb, small_dataset)

    def test_clean_record_uses_model(self, chain):
        out = chain.predict_record_detailed(_clean_record())
        assert out.tier == "model"
        assert np.isfinite(out.rpv).all()

    def test_nan_record_imputed(self, chain):
        rec = _clean_record()
        rec["l1_load_miss"] = float("nan")
        out = chain.predict_record_detailed(rec)
        assert out.tier == "imputed"
        assert out.repaired == ("l1_load_miss",)
        assert np.isfinite(out.rpv).all() and (out.rpv > 0).all()

    def test_imputed_stays_near_model(self, chain):
        clean = chain.predict_record_detailed(_clean_record()).rpv
        rec = _clean_record()
        rec["l2_store_miss"] = float("nan")
        repaired = chain.predict_record_detailed(rec).rpv
        # One repaired counter must not swing the RPV wildly; the whole
        # point of imputation is staying close to the clean answer.
        assert np.abs(repaired - clean).max() < 0.5 * clean.max()

    def test_missing_fields_imputed(self, chain):
        rec = _clean_record()
        del rec["branch"], rec["io_write_bytes"]
        out = chain.predict_record_detailed(rec)
        assert out.tier == "imputed"
        assert out.repaired == ("branch", "io_write_bytes")

    def test_unknown_machine_imputed(self, chain):
        rec = _clean_record()
        rec["machine"] = "Summit"
        out = chain.predict_record_detailed(rec)
        assert out.tier == "imputed"
        assert "machine" in out.repaired

    def test_mean_rpv_without_model(self, small_dataset):
        chain = ResilientPredictor(mean_rpv=small_dataset.Y().mean(axis=0))
        out = chain.predict_record_detailed(_clean_record())
        assert out.tier == "mean_rpv"
        assert np.allclose(out.rpv, small_dataset.Y().mean(axis=0))

    def test_heuristic_cold_start(self):
        chain = ResilientPredictor()
        gpu = chain.predict_record_detailed(
            {**_clean_record(), "uses_gpu": 1}
        )
        cpu = chain.predict_record_detailed(_clean_record())
        assert gpu.tier == cpu.tier == "heuristic"
        # GPU-capable work is predicted faster on the GPU systems
        # (Lassen/Corona: indices 2, 3); CPU work on the CPU systems.
        assert gpu.rpv[2] < gpu.rpv[0]
        assert cpu.rpv[0] < cpu.rpv[2]

    def test_never_raises_on_garbage(self, chain):
        for garbage in ({}, {"machine": 3}, {"nodes": "many"},
                        {k: None for k in REQUIRED_RECORD_FIELDS}):
            out = chain.predict_record_detailed(garbage)
            assert out.tier in ("imputed", "mean_rpv", "heuristic")
            assert np.isfinite(out.rpv).all()

    def test_batch_predict_imputes_dirty_rows(self, chain, small_dataset):
        chain.tier_counts.clear()
        X = small_dataset.X()[:10].copy()
        X[3, 2] = np.nan
        X[7, 0] = np.inf
        clean = chain.predictor.predict(X[:1])
        out = chain.predict(X)
        assert np.isfinite(out).all()
        assert np.allclose(out[0], clean[0])  # clean rows untouched
        assert chain.tier_counts["model"] == 8
        assert chain.tier_counts["imputed"] == 2

    def test_batch_without_model_tiles_baseline(self, small_dataset):
        chain = ResilientPredictor(mean_rpv=small_dataset.Y().mean(axis=0))
        out = chain.predict(np.zeros((5, 3)))
        assert out.shape == (5, len(SYSTEMS))
        assert (out == out[0]).all()

    def test_degraded_fraction_and_summary(self, trained_xgb, small_dataset):
        chain = ResilientPredictor.from_training(trained_xgb, small_dataset)
        assert chain.degraded_fraction() == 0.0  # nothing predicted yet
        chain.predict_record_detailed(_clean_record())
        rec = _clean_record()
        rec["load"] = float("nan")
        chain.predict_record_detailed(rec)
        assert chain.degraded_fraction() == pytest.approx(0.5)
        assert chain.summary() == {
            "model": 1, "imputed": 1, "mean_rpv": 0, "heuristic": 0,
        }

    def test_load_missing_model_degrades(self, tmp_path, small_dataset):
        chain = ResilientPredictor.load(tmp_path / "absent.pkl",
                                        dataset=small_dataset)
        assert chain.predictor is None
        out = chain.predict_record_detailed(_clean_record())
        assert out.tier == "mean_rpv"

    def test_load_garbage_model_degrades(self, tmp_path):
        path = tmp_path / "junk.pkl"
        path.write_bytes(b"not a pickle at all")
        chain = ResilientPredictor.load(path)
        out = chain.predict_record_detailed(_clean_record())
        assert out.tier == "heuristic"

    def test_fill_length_mismatch_rejected(self, trained_xgb):
        with pytest.raises(ValueError):
            ResilientPredictor(predictor=trained_xgb,
                               feature_fill=np.zeros(3))

    def test_corrupting_predictor_exercises_chain(self, trained_xgb,
                                                  small_dataset):
        chain = ResilientPredictor.from_training(trained_xgb, small_dataset)
        injector = FaultInjector(FaultProfile(corruption_prob=0.5), seed=0)
        wrapped = CorruptingPredictor(chain, injector)
        out = wrapped.predict(small_dataset.X()[:40])
        assert np.isfinite(out).all()
        assert chain.tier_counts["imputed"] > 0
        assert chain.degraded_fraction() > 0.0
