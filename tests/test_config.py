"""Tests for the typed experiment configs (repro.config)."""

import json

import pytest

from repro.config import (
    CONFIG_SCHEMA_VERSION,
    COMMAND_CONFIGS,
    DatasetConfig,
    EvaluateConfig,
    ExperimentConfig,
    ProfileConfig,
    ScheduleConfig,
    TrainConfig,
    WhatifConfig,
    canonical_json,
    content_digest,
)
from repro.errors import ConfigError, ReproError, UnknownNameError


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_digest_is_stable(self):
        # Pinned: changing the canonical encoding silently would orphan
        # every existing shard-cache entry and run directory.
        assert content_digest({"x": 1}) == (
            "5041bf1f713df204784353e82f6a4a535931cb64"
            "f1f4b4a5aeaffcb720918b22"
        )
        assert content_digest({"a": 1, "b": 2}) == content_digest(
            {"b": 2, "a": 1}
        )
        assert content_digest({"x": 1}) != content_digest({"x": 2})

    def test_shard_cache_uses_same_encoding(self):
        from repro.dataset import store

        assert store._canonical_json is canonical_json


class TestValidation:
    def test_frozen(self):
        cfg = DatasetConfig()
        with pytest.raises(AttributeError):
            cfg.seed = 5

    def test_positive_int_enforced(self):
        with pytest.raises(ConfigError, match="inputs_per_app"):
            DatasetConfig(inputs_per_app=0)
        with pytest.raises(ConfigError, match="seed"):
            DatasetConfig(seed=-1)
        with pytest.raises(ConfigError, match="inputs_per_app"):
            DatasetConfig(inputs_per_app=True)

    def test_scale_enforced(self):
        with pytest.raises(ConfigError, match="scale"):
            ProfileConfig(app="AMG", machine="Quartz", scale="4node")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError, match="app"):
            ProfileConfig(app="", machine="Quartz")

    def test_strategy_list_coerced_to_tuple(self):
        cfg = ScheduleConfig(strategies=["model", "oracle"])
        assert cfg.strategies == ("model", "oracle")

    def test_empty_strategies_rejected(self):
        with pytest.raises(ConfigError, match="strategies"):
            ScheduleConfig(strategies=())

    def test_max_attempts_validation(self):
        assert ScheduleConfig(max_attempts=None).max_attempts is None
        assert ScheduleConfig(max_attempts=3).max_attempts == 3
        with pytest.raises(ConfigError, match="max_attempts"):
            ScheduleConfig(max_attempts=0)

    def test_whatif_apps_required(self):
        with pytest.raises(ConfigError, match="apps"):
            WhatifConfig(predictor="p.pkl", apps=())


class TestRoundTrip:
    CASES = [
        ExperimentConfig("generate", DatasetConfig(inputs_per_app=3,
                                                   jobs=2,
                                                   cache_dir="/tmp/c")),
        ExperimentConfig("train", TrainConfig(model="forest", seed=7)),
        ExperimentConfig("evaluate", EvaluateConfig(cv=True)),
        ExperimentConfig("whatif", WhatifConfig(predictor="p.pkl",
                                                apps=("AMG", "CoMD"))),
        ExperimentConfig("schedule", ScheduleConfig(
            strategies=("model", "oracle"), fault_profile="light",
            checkpoint=True, max_attempts=3)),
    ]

    @pytest.mark.parametrize("experiment", CASES,
                             ids=lambda e: e.command)
    def test_dict_round_trip_exact(self, experiment):
        restored = ExperimentConfig.from_dict(experiment.to_dict())
        assert restored == experiment
        assert restored.content_hash() == experiment.content_hash()

    @pytest.mark.parametrize("experiment", CASES,
                             ids=lambda e: e.command)
    def test_json_file_round_trip(self, experiment, tmp_path):
        path = tmp_path / "cfg.json"
        experiment.save(path)
        assert ExperimentConfig.load(path) == experiment

    def test_hash_covers_schema_version(self):
        exp = ExperimentConfig("evaluate", EvaluateConfig())
        assert exp.to_dict()["config_schema_version"] == CONFIG_SCHEMA_VERSION

    def test_hash_changes_with_any_field(self):
        base = ExperimentConfig("evaluate", EvaluateConfig())
        changed = ExperimentConfig("evaluate", EvaluateConfig(seed=1))
        assert base.content_hash() != changed.content_hash()

    def test_alias_command_normalizes(self):
        via_alias = ExperimentConfig("dataset", DatasetConfig())
        assert via_alias.command == "generate"
        assert (via_alias.content_hash()
                == ExperimentConfig("generate", DatasetConfig()).content_hash())

    def test_tuple_survives_round_trip(self):
        exp = ExperimentConfig("schedule",
                               ScheduleConfig(strategies=("model",)))
        restored = ExperimentConfig.from_dict(
            json.loads(json.dumps(exp.to_dict()))
        )
        assert restored.config.strategies == ("model",)
        assert restored == exp


class TestErrors:
    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            EvaluateConfig.from_dict({"seed": 0, "banana": 1})

    def test_unknown_command_rejected(self):
        with pytest.raises(UnknownNameError, match="command"):
            COMMAND_CONFIGS["explode"]

    def test_command_config_mismatch(self):
        with pytest.raises(ConfigError, match="takes a"):
            ExperimentConfig("train", EvaluateConfig())

    def test_schema_version_mismatch(self):
        exp = ExperimentConfig("evaluate", EvaluateConfig())
        data = exp.to_dict()
        data["config_schema_version"] = 999
        with pytest.raises(ConfigError, match="schema version"):
            ExperimentConfig.from_dict(data)

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="cannot read"):
            ExperimentConfig.load(path)

    def test_missing_file_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ExperimentConfig.load(tmp_path / "nope.json")

    def test_config_error_is_repro_error(self):
        assert issubclass(ConfigError, ReproError)
        assert issubclass(ConfigError, ValueError)

    def test_seed_property(self):
        assert ExperimentConfig("evaluate", EvaluateConfig(seed=9)).seed == 9
