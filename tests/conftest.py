"""Shared fixtures.

The MP-HPC dataset and trained predictors are expensive relative to unit
tests, so small session-scoped instances are shared across test modules.
All fixtures are deterministic (fixed seeds).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.predictor import CrossArchPredictor
from repro.dataset.generate import MPHPCDataset, generate_dataset
from repro.ml import train_test_split


@pytest.fixture(scope="session")
def small_dataset() -> MPHPCDataset:
    """A 4-inputs-per-app dataset: 20 x 4 x 3 x 4 = 960 rows."""
    return generate_dataset(inputs_per_app=4, seed=123)


@pytest.fixture(scope="session")
def split_indices(small_dataset) -> tuple[np.ndarray, np.ndarray]:
    return train_test_split(small_dataset.num_rows, 0.1, random_state=7)


@pytest.fixture(scope="session")
def trained_xgb(small_dataset, split_indices) -> CrossArchPredictor:
    """An XGBoost predictor trained on the small dataset's train split."""
    train_rows, _ = split_indices
    return CrossArchPredictor.train(
        small_dataset, model="xgboost", rows=train_rows,
        n_estimators=60, max_depth=6,
    )
