#!/usr/bin/env python
"""Validate a Prometheus text-exposition document (format 0.0.4).

CI's serve-smoke job curls ``/metrics?format=prometheus`` and pipes the
body through this checker, so a malformed exposition — bad sample
syntax, a family contradicting its ``# TYPE``, non-monotone histogram
buckets, a ``_count`` that disagrees with the ``+Inf`` bucket — fails
the build instead of failing the first real scrape.

The parser is deliberately tiny and dependency-free: line-oriented,
strict about what the repo's own exporter emits, tolerant of what the
format allows (untyped families, help lines, blank lines).

Usage::

    python tools/check_prometheus.py metrics.prom
    curl -s "localhost:9099/metrics?format=prometheus" | \
        python tools/check_prometheus.py -
"""

from __future__ import annotations

import math
import re
import sys

__all__ = ["check_exposition", "parse_exposition"]

_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>.*)"$')

_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")

#: Suffixes a histogram family's samples may carry.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _parse_labels(raw: str, errors: list, lineno: int) -> dict:
    """Parse a ``k="v",...`` label body (escapes stay escaped)."""
    labels: dict[str, str] = {}
    if not raw:
        return labels
    # Split on commas not preceded by a backslash-escaped quote; the
    # exporter never puts a comma inside a label value unescaped, and a
    # stray one shows up as a parse error here — which is the point.
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        match = _LABEL.match(part)
        if match is None:
            errors.append(f"line {lineno}: malformed label {part!r}")
            continue
        labels[match.group("key")] = match.group("value")
    return labels


def parse_exposition(text: str) -> tuple[dict, dict, list]:
    """Parse exposition *text*.

    Returns ``(samples, types, errors)``: samples maps
    ``(family, label-tuple)`` to float values keyed in document order,
    types maps family name to its declared ``# TYPE``, and errors is a
    list of human-readable defects (empty = clean parse).
    """
    samples: dict = {}
    types: dict[str, str] = {}
    errors: list[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"line {lineno}: malformed TYPE line")
                continue
            _, _, family, kind = parts
            if not _NAME.match(family):
                errors.append(
                    f"line {lineno}: bad family name {family!r}"
                )
            if kind not in _TYPES:
                errors.append(
                    f"line {lineno}: unknown metric type {kind!r}"
                )
            if family in types:
                errors.append(
                    f"line {lineno}: duplicate TYPE for {family!r}"
                )
            types[family] = kind
            continue
        if line.startswith("#"):
            continue  # HELP or comment
        match = _SAMPLE.match(line)
        if match is None:
            errors.append(f"line {lineno}: malformed sample {line!r}")
            continue
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "", errors, lineno)
        raw_value = match.group("value")
        if raw_value in ("+Inf", "Inf"):
            value = math.inf
        elif raw_value == "-Inf":
            value = -math.inf
        elif raw_value == "NaN":
            value = math.nan
        else:
            try:
                value = float(raw_value)
            except ValueError:
                errors.append(
                    f"line {lineno}: non-numeric value {raw_value!r}"
                )
                continue
        key = (name, tuple(sorted(labels.items())))
        if key in samples:
            errors.append(
                f"line {lineno}: duplicate sample {name}{labels!r}"
            )
        samples[key] = value
    return samples, types, errors


def _family_of(name: str, types: dict) -> str:
    """The declared family a sample belongs to (histogram suffixes)."""
    for suffix in _HISTOGRAM_SUFFIXES:
        base = name[: -len(suffix)] if name.endswith(suffix) else None
        if base and types.get(base) in ("histogram", "summary"):
            return base
    if name.endswith("_total") and name[: -len("_total")] in types:
        return name[: -len("_total")]
    return name


def check_exposition(text: str) -> list[str]:
    """All defects in *text* (empty list = valid)."""
    samples, types, errors = parse_exposition(text)
    if not samples and not errors:
        errors.append("document contains no samples")

    by_family: dict[str, dict] = {}
    for (name, labels), value in samples.items():
        family = _family_of(name, types)
        by_family.setdefault(family, {})[(name, labels)] = value

    for family, fam_samples in sorted(by_family.items()):
        kind = types.get(family)
        if kind == "counter":
            for (name, _labels), value in fam_samples.items():
                if not name == family + "_total" and not name == family:
                    errors.append(
                        f"{family}: counter sample {name!r} lacks the "
                        f"_total suffix"
                    )
                if value < 0 or math.isnan(value):
                    errors.append(
                        f"{family}: counter value {value} is negative "
                        f"or NaN"
                    )
        if kind == "histogram":
            errors.extend(_check_histogram(family, fam_samples))
    return errors


def _check_histogram(family: str, fam_samples: dict) -> list[str]:
    """le-bucket discipline: monotone, capped by +Inf == _count."""
    errors: list[str] = []
    buckets: list[tuple[float, float]] = []
    total = None
    for (name, labels), value in fam_samples.items():
        if name == family + "_bucket":
            le = dict(labels).get("le")
            if le is None:
                errors.append(f"{family}: bucket sample without le label")
                continue
            edge = math.inf if le == "+Inf" else float(le)
            buckets.append((edge, value))
        elif name == family + "_count":
            total = value
    buckets.sort(key=lambda pair: pair[0])
    if not buckets or buckets[-1][0] != math.inf:
        errors.append(f"{family}: histogram has no +Inf bucket")
        return errors
    previous = 0.0
    for edge, count in buckets:
        if count < previous:
            errors.append(
                f"{family}: bucket le={edge} count {count} < previous "
                f"{previous} (cumulative counts must be monotone)"
            )
        previous = count
    if total is None:
        errors.append(f"{family}: histogram has no _count sample")
    elif total != buckets[-1][1]:
        errors.append(
            f"{family}: _count {total} != +Inf bucket {buckets[-1][1]}"
        )
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 2 or argv[1] in ("-h", "--help"):
        print(__doc__)
        return 2
    if argv[1] == "-":
        text = sys.stdin.read()
    else:
        with open(argv[1]) as handle:
            text = handle.read()
    errors = check_exposition(text)
    for error in errors:
        print(f"ERROR: {error}")
    if errors:
        print(f"{len(errors)} exposition defect(s)")
        return 1
    families = len({name for name, _ in parse_exposition(text)[0]})
    print(f"exposition OK ({families} sample name(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
