#!/usr/bin/env python
"""Import-cycle guard for the experiment spine.

The spine modules must stay at the bottom of the layer graph so that
every other layer can depend on them without cycles:

* ``repro.errors``    may import nothing from ``repro``;
* ``repro.ioutils``   may import nothing from ``repro`` (crash-safe
  write primitives used by every artifact writer);
* ``repro.native``    may import nothing from ``repro`` (optional C
  kernels with numpy fallback; imported from the ml hot loops, so it
  must sit below everything);
* ``repro.perf``      may import nothing from ``repro`` (the
  deterministic self-profiler profiles arbitrary callables, so keeping
  it import-free means any layer can be profiled without cycles), and
  — enforced by the reverse check below — may itself be imported only
  by the CLI (benchmarks/tests live outside ``src`` and are free);
* ``repro.registry``  may import only ``repro.errors``;
* ``repro.config``    may import only ``repro.errors`` /
  ``repro.registry`` / ``repro.ioutils``;
* ``repro.telemetry`` (and its submodules) may import only
  ``repro.errors`` and each other — it is instrumented *into* every
  layer, so it must depend on none of them;
* ``repro.sweep``     (and its submodules) may import only the spine
  plus ``repro.artifacts``, ``repro.parallel``, and the retry policy —
  cells are executed through the CLI replay path, so the sweep layer
  must never import ``repro.ml``/``repro.sched``/``repro.dataset``
  directly.  Sole exception: ``repro.sweep.runner`` may import
  ``repro.cli`` *inside the worker process* (the worker is an
  execution sandbox; the import is lazy, so no cycle exists at import
  time);
* ``repro.serve``     (and its submodules) may import the library
  layers it composes (artifacts, resilience, sched, profiler, ...) but
  never ``repro.cli`` or ``repro.sweep`` — the service is a library the
  CLI wraps, not the other way round.

This script walks each module's AST (no imports are executed, so it is
safe to run on a broken tree) and fails with one line per violation.
Run from the repo root::

    python tools/check_layering.py

Wired into CI (the lint job) and into tier-1 via tests/test_layering.py.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

#: Telemetry-internal modules: each may import errors + its siblings.
_TELEMETRY_DEPS = {
    "repro.errors",
    "repro.telemetry",
    "repro.telemetry.metrics",
    "repro.telemetry.spans",
    "repro.telemetry.export",
    "repro.telemetry.report",
    "repro.telemetry.slo",
    "repro.telemetry.flightrec",
}

#: Sweep-layer modules: spine + artifact store + parallel/retry + each
#: other.  Conspicuously absent: repro.ml / repro.sched / repro.dataset
#: — sweep cells execute through the CLI replay path, never by direct
#: library import.
_SWEEP_DEPS = {
    "repro.errors",
    "repro.ioutils",
    "repro.registry",
    "repro.config",
    "repro.artifacts",
    "repro.telemetry",
    "repro.parallel",
    "repro.parallel.executor",
    "repro.parallel.seeding",
    "repro.resilience.retry",
    "repro.sweep",
    "repro.sweep.spec",
    "repro.sweep.journal",
    "repro.sweep.planner",
    "repro.sweep.chaos",
    "repro.sweep.runner",
    "repro.sweep.report",
}

#: Serve-layer modules: the online service sits above the libraries
#: (model, resilience, sched, profiler) and *below* the CLI — it may
#: import any of them, but never ``repro.cli`` (which imports serve:
#: allowing the reverse edge would be a cycle) and never ``repro.sweep``
#: (batch orchestration has no business inside a request handler).
_SERVE_DEPS = {
    "repro",  # `from repro import telemetry` (the instrumented-layer idiom)
    "repro.errors",
    "repro.ioutils",
    "repro.registry",
    "repro.config",
    "repro.artifacts",
    "repro.telemetry",
    "repro.frame",
    "repro.apps",
    "repro.arch",
    "repro.perfsim.config",
    "repro.profiler",
    "repro.hatchet_lite",
    "repro.dataset.features",
    "repro.dataset.schema",
    "repro.arch.descriptor",
    "repro.arch.machines",
    "repro.core.predictor",
    "repro.core.zeroshot",
    "repro.ml",
    "repro.resilience.degrade",
    "repro.sched.job",
    "repro.sched.machines",
    "repro.sched.strategies",
    "repro.workloads",
    "repro.serve",
    "repro.serve.protocol",
    "repro.serve.coalescer",
    "repro.serve.model_manager",
    "repro.serve.admission",
    "repro.serve.server",
    "repro.serve.loadgen",
}

#: module -> repro modules it may import (itself is always allowed).
ALLOWED = {
    "repro.errors": set(),
    "repro.ioutils": set(),
    "repro.native": set(),
    "repro.perf": set(),
    "repro.registry": {"repro.errors"},
    "repro.config": {"repro.errors", "repro.registry", "repro.ioutils"},
    "repro.telemetry": _TELEMETRY_DEPS,
    "repro.telemetry.metrics": _TELEMETRY_DEPS,
    "repro.telemetry.spans": _TELEMETRY_DEPS,
    "repro.telemetry.export": _TELEMETRY_DEPS,
    "repro.telemetry.report": _TELEMETRY_DEPS,
    "repro.telemetry.slo": _TELEMETRY_DEPS,
    "repro.telemetry.flightrec": _TELEMETRY_DEPS,
    # Descriptor plumbing: the canonical machine descriptor sits just
    # above hardware/config, and the machine registry may reach *down*
    # into config only to install the digest resolver (dependency
    # inversion — config itself still imports nothing from arch).
    "repro.arch.descriptor": {
        "repro.arch.hardware", "repro.config", "repro.errors",
    },
    "repro.arch.machines": {
        "repro.arch.hardware", "repro.arch.descriptor", "repro.config",
        "repro.registry",
    },
    # The schema-v2 long-format builder and the zero-shot head compose
    # dataset + arch layers; neither may touch sched/serve/cli.
    "repro.dataset.longform": {
        "repro.arch.descriptor", "repro.arch.machines",
        "repro.dataset.features", "repro.dataset.generate",
        "repro.dataset.schema", "repro.errors", "repro.frame",
    },
    "repro.core.zeroshot": {
        "repro.arch.descriptor", "repro.arch.machines",
        "repro.dataset.features", "repro.dataset.longform",
        "repro.dataset.schema", "repro.frame", "repro.ml",
    },
    "repro.sweep": _SWEEP_DEPS,
    "repro.sweep.spec": _SWEEP_DEPS,
    "repro.sweep.journal": _SWEEP_DEPS,
    "repro.sweep.planner": _SWEEP_DEPS,
    "repro.sweep.chaos": _SWEEP_DEPS,
    # The runner's worker function re-enters the CLI replay path; the
    # import is function-local (lazy), so no import-time cycle exists.
    "repro.sweep.runner": _SWEEP_DEPS | {"repro.cli"},
    "repro.sweep.report": _SWEEP_DEPS,
    "repro.serve": _SERVE_DEPS,
    "repro.serve.protocol": _SERVE_DEPS,
    "repro.serve.coalescer": _SERVE_DEPS,
    "repro.serve.model_manager": _SERVE_DEPS,
    "repro.serve.admission": _SERVE_DEPS,
    "repro.serve.server": _SERVE_DEPS,
    "repro.serve.loadgen": _SERVE_DEPS,
}


def _module_path(module: str) -> Path:
    parts = module.split(".")
    candidate = SRC.joinpath(*parts).with_suffix(".py")
    if candidate.is_file():
        return candidate
    return SRC.joinpath(*parts) / "__init__.py"


def repro_imports(module: str) -> list[tuple[int, str]]:
    """Every ``repro.*`` module imported by *module*: (lineno, name).

    A module absent from SRC contributes nothing (so the guard can run
    against partial trees, e.g. the planted-violation test fixture).
    """
    path = _module_path(module)
    if not path.is_file():
        return []
    tree = ast.parse(path.read_text())
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    found.append((node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            name = node.module or ""
            if name == "repro" or name.startswith("repro."):
                found.append((node.lineno, name))
    return found


#: module -> the only repro packages allowed to import it.  The forward
#: check above constrains a module's *outgoing* edges; this constrains
#: *incoming* ones, for tools that must never leak into the library
#: layers (the self-profiler is operational tooling the CLI exposes,
#: not a dependency science code may grow).  An importer matches if it
#: equals an entry or lives under an entry's package.
RESTRICTED_IMPORTERS = {
    "repro.perf": {"repro.cli"},
}


def _all_modules() -> list[str]:
    """Every repro module under SRC, as dotted names."""
    modules = []
    for path in (SRC / "repro").rglob("*.py"):
        rel = path.relative_to(SRC).with_suffix("")
        parts = list(rel.parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        modules.append(".".join(parts))
    return modules


def violations() -> list[str]:
    problems = []
    for module, allowed in ALLOWED.items():
        for lineno, imported in repro_imports(module):
            if imported == module or imported in allowed:
                continue
            problems.append(
                f"{module} (line {lineno}) imports {imported}; allowed: "
                f"{', '.join(sorted(allowed)) or 'nothing from repro'}"
            )
    for module in _all_modules():
        for lineno, imported in repro_imports(module):
            allowed_importers = RESTRICTED_IMPORTERS.get(imported)
            if allowed_importers is None:
                continue
            if module == imported or any(
                module == pkg or module.startswith(pkg + ".")
                for pkg in allowed_importers
            ):
                continue
            problems.append(
                f"{module} (line {lineno}) imports {imported}, which only "
                f"{', '.join(sorted(allowed_importers))} may import"
            )
    return problems


def main() -> int:
    problems = violations()
    for problem in problems:
        print(f"layering violation: {problem}", file=sys.stderr)
    if not problems:
        print(f"layering OK: {', '.join(ALLOWED)} stay at the bottom")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
