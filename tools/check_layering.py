#!/usr/bin/env python
"""Import-cycle guard for the experiment spine.

The spine modules must stay at the bottom of the layer graph so that
every other layer can depend on them without cycles:

* ``repro.errors``    may import nothing from ``repro``;
* ``repro.registry``  may import only ``repro.errors``;
* ``repro.config``    may import only ``repro.errors`` / ``repro.registry``.

This script walks each module's AST (no imports are executed, so it is
safe to run on a broken tree) and fails with one line per violation.
Run from the repo root::

    python tools/check_layering.py

Wired into CI (the lint job) and into tier-1 via tests/test_layering.py.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

#: module -> repro modules it may import (itself is always allowed).
ALLOWED = {
    "repro.errors": set(),
    "repro.registry": {"repro.errors"},
    "repro.config": {"repro.errors", "repro.registry"},
}


def _module_path(module: str) -> Path:
    parts = module.split(".")
    candidate = SRC.joinpath(*parts).with_suffix(".py")
    if candidate.is_file():
        return candidate
    return SRC.joinpath(*parts) / "__init__.py"


def repro_imports(module: str) -> list[tuple[int, str]]:
    """Every ``repro.*`` module imported by *module*: (lineno, name)."""
    tree = ast.parse(_module_path(module).read_text())
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    found.append((node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            name = node.module or ""
            if name == "repro" or name.startswith("repro."):
                found.append((node.lineno, name))
    return found


def violations() -> list[str]:
    problems = []
    for module, allowed in ALLOWED.items():
        for lineno, imported in repro_imports(module):
            if imported == module or imported in allowed:
                continue
            problems.append(
                f"{module} (line {lineno}) imports {imported}; allowed: "
                f"{', '.join(sorted(allowed)) or 'nothing from repro'}"
            )
    return problems


def main() -> int:
    problems = violations()
    for problem in problems:
        print(f"layering violation: {problem}", file=sys.stderr)
    if not problems:
        print(f"layering OK: {', '.join(ALLOWED)} stay at the bottom")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
