"""Sweep specs: a declared subspace of the experiment grid.

A spec is a small JSON document::

    {
      "sweep_schema_version": 1,
      "name": "profile-grid",
      "command": "profile",
      "base": {"scale": "1node", "seed": 0},
      "axes": {
        "app": ["AMG", "XSBench", "miniFE"],
        "machine": ["Quartz", "Lassen"]
      },
      "sample": null,
      "sample_seed": 0
    }

``command`` names any registered subcommand config
(:data:`~repro.config.COMMAND_CONFIGS`); ``base`` holds fixed field
values; each axis names a config field and the values it sweeps.  The
grid is the cartesian product of the axes (last axis fastest, like an
odometer), optionally thinned to ``sample`` cells chosen by a seeded
permutation — deterministic, so two plans of the same spec always agree
on the cell set.

Every cell freezes to an :class:`~repro.config.ExperimentConfig`, whose
SHA-256 content hash is the cell's identity everywhere downstream: the
run-directory name, the journal key, and the memoization test.  Axis
values must therefore be JSON values (they go straight into the config
dict); unknown field names or bad values surface as typed
:class:`~repro.errors.ConfigError` wrapped with the offending cell's
coordinates.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, fields
from pathlib import Path

import numpy as np

from repro.config import COMMAND_CONFIGS, ExperimentConfig, content_digest
from repro.errors import ConfigError, SweepError
from repro.ioutils import atomic_write_json

__all__ = ["SWEEP_SCHEMA_VERSION", "SweepSpec", "SweepCell"]

#: Bumped whenever the spec layout changes incompatibly.
SWEEP_SCHEMA_VERSION = 1

_SPEC_KEYS = {"sweep_schema_version", "name", "command", "base", "axes",
              "sample", "sample_seed"}


@dataclass(frozen=True)
class SweepCell:
    """One cell of the expanded grid: a frozen experiment plus its
    coordinates.

    ``index`` is the cell's position in the *full* grid (before
    sampling), so ids stay stable when ``sample`` changes.
    """

    index: int
    axes: tuple[tuple[str, object], ...]
    experiment: ExperimentConfig
    config_hash: str

    @property
    def cell_id(self) -> str:
        """Stable human-scannable id: grid index + config hash prefix."""
        return f"{self.index:04d}-{self.config_hash[:12]}"

    @property
    def run_dir_name(self) -> str:
        """The run-directory name :meth:`RunDir.create` will use."""
        return f"{self.experiment.command}-{self.config_hash[:12]}"

    def axes_label(self) -> str:
        """``app=AMG machine=Quartz`` — for logs and report rows."""
        return " ".join(f"{k}={_label(v)}" for k, v in self.axes)


def _label(value) -> str:
    if isinstance(value, (list, tuple)):
        return "+".join(str(v) for v in value)
    return str(value)


@dataclass(frozen=True)
class SweepSpec:
    """A declared grid (or sampled subspace) over one command's config."""

    name: str
    command: str
    base: dict = field(default_factory=dict)
    axes: dict = field(default_factory=dict)
    sample: int | None = None
    sample_seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name.strip():
            raise SweepError("sweep name must be a non-empty string")
        # Raises a typed did-you-mean UnknownNameError for bad commands.
        cls = COMMAND_CONFIGS[self.command]
        if not isinstance(self.base, dict):
            raise SweepError("sweep base must be an object of config fields")
        if not isinstance(self.axes, dict):
            raise SweepError("sweep axes must be an object: field -> values")
        known = {f.name for f in fields(cls)}
        for axis, values in self.axes.items():
            if axis not in known:
                raise SweepError(
                    f"axis {axis!r} is not a field of {cls.__name__} "
                    f"(known: {', '.join(sorted(known))})"
                )
            if not isinstance(values, (list, tuple)) or not values:
                raise SweepError(
                    f"axis {axis!r} must list at least one value"
                )
        overlap = sorted(set(self.base) & set(self.axes))
        if overlap:
            raise SweepError(
                f"field(s) {', '.join(overlap)} appear in both base and axes"
            )
        if self.sample is not None and (
            not isinstance(self.sample, int) or isinstance(self.sample, bool)
            or self.sample < 1
        ):
            raise SweepError("sample must be None or a positive integer")
        if not isinstance(self.sample_seed, int) \
                or isinstance(self.sample_seed, bool):
            raise SweepError("sample_seed must be an integer")

    # -- JSON round-trip ------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "sweep_schema_version": SWEEP_SCHEMA_VERSION,
            "name": self.name,
            "command": self.command,
            "base": dict(self.base),
            "axes": {axis: list(values)
                     for axis, values in self.axes.items()},
            "sample": self.sample,
            "sample_seed": self.sample_seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        if not isinstance(data, dict):
            raise SweepError(
                f"sweep spec must be an object, got {type(data).__name__}"
            )
        version = data.get("sweep_schema_version")
        if version != SWEEP_SCHEMA_VERSION:
            raise SweepError(
                f"sweep schema version mismatch: spec has {version!r}, "
                f"this package reads {SWEEP_SCHEMA_VERSION}"
            )
        unknown = sorted(set(data) - _SPEC_KEYS)
        if unknown:
            raise SweepError(
                f"unknown sweep spec key(s): {', '.join(unknown)}"
            )
        missing = sorted({"name", "command", "axes"} - set(data))
        if missing:
            raise SweepError(
                f"missing sweep spec key(s): {', '.join(missing)}"
            )
        return cls(
            name=data["name"],
            command=data["command"],
            base=data.get("base") or {},
            axes=data["axes"],
            sample=data.get("sample"),
            sample_seed=data.get("sample_seed", 0),
        )

    def save(self, path: str | Path) -> None:
        atomic_write_json(Path(path), self.to_dict())

    @classmethod
    def load(cls, path: str | Path) -> "SweepSpec":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise
        except (OSError, json.JSONDecodeError) as exc:
            raise SweepError(f"cannot read sweep spec {path}: {exc}") from exc
        try:
            return cls.from_dict(data)
        except SweepError as exc:
            raise SweepError(f"{path}: {exc}") from None

    # -- identity -------------------------------------------------------
    def content_hash(self) -> str:
        """SHA-256 identity of the spec (journal compatibility check)."""
        return content_digest(self.to_dict())

    # -- expansion ------------------------------------------------------
    @property
    def grid_size(self) -> int:
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def expand(self) -> list[SweepCell]:
        """The spec's cells, in grid order, after sampling.

        Each cell's config is built through
        :meth:`BaseConfig.from_dict`, so axis values get the same
        validation and tuple coercion a saved config would.
        """
        config_cls = COMMAND_CONFIGS[self.command]
        axis_names = list(self.axes)
        cells = []
        for index, combo in enumerate(
            itertools.product(*self.axes.values())
        ):
            assignment = dict(zip(axis_names, combo))
            merged = {**self.base, **assignment}
            try:
                config = config_cls.from_dict(merged)
                experiment = ExperimentConfig(self.command, config)
            except ConfigError as exc:
                coords = " ".join(f"{k}={v!r}"
                                  for k, v in assignment.items())
                raise SweepError(
                    f"cell {index} ({coords}) of sweep {self.name!r} "
                    f"is invalid: {exc}"
                ) from exc
            cells.append(SweepCell(
                index=index,
                axes=tuple(assignment.items()),
                experiment=experiment,
                config_hash=experiment.content_hash(),
            ))
        if self.sample is not None and self.sample < len(cells):
            rng = np.random.default_rng(
                np.random.SeedSequence([self.sample_seed, len(cells)])
            )
            keep = sorted(rng.permutation(len(cells))[:self.sample])
            cells = [cells[i] for i in keep]
        return cells
