"""The sweep's crash-safe checkpoint: an append-only JSONL journal.

``<run-root>/sweep.journal.jsonl`` records one line per cell state
transition, written through :func:`repro.ioutils.append_line` (single
``write`` + fsync), so the journal on disk is always a prefix of the
true event sequence — a SIGKILL can at worst tear the final line, which
:meth:`SweepJournal.read` detects and drops.

Events, in a cell's life::

    sweep-open       orchestrator started (carries the spec hash)
    cached           planner found a verify_run-clean run dir
    started          attempt N launched in a worker
    failed           attempt N failed (kind: timeout / worker-death /
                     nonzero-exit / verify-failed)
    retry-scheduled  attempt N+1 scheduled after a backoff delay
    quarantined      retry budget exhausted; cell parked
    done             attempt N completed and its run dir verified

Resume reads the journal back and reduces it per cell (last event
wins): ``quarantined`` survives restarts (a poison cell stays parked
until ``--retry-quarantined``), while everything else defers to the
artifact store — a cell is only ever *complete* if its run directory
verifies right now, regardless of what the journal claims.  The journal
is forensic state, never a substitute for verification.

``sweep-open`` lines pin the spec: resuming a root with a journal
written by a different spec (different axes, different sample) is a
typed :class:`~repro.errors.SweepError`, not a silent mixed campaign.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.config import canonical_json
from repro.errors import SweepError
from repro.ioutils import append_line

__all__ = ["JOURNAL_NAME", "JOURNAL_VERSION", "SweepJournal"]

JOURNAL_NAME = "sweep.journal.jsonl"

JOURNAL_VERSION = 1

#: Cell-level events (``sweep-open`` is sweep-level).
CELL_EVENTS = ("cached", "started", "failed", "retry-scheduled",
               "quarantined", "done")


class SweepJournal:
    """Append-only writer/reader for one sweep root's journal."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.is_file()

    # -- writing --------------------------------------------------------
    def open_sweep(self, spec_hash: str, name: str) -> None:
        """Record an orchestrator start (idempotent across resumes)."""
        self._append({"event": "sweep-open", "spec": spec_hash,
                      "name": name})

    def record(self, event: str, cell_id: str, config_hash: str,
               attempt: int = 0, **extra) -> None:
        if event not in CELL_EVENTS:
            raise SweepError(f"unknown journal event {event!r}")
        entry = {"event": event, "cell": cell_id, "hash": config_hash,
                 "attempt": attempt}
        entry.update(extra)
        self._append(entry)

    def _append(self, entry: dict) -> None:
        entry = {"v": JOURNAL_VERSION, **entry}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        append_line(self.path, canonical_json(entry))

    # -- reading --------------------------------------------------------
    def read(self) -> list[dict]:
        """Every journal entry, oldest first.

        A torn *final* line (the one being written when a crash hit) is
        dropped silently; a torn line anywhere else means the file was
        edited or the filesystem lied, and raises a typed error.
        """
        if not self.path.is_file():
            return []
        lines = self.path.read_text().splitlines()
        entries = []
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == len(lines):
                    break  # torn tail from a mid-append crash: ignore
                raise SweepError(
                    f"{self.path}:{lineno}: corrupt journal line "
                    f"(not the final line, so not a crash artifact): {exc}"
                ) from exc
            if not isinstance(entry, dict) or "event" not in entry:
                raise SweepError(
                    f"{self.path}:{lineno}: journal entry is not an event"
                )
            entries.append(entry)
        return entries

    def spec_hashes(self, entries: list[dict] | None = None) -> set[str]:
        """Every spec hash that has opened this journal."""
        if entries is None:
            entries = self.read()
        return {e["spec"] for e in entries
                if e.get("event") == "sweep-open" and "spec" in e}

    @staticmethod
    def reduce(entries: list[dict]) -> dict[str, dict]:
        """Fold entries into per-cell state: last event wins.

        Returns ``cell_id -> {"event", "attempt", "hash", ...}`` for
        cell-level events only.
        """
        state: dict[str, dict] = {}
        for entry in entries:
            if entry.get("event") in CELL_EVENTS and "cell" in entry:
                state[entry["cell"]] = entry
        return state
