"""Fault-point injection for the sweep runner — the chaos harness.

Every durability claim the orchestrator makes ("a killed worker is
retried", "a hung cell is timed out", "a corrupted run dir is detected
and recomputed", "a SIGKILLed parent resumes bit-identically") is only
a claim until something actually kills, hangs, or corrupts at the worst
moment.  A :class:`ChaosSpec` injects exactly that, deterministically,
at named fault points:

worker faults (matched per cell + attempt):

* ``crash``   — the worker SIGKILLs itself before running the cell:
  the parent sees a signal death with no result file (the
  ``worker-death`` classification, the in-process ``BrokenProcessPool``
  analogue).
* ``hang``    — the worker sleeps forever; only the per-cell wall-clock
  timeout can reclaim the slot.
* ``error``   — the worker raises a plain exception (the clean
  ``nonzero-exit`` path).
* ``corrupt`` — the cell's command completes, then the worker truncates
  the run dir's ``manifest.json`` mid-byte: the torn-write scenario the
  atomic writers exist to prevent, aimed at proving ``verify_run``
  catches it anyway.

parent fault:

* ``parent-exit`` — after ``after_done`` cells have completed, the
  orchestrator ``os._exit``\\ s without any cleanup: the closest
  in-process stand-in for ``kill -9`` of the sweep itself.  The CI
  resume-smoke job and the kill-and-resume test build on this.

Spec format (CLI ``--chaos``, inline JSON or ``@file``)::

    {"faults": [
        {"fault": "crash",   "cell": 2, "attempt": 1},
        {"fault": "hang",    "cell": "0003", "attempt": "*"},
        {"fault": "parent-exit", "after_done": 2}
    ]}

``cell`` matches a grid index (int) or a cell-id prefix (str);
``attempt`` is a 1-based attempt number or ``"*"`` for every attempt —
``{"attempt": 1}`` faults make a cell fail once and then recover, while
``"*"`` makes it a poison cell that must end in quarantine.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import SweepError

__all__ = ["ChaosSpec", "ChaosFault", "WORKER_FAULTS", "apply_worker_fault"]

WORKER_FAULTS = ("crash", "hang", "error", "corrupt")
PARENT_FAULTS = ("parent-exit",)

#: How long a chaos ``hang`` sleeps — effectively forever next to any
#: sane ``--timeout``, short enough that a leaked worker cannot outlive
#: a CI job by much.
HANG_SECONDS = 600.0


@dataclass(frozen=True)
class ChaosFault:
    """One armed fault point."""

    fault: str
    cell: int | str | None = None
    attempt: int | str = 1
    after_done: int | None = None

    def __post_init__(self) -> None:
        if self.fault not in WORKER_FAULTS + PARENT_FAULTS:
            raise SweepError(
                f"unknown chaos fault {self.fault!r} (choose from "
                f"{', '.join(WORKER_FAULTS + PARENT_FAULTS)})"
            )
        if self.fault in PARENT_FAULTS:
            if not isinstance(self.after_done, int) or self.after_done < 0:
                raise SweepError(
                    f"{self.fault} needs a non-negative 'after_done' count"
                )
        else:
            if self.cell is None:
                raise SweepError(f"{self.fault} needs a 'cell' matcher")
            if self.attempt != "*" and (
                not isinstance(self.attempt, int) or self.attempt < 1
            ):
                raise SweepError(
                    "chaos 'attempt' must be a 1-based integer or '*'"
                )

    def matches(self, index: int, cell_id: str, attempt: int) -> bool:
        if self.fault in PARENT_FAULTS:
            return False
        if isinstance(self.cell, bool) or self.cell is None:
            return False
        if isinstance(self.cell, int):
            if self.cell != index:
                return False
        elif not cell_id.startswith(str(self.cell)):
            return False
        return self.attempt == "*" or self.attempt == attempt


@dataclass(frozen=True)
class ChaosSpec:
    """A parsed set of fault points (empty = no chaos)."""

    faults: tuple[ChaosFault, ...] = ()

    @classmethod
    def parse(cls, text: str | None) -> "ChaosSpec":
        """Parse CLI input: inline JSON, or ``@path`` to a JSON file."""
        if not text:
            return cls()
        if text.startswith("@"):
            path = Path(text[1:])
            try:
                text = path.read_text()
            except OSError as exc:
                raise SweepError(
                    f"cannot read chaos spec {path}: {exc}"
                ) from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SweepError(f"chaos spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosSpec":
        if not isinstance(data, dict) or not isinstance(
            data.get("faults"), list
        ):
            raise SweepError(
                "chaos spec must be an object with a 'faults' list"
            )
        faults = []
        for raw in data["faults"]:
            if not isinstance(raw, dict):
                raise SweepError("each chaos fault must be an object")
            unknown = sorted(set(raw) - {"fault", "cell", "attempt",
                                         "after_done"})
            if unknown:
                raise SweepError(
                    f"unknown chaos fault key(s): {', '.join(unknown)}"
                )
            faults.append(ChaosFault(
                fault=raw.get("fault", ""),
                cell=raw.get("cell"),
                attempt=raw.get("attempt", 1),
                after_done=raw.get("after_done"),
            ))
        return cls(faults=tuple(faults))

    # -- queries --------------------------------------------------------
    def worker_faults(self, index: int, cell_id: str,
                      attempt: int) -> tuple[str, ...]:
        """The worker fault kinds armed for this cell attempt."""
        return tuple(f.fault for f in self.faults
                     if f.matches(index, cell_id, attempt))

    def parent_exit_after(self) -> int | None:
        """Completed-cell count at which the parent must die, if armed."""
        for f in self.faults:
            if f.fault == "parent-exit":
                return f.after_done
        return None


def apply_worker_fault(kind: str, run_dir: Path | None = None) -> None:
    """Fire one *pre-run* fault point inside a worker process.

    ``corrupt`` is a post-run fault and is handled by the worker after
    the cell's command finishes (see :func:`corrupt_run_dir`).
    """
    if kind == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "hang":
        time.sleep(HANG_SECONDS)
    elif kind == "error":
        raise RuntimeError("chaos: injected worker error")


def corrupt_run_dir(run_dir: Path) -> None:
    """Post-run fault: tear the manifest in half, as a crashing
    non-atomic writer would have."""
    manifest = run_dir / "manifest.json"
    if manifest.is_file():
        data = manifest.read_bytes()
        manifest.write_bytes(data[:max(1, len(data) // 2)])
