"""Sweep planning: decide which cells actually need to run.

The planner owns the two durability layers' *read* side:

* **artifact memoization** — a cell whose content-addressed run
  directory exists and passes :func:`repro.artifacts.verify_run` is
  *cached*: its results are proven-good bytes on disk, so the cell is
  never recomputed (this is what makes ``--resume`` after SIGKILL, or
  simply re-running the sweep, cheap and bit-identical);
* **journal state** — a cell the journal last recorded as
  ``quarantined`` stays parked (poison cells must not re-sink a resumed
  campaign) unless ``retry_quarantined`` lifts it.

Everything else is *pending*.  A run directory that exists but fails
verification — a torn cell from a killed worker — is pending too, and
flagged ``stale`` so the runner wipes it before relaunching.

The planner also enforces resume hygiene: an existing journal without
``resume=True`` is an error (you are about to mix two campaigns), and a
journal opened by a *different* spec is always an error.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.artifacts import verify_run
from repro.errors import ArtifactError, SweepError
from repro.sweep.journal import JOURNAL_NAME, SweepJournal
from repro.sweep.spec import SweepCell, SweepSpec

__all__ = ["CellPlan", "SweepPlan", "plan_sweep"]


@dataclass
class CellPlan:
    """One cell's planned disposition."""

    cell: SweepCell
    status: str                 # "pending" | "cached" | "quarantined"
    run_dir: Path
    stale: bool = False         # run dir exists but failed verification


@dataclass
class SweepPlan:
    """The full plan: spec, per-cell dispositions, and the journal."""

    spec: SweepSpec
    run_root: Path
    cells: list[CellPlan]
    journal: SweepJournal
    resumed: bool = False

    def by_status(self, status: str) -> list[CellPlan]:
        return [c for c in self.cells if c.status == status]

    @property
    def counts(self) -> dict[str, int]:
        out = {"pending": 0, "cached": 0, "quarantined": 0}
        for cell in self.cells:
            out[cell.status] += 1
        return out


def _is_verified(run_dir: Path) -> bool:
    try:
        verify_run(run_dir)
    except ArtifactError:
        return False
    return True


def plan_sweep(spec: SweepSpec, run_root: str | Path, *,
               resume: bool = False,
               retry_quarantined: bool = False) -> SweepPlan:
    """Expand *spec* and classify every cell against *run_root*.

    Raises
    ------
    SweepError
        If *run_root* already holds a journal and ``resume`` is False,
        or if the journal was opened by a different spec.
    """
    run_root = Path(run_root)
    journal = SweepJournal(run_root / JOURNAL_NAME)
    quarantined_ids: set[str] = set()
    resumed = False
    if journal.exists():
        if not resume:
            raise SweepError(
                f"{journal.path} already exists — pass --resume to "
                f"continue this sweep, or use a fresh --run-root"
            )
        entries = journal.read()
        other = journal.spec_hashes(entries) - {spec.content_hash()}
        if other:
            raise SweepError(
                f"{journal.path} belongs to a different sweep spec "
                f"(journal spec {sorted(other)[0][:12]}, this spec "
                f"{spec.content_hash()[:12]}); refusing to mix campaigns"
            )
        resumed = True
        if not retry_quarantined:
            state = SweepJournal.reduce(entries)
            quarantined_ids = {
                cell_id for cell_id, last in state.items()
                if last.get("event") == "quarantined"
            }
    cells: list[CellPlan] = []
    for cell in spec.expand():
        run_dir = run_root / cell.run_dir_name
        exists = run_dir.is_dir()
        if exists and _is_verified(run_dir):
            cells.append(CellPlan(cell, "cached", run_dir))
        elif cell.cell_id in quarantined_ids:
            cells.append(CellPlan(cell, "quarantined", run_dir))
        else:
            cells.append(CellPlan(cell, "pending", run_dir, stale=exists))
    return SweepPlan(spec=spec, run_root=run_root, cells=cells,
                     journal=journal, resumed=resumed)
