"""Crash-safe sweep orchestrator over the experiment registries.

The paper's evaluation is a grid — applications x machines x models x
strategies x fault profiles — and the registries plus content-hashed
:class:`~repro.config.ExperimentConfig` define that space exactly.
This package is the driver: declare the grid once, run every cell, and
survive anything short of losing the disk.

* :mod:`repro.sweep.spec`    — the sweep spec: a base config plus axes
  of values, expanded (or deterministically sampled) into frozen,
  content-hashed per-cell experiment configs.
* :mod:`repro.sweep.planner` — decides what actually needs to run:
  cells whose config hash already has a ``verify_run``-clean run
  directory are *cached*, quarantined cells stay parked, the rest are
  pending.
* :mod:`repro.sweep.journal` — an append-only, fsync-per-line
  ``sweep.journal.jsonl`` recording every cell state transition, so a
  SIGKILLed sweep resumes from exactly where it died.
* :mod:`repro.sweep.runner`  — executes pending cells across isolated
  worker processes with per-cell wall-clock timeouts, typed failure
  classification (:class:`~repro.errors.SweepCellError`), retry with
  deterministic backoff jitter, and poison-cell quarantine.
* :mod:`repro.sweep.chaos`   — the fault-point harness that kills,
  hangs, errors, or corrupts a chosen cell's worker (or the parent
  itself) so every durability claim above is provable by test.
* :mod:`repro.sweep.report`  — the cross-cell comparative report:
  per-cell metrics warehouse plus ranking tables, bit-identical
  between an interrupted-and-resumed sweep and an uninterrupted one.

Durability is two-layered by design: the artifact store memoizes
*results* (a verified run dir is never recomputed) and the journal
memoizes *decisions* (quarantines survive restarts).  ``repro sweep
--resume`` after a crash re-plans from both and recomputes only
unfinished cells.  See ``docs/SWEEPS.md``.
"""

from repro.errors import SweepCellError, SweepError
from repro.sweep.chaos import ChaosSpec
from repro.sweep.journal import JOURNAL_NAME, SweepJournal
from repro.sweep.planner import SweepPlan, plan_sweep
from repro.sweep.report import build_report, render_report, write_report
from repro.sweep.runner import SweepResult, SweepRunner
from repro.sweep.spec import SWEEP_SCHEMA_VERSION, SweepCell, SweepSpec

__all__ = [
    "SWEEP_SCHEMA_VERSION",
    "SweepSpec",
    "SweepCell",
    "SweepJournal",
    "JOURNAL_NAME",
    "SweepPlan",
    "plan_sweep",
    "SweepRunner",
    "SweepResult",
    "ChaosSpec",
    "build_report",
    "render_report",
    "write_report",
    "SweepError",
    "SweepCellError",
]
