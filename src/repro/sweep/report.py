"""Cross-cell comparative report: the sweep's metrics warehouse.

After (or during) a campaign, the report walks the spec's cells and
collects every *verified* cell's ``metrics.json`` into one flat
warehouse, then builds ranking tables per metric — "which machine ran
AMG fastest", "which strategy had the best makespan" — across the whole
grid.

Determinism is a hard requirement here, because the kill-and-resume
test pins it: the report is a pure function of (spec, verified run
directories, quarantine set).  It contains no timestamps, no attempt
counts, no journal ordering — an interrupted-and-resumed sweep and an
uninterrupted one produce **byte-identical** ``sweep_report.json``.
Cells are reported in grid order; nested metrics flatten to dotted
keys (``model.makespan_hours``); the run-dir ``telemetry`` block is
excluded (it measures the host, not the experiment).
"""

from __future__ import annotations

from pathlib import Path

from repro.artifacts import verify_run
from repro.errors import ArtifactError
from repro.ioutils import atomic_write_json
from repro.sweep.journal import JOURNAL_NAME, SweepJournal
from repro.sweep.spec import SweepSpec

__all__ = ["REPORT_NAME", "build_report", "render_report", "write_report"]

REPORT_NAME = "sweep_report.json"

REPORT_VERSION = 1


def _flatten(payload, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a metrics document, dotted-keyed, sorted."""
    out: dict[str, float] = {}
    if not isinstance(payload, dict):
        return out
    for key in sorted(payload):
        if key == "telemetry" and not prefix:
            continue  # host-side observability, not experiment output
        value = payload[key]
        dotted = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[dotted] = float(value)
        elif isinstance(value, dict):
            out.update(_flatten(value, prefix=f"{dotted}."))
    return out


def build_report(spec: SweepSpec, run_root: str | Path) -> dict:
    """Assemble the warehouse + rankings for *spec* against *run_root*.

    Statuses are re-derived from first principles, not from runner
    state: ``complete`` iff the cell's run dir verifies right now,
    ``quarantined`` iff the journal's last word on the cell is
    quarantine, else ``pending``.  (``complete`` deliberately does not
    distinguish freshly-computed from memoized — that distinction is
    execution history, and would break resume bit-identity.)
    """
    run_root = Path(run_root)
    journal = SweepJournal(run_root / JOURNAL_NAME)
    state = SweepJournal.reduce(journal.read()) if journal.exists() else {}
    cells = []
    metric_values: dict[str, list[tuple[float, str]]] = {}
    for cell in spec.expand():
        run_dir = run_root / cell.run_dir_name
        status = "pending"
        metrics: dict[str, float] = {}
        try:
            run = verify_run(run_dir)
        except (ArtifactError, FileNotFoundError):
            run = None
        if run is not None:
            status = "complete"
            if "metrics.json" in run.manifest["files"]:
                metrics = _flatten(run.metrics())
        elif state.get(cell.cell_id, {}).get("event") == "quarantined":
            status = "quarantined"
        for key, value in metrics.items():
            metric_values.setdefault(key, []).append((value, cell.cell_id))
        cells.append({
            "cell": cell.cell_id,
            "axes": dict(cell.axes),
            "config_hash": cell.config_hash,
            "run_dir": cell.run_dir_name,
            "status": status,
            "metrics": metrics,
        })
    rankings = {
        key: [
            {"cell": cell_id, "value": value}
            for value, cell_id in sorted(pairs)
        ]
        for key, pairs in sorted(metric_values.items())
        if len(pairs) >= 2
    }
    complete = sum(1 for c in cells if c["status"] == "complete")
    quarantined = sum(1 for c in cells if c["status"] == "quarantined")
    return {
        "sweep_report_version": REPORT_VERSION,
        "name": spec.name,
        "command": spec.command,
        "spec_hash": spec.content_hash(),
        "cells_total": len(cells),
        "cells_complete": complete,
        "cells_quarantined": quarantined,
        "cells_pending": len(cells) - complete - quarantined,
        "cells": cells,
        "rankings": rankings,
    }


def write_report(report: dict, run_root: str | Path) -> Path:
    """Persist the report atomically as ``<run-root>/sweep_report.json``."""
    return atomic_write_json(Path(run_root) / REPORT_NAME, report)


def render_report(report: dict, top: int = 5) -> str:
    """Human-readable summary: status table plus top-N per ranking."""
    lines = [
        f"sweep {report['name']!r} ({report['command']}): "
        f"{report['cells_complete']}/{report['cells_total']} complete, "
        f"{report['cells_quarantined']} quarantined, "
        f"{report['cells_pending']} pending",
    ]
    width = max((len(_axes_label(c["axes"])) for c in report["cells"]),
                default=4)
    for cell in report["cells"]:
        label = _axes_label(cell["axes"])
        lines.append(f"  {cell['cell']}  {label:<{width}s}  "
                     f"{cell['status']}")
    for key, ranked in report["rankings"].items():
        lines.append(f"ranking by {key} (best first):")
        by_cell = {c["cell"]: c for c in report["cells"]}
        for entry in ranked[:top]:
            label = _axes_label(by_cell[entry["cell"]]["axes"])
            lines.append(f"  {entry['value']:>14.4f}  {label}")
    return "\n".join(lines)


def _axes_label(axes: dict) -> str:
    def fmt(value):
        if isinstance(value, (list, tuple)):
            return "+".join(str(v) for v in value)
        return str(value)

    return " ".join(f"{k}={fmt(v)}" for k, v in axes.items()) or "(no axes)"
