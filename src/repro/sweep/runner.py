"""The sweep execution engine: isolated workers, timeouts, retry,
quarantine.

Each pending cell runs in its **own** forked worker process — not a
shared pool — because real failure semantics need per-cell authority:
a hung cell must be killable without draining anyone else's queue, a
SIGKILLed worker must be classifiable without poisoning a pool, and a
poison cell must die alone.  The worker writes the cell's run directory
through the ordinary CLI replay path (``<command> --config <cell.json>
--run-dir <root>``), so a sweep cell is bit-identical to the same
config run by hand.

Outcome classification (all surfaced as typed
:class:`~repro.errors.SweepCellError` records, never a crashed parent):

=============   ====================================================
kind            evidence
=============   ====================================================
worker-death    process died on a signal, no result file (the
                in-process ``BrokenProcessPool`` analogue)
timeout         wall-clock budget exceeded; the runner SIGTERMs,
                then SIGKILLs, the worker
nonzero-exit    the command raised / returned a nonzero exit code
verify-failed   exit 0 but the run dir fails ``verify_run`` (torn
                or corrupted artifacts)
=============   ====================================================

Every failed attempt consults the cell's
:class:`~repro.resilience.retry.RetryPolicy`: transient failures are
re-scheduled after a backoff whose jitter is seeded per cell id (so a
burst of failures does not stampede back in lockstep), and a cell that
exhausts its budget is **quarantined** — journaled, reported, and
stepped around so one poison cell cannot sink a 300-cell campaign.

Durability: every state transition is journaled (fsync-per-line) before
the runner acts on it, and results live only in verified run
directories — so the runner itself holds no state a SIGKILL could lose.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import shutil
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import Process
from multiprocessing.connection import wait as wait_sentinels
from pathlib import Path

import repro.telemetry as telemetry
from repro.artifacts import verify_run
from repro.errors import ArtifactError, SweepCellError
from repro.ioutils import atomic_write_json
from repro.resilience.retry import RetryPolicy
from repro.sweep.chaos import ChaosSpec, apply_worker_fault, corrupt_run_dir
from repro.sweep.planner import CellPlan, SweepPlan

__all__ = ["SweepRunner", "SweepResult", "CellOutcome"]

#: Seconds a timed-out worker gets to die on SIGTERM before SIGKILL.
_TERM_GRACE = 0.5

#: Supervisor poll interval upper bound (sentinel wait timeout).
_POLL_S = 0.05


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------
def _cell_worker(payload: dict) -> None:
    """Run one cell attempt in an isolated process.

    Redirects stdout/stderr to the cell's log, fires any armed chaos
    fault points, executes the cell's command through the CLI replay
    path, and reports through an atomically-written result file.  The
    parent classifies from (result file, process exit code): a missing
    result file plus a signal death is ``worker-death``.
    """
    try:
        fd = os.open(payload["log_path"],
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        os.dup2(fd, 1)
        os.dup2(fd, 2)
        os.close(fd)
        print(f"--- cell {payload['cell_id']} attempt "
              f"{payload['attempt']} ---", flush=True)
        for kind in payload["faults"]:
            if kind != "corrupt":
                apply_worker_fault(kind)
        # Imported here, not at module level: the CLI sits *above* the
        # sweep layer (it owns the sweep subcommand); only the worker
        # process, which is an execution sandbox, may call back into it.
        from repro.cli import main as cli_main

        args = [
            payload["command"],
            "--config", payload["config_path"],
            "--run-dir", payload["run_root"],
        ]
        mode = payload.get("telemetry")
        if mode:
            args += ["--telemetry", mode]
        trace = payload.get("trace") or {}
        if trace.get("trace_id") is not None \
                or trace.get("parent_span_id") is not None:
            # Installed before the CLI runs (and surviving its telemetry
            # reset): every span the cell records carries the parent
            # sweep's trace id, and the cell's root spans parent to the
            # parent process's sweep.run span — so the merged Chrome
            # trace shows one causal tree across processes.
            with telemetry.trace_context(trace.get("trace_id"),
                                         trace.get("parent_span_id")):
                code = cli_main(args)
        else:
            code = cli_main(args)
        if "corrupt" in payload["faults"]:
            corrupt_run_dir(Path(payload["run_dir"]))
        atomic_write_json(payload["result_path"],
                          {"exit_code": code}, indent=None)
        os._exit(0)
    except BaseException:
        traceback.print_exc()
        try:
            atomic_write_json(
                payload["result_path"],
                {"exit_code": 1,
                 "error": traceback.format_exc(limit=3).strip()
                                    .splitlines()[-1]},
                indent=None,
            )
        except OSError:
            pass
        os._exit(1)


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------
@dataclass
class CellOutcome:
    """Final disposition of one cell after the runner finishes."""

    cell_id: str
    status: str                     # "done" | "cached" | "quarantined"
    attempts: int = 0
    errors: list[SweepCellError] = field(default_factory=list)


@dataclass
class SweepResult:
    """What the sweep accomplished, per cell and in aggregate."""

    outcomes: list[CellOutcome]

    @property
    def counts(self) -> dict[str, int]:
        out = {"done": 0, "cached": 0, "quarantined": 0}
        for outcome in self.outcomes:
            out[outcome.status] += 1
        return out

    @property
    def quarantined(self) -> list[CellOutcome]:
        return [o for o in self.outcomes if o.status == "quarantined"]

    @property
    def ok(self) -> bool:
        return not self.quarantined


@dataclass
class _Running:
    plan: CellPlan
    attempt: int
    process: Process
    deadline: float | None
    result_path: Path
    started: float
    timed_out: bool = False


class SweepRunner:
    """Drives a :class:`SweepPlan` to completion.

    Parameters
    ----------
    plan:
        Output of :func:`repro.sweep.planner.plan_sweep`.
    jobs:
        Concurrent worker processes.
    timeout:
        Per-cell wall-clock budget in seconds (None = unlimited).
    retry:
        Backoff/budget policy; ``max_attempts`` is the quarantine
        threshold.  Delays are real (the runner sleeps), so sweeps
        normally use a small ``backoff_base`` — transient failures are
        crashes, not rate limits.
    chaos:
        Armed fault points (default: none).
    """

    def __init__(self, plan: SweepPlan, *, jobs: int = 1,
                 timeout: float | None = None,
                 retry: RetryPolicy | None = None,
                 chaos: ChaosSpec | None = None):
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        self.plan = plan
        self.jobs = max(1, jobs)
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=3, backoff_base=1.0, backoff_cap=30.0, jitter=0.1
        )
        self.chaos = chaos or ChaosSpec()
        # Fork keeps worker startup cheap; on platforms without it the
        # spawn fallback preserves isolation, workers just re-import.
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._scratch = plan.run_root / ".sweep"
        self._done_count = 0
        self._parent_exit_after = self.chaos.parent_exit_after()

    # ------------------------------------------------------------------
    def run(self) -> SweepResult:
        """Execute every pending cell; never raises for cell failures."""
        plan = self.plan
        journal = plan.journal
        plan.run_root.mkdir(parents=True, exist_ok=True)
        for sub in ("configs", "logs", "results"):
            (self._scratch / sub).mkdir(parents=True, exist_ok=True)
        journal.open_sweep(plan.spec.content_hash(), plan.spec.name)
        outcomes: dict[str, CellOutcome] = {}
        # In trace mode the whole sweep runs under one trace id (the
        # ambient one when the sweep is itself a child, else freshly
        # minted) so cell subprocesses can stamp their spans into it.
        trace_scope = contextlib.nullcontext()
        if telemetry.tracing_enabled():
            trace_id = telemetry.current_trace()[0] or telemetry.new_trace_id()
            trace_scope = telemetry.trace_context(trace_id)
        with trace_scope, telemetry.span("sweep.run", sweep=plan.spec.name,
                                         cells=len(plan.cells)):
            for cp in plan.cells:
                if cp.status == "cached":
                    journal.record("cached", cp.cell.cell_id,
                                   cp.cell.config_hash)
                    telemetry.counter("sweep.cells.cached").inc()
                    outcomes[cp.cell.cell_id] = CellOutcome(
                        cp.cell.cell_id, "cached")
                elif cp.status == "quarantined":
                    telemetry.counter("sweep.cells.quarantined").inc()
                    outcomes[cp.cell.cell_id] = CellOutcome(
                        cp.cell.cell_id, "quarantined")
            pending = plan.by_status("pending")
            for cp in pending:
                telemetry.counter("sweep.cells.scheduled").inc()
                # Frozen cell config, written up front: sweep provenance
                # plus the worker's --config input.
                atomic_write_json(self._config_path(cp),
                                  cp.cell.experiment.to_dict())
            self._execute(pending, outcomes)
        ordered = [outcomes[cp.cell.cell_id] for cp in plan.cells]
        return SweepResult(outcomes=ordered)

    # ------------------------------------------------------------------
    def _config_path(self, cp: CellPlan) -> Path:
        return self._scratch / "configs" / f"{cp.cell.cell_id}.json"

    def _launch(self, cp: CellPlan, attempt: int) -> _Running:
        cell = cp.cell
        if cp.run_dir.is_dir() and (attempt > 1 or cp.stale):
            # Torn output from a killed/failed attempt: the directory is
            # content-addressed and unverified, so wiping it is the
            # crash-recovery path, not data loss.
            shutil.rmtree(cp.run_dir)
        result_path = (self._scratch / "results"
                       / f"{cell.cell_id}.attempt{attempt}.json")
        if result_path.exists():
            result_path.unlink()
        log_path = (self._scratch / "logs"
                    / f"{cell.cell_id}.attempt{attempt}.log")
        payload = {
            "cell_id": cell.cell_id,
            "attempt": attempt,
            "command": cell.experiment.command,
            "config_path": str(self._config_path(cp)),
            "run_root": str(self.plan.run_root),
            "run_dir": str(cp.run_dir),
            "result_path": str(result_path),
            "log_path": str(log_path),
            "faults": list(self.chaos.worker_faults(
                cell.index, cell.cell_id, attempt)),
        }
        if telemetry.tracing_enabled():
            # The sweep.run span is open on this thread, so the cell's
            # spans parent under it and inherit the sweep's trace id.
            trace_id, parent_span = telemetry.current_trace()
            payload["telemetry"] = telemetry.mode()
            payload["trace"] = {"trace_id": trace_id,
                                "parent_span_id": parent_span}
        process = self._ctx.Process(target=_cell_worker, args=(payload,),
                                    daemon=False)
        self.plan.journal.record("started", cell.cell_id, cell.config_hash,
                                 attempt=attempt)
        telemetry.counter("sweep.cells.started").inc()
        process.start()
        now = time.monotonic()
        deadline = now + self.timeout if self.timeout is not None else None
        return _Running(plan=cp, attempt=attempt, process=process,
                        deadline=deadline, result_path=result_path,
                        started=now)

    # ------------------------------------------------------------------
    def _classify(self, run: _Running,
                  timed_out: bool) -> SweepCellError | None:
        """The attempt's failure, or None when the cell is verified-done."""
        cell = run.plan.cell
        if timed_out:
            return SweepCellError(
                cell.cell_id, "timeout", run.attempt,
                f"exceeded {self.timeout:.1f}s wall clock")
        exitcode = run.process.exitcode
        result = None
        if run.result_path.is_file():
            try:
                result = json.loads(run.result_path.read_text())
            except (OSError, ValueError):
                result = None
        if result is None:
            if exitcode is not None and exitcode < 0:
                return SweepCellError(
                    cell.cell_id, "worker-death", run.attempt,
                    f"killed by signal {-exitcode}")
            return SweepCellError(
                cell.cell_id, "worker-death", run.attempt,
                f"worker exited {exitcode} without reporting a result")
        if result.get("exit_code") != 0:
            return SweepCellError(
                cell.cell_id, "nonzero-exit", run.attempt,
                str(result.get("error")
                    or f"command exit code {result.get('exit_code')}"))
        try:
            verify_run(run.plan.run_dir)
        except ArtifactError as exc:
            return SweepCellError(
                cell.cell_id, "verify-failed", run.attempt, str(exc))
        return None

    # ------------------------------------------------------------------
    def _reap_timeouts(self, running: list[_Running]) -> None:
        now = time.monotonic()
        for run in running:
            if run.deadline is not None and now > run.deadline \
                    and run.process.is_alive():
                run.process.terminate()
                run.process.join(_TERM_GRACE)
                if run.process.is_alive():
                    run.process.kill()
                    run.process.join()
                run.timed_out = True

    def _execute(self, pending: list[CellPlan],
                 outcomes: dict[str, CellOutcome]) -> None:
        for cp in pending:
            # Pessimistic default, flipped to "done" on verified success
            # — so even an unexpected supervisor exit reports honestly.
            outcomes[cp.cell.cell_id] = CellOutcome(cp.cell.cell_id,
                                                    "quarantined")
        # (cell plan, attempt, not-before time)
        ready: list[tuple[CellPlan, int, float]] = [
            (cp, 1, 0.0) for cp in pending
        ]
        running: list[_Running] = []
        while ready or running:
            now = time.monotonic()
            while len(running) < self.jobs:
                idx = next((i for i, (_, _, t) in enumerate(ready)
                            if t <= now), None)
                if idx is None:
                    break
                cp, attempt, _ = ready.pop(idx)
                running.append(self._launch(cp, attempt))
            if not running:
                # Everything ready is backing off; sleep to the nearest
                # retry time.
                wake = min(t for _, _, t in ready)
                time.sleep(max(0.0, min(wake - time.monotonic(), 1.0)))
                continue
            sentinels = [run.process.sentinel for run in running]
            next_deadline = min(
                (run.deadline for run in running
                 if run.deadline is not None),
                default=None,
            )
            wait_for = _POLL_S
            if next_deadline is not None:
                wait_for = min(wait_for, max(0.0, next_deadline - now))
            wait_sentinels(sentinels, timeout=wait_for)
            self._reap_timeouts(running)
            still_running: list[_Running] = []
            for run in running:
                if run.process.is_alive():
                    still_running.append(run)
                    continue
                run.process.join()
                self._finish(run, ready, outcomes)
            running = still_running

    # ------------------------------------------------------------------
    def _finish(self, run: _Running,
                ready: list[tuple[CellPlan, int, float]],
                outcomes: dict[str, CellOutcome]) -> None:
        journal = self.plan.journal
        cell = run.plan.cell
        outcome = outcomes[cell.cell_id]
        outcome.attempts = run.attempt
        timed_out = getattr(run, "timed_out", False)
        error = self._classify(run, timed_out)
        duration = time.monotonic() - run.started
        telemetry.histogram("sweep.cell.seconds").observe(duration)
        if error is None:
            journal.record("done", cell.cell_id, cell.config_hash,
                           attempt=run.attempt)
            telemetry.counter("sweep.cells.done").inc()
            outcome.status = "done"
            self._done_count += 1
            if self._parent_exit_after is not None \
                    and self._done_count >= self._parent_exit_after:
                # Chaos: simulate `kill -9` of the orchestrator itself.
                # os._exit skips every finally/atexit, exactly like the
                # real thing; the journal is already durable per line.
                os._exit(70)
            return
        outcome.errors.append(error)
        journal.record("failed", cell.cell_id, cell.config_hash,
                       attempt=run.attempt, kind=error.kind,
                       detail=error.detail)
        telemetry.counter(f"sweep.cells.failed.{error.kind}").inc()
        if self.retry.gives_up(run.attempt):
            journal.record("quarantined", cell.cell_id, cell.config_hash,
                           attempt=run.attempt, kind=error.kind)
            telemetry.counter("sweep.cells.quarantined").inc()
            outcome.status = "quarantined"
            return
        delay = self.retry.delay(run.attempt, job_id=cell.cell_id)
        journal.record("retry-scheduled", cell.cell_id, cell.config_hash,
                       attempt=run.attempt + 1, delay=round(delay, 3))
        telemetry.counter("sweep.cells.retried").inc()
        ready.append((run.plan, run.attempt + 1,
                      time.monotonic() + delay))
