"""Declarative SLOs with sliding-window burn-rate tracking.

An *SLO spec* states an objective over requests — "99% of predictions
complete within 50 ms" (latency) or "99.9% of requests succeed"
(availability) — and its complement is the *error budget*: the
fraction of requests allowed to violate the objective.  The *burn
rate* over a window is how fast that budget is being spent::

    burn = bad_fraction(window) / (1 - target)

``burn == 1`` means the budget is being consumed exactly at the rate
that exhausts it over the SLO period; ``burn == 10`` exhausts it 10x
faster.  Multi-window alerting (the Google SRE workbook pattern) pairs
a *fast* window — reacts quickly, noisy alone — with a *slow* window —
smooth, laggy alone — and fires only when **both** exceed a threshold,
which filters blips without missing sustained burns.

Three layers, all pure and clock-injectable (tests pass a fake clock;
production uses ``time.monotonic``):

* :class:`SLOSpec` — the declarative objective (validated, JSON
  round-trippable);
* :class:`BurnRateTracker` — cumulative ``(good, total)`` samples in a
  deque, windowed bad-fraction / burn-rate / budget-remaining queries;
  :func:`histogram_good_total` adapts the telemetry
  :class:`~repro.telemetry.metrics.Histogram` bucket state so existing
  latency histograms can feed a tracker without per-request hooks;
* :class:`BurnAlert` / :class:`SLOShedPolicy` — multi-window rules; the
  shed policy is what ``repro.serve.admission`` consults in SLO mode
  (shed on budget burn instead of raw in-flight count).

Layering: imports only ``repro.errors`` (enforced by
``tools/check_layering.py``), like every telemetry submodule.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.errors import TelemetryError

__all__ = [
    "SLOSpec",
    "BurnRateTracker",
    "BurnAlert",
    "SLOShedPolicy",
    "histogram_good_total",
]

#: Objectives a spec may declare.
OBJECTIVES = ("latency", "availability")


@dataclass(frozen=True)
class SLOSpec:
    """One declarative service-level objective.

    ``target`` is the good-fraction objective in (0, 1); the error
    budget is its complement.  Latency objectives additionally name the
    telemetry histogram that observes the latency and the threshold a
    good request must meet (``le`` semantics, matching the histogram's
    upper-edge-inclusive buckets).
    """

    name: str
    objective: str
    target: float
    histogram: str | None = None
    threshold_s: float | None = None
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise TelemetryError("SLO spec needs a non-empty name")
        if self.objective not in OBJECTIVES:
            raise TelemetryError(
                f"SLO {self.name!r}: unknown objective {self.objective!r} "
                f"(choose from {', '.join(OBJECTIVES)})"
            )
        if not 0.0 < self.target < 1.0:
            raise TelemetryError(
                f"SLO {self.name!r}: target must be in (0, 1), got "
                f"{self.target}"
            )
        if self.objective == "latency":
            if self.threshold_s is None or self.threshold_s <= 0:
                raise TelemetryError(
                    f"SLO {self.name!r}: latency objective needs "
                    f"threshold_s > 0, got {self.threshold_s}"
                )

    @property
    def error_budget(self) -> float:
        """The allowed bad fraction, ``1 - target``."""
        return 1.0 - self.target

    def to_dict(self) -> dict:
        out = {"name": self.name, "objective": self.objective,
               "target": self.target}
        if self.histogram is not None:
            out["histogram"] = self.histogram
        if self.threshold_s is not None:
            out["threshold_s"] = self.threshold_s
        if self.description:
            out["description"] = self.description
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "SLOSpec":
        if not isinstance(payload, dict):
            raise TelemetryError(
                f"SLO spec must be a dict, got {type(payload).__name__}"
            )
        known = {"name", "objective", "target", "histogram",
                 "threshold_s", "description"}
        unknown = set(payload) - known
        if unknown:
            raise TelemetryError(
                f"SLO spec has unknown key(s): {', '.join(sorted(unknown))}"
            )
        try:
            return cls(
                name=str(payload.get("name", "")),
                objective=str(payload.get("objective", "")),
                target=float(payload.get("target", 0.0)),
                histogram=payload.get("histogram"),
                threshold_s=(None if payload.get("threshold_s") is None
                             else float(payload["threshold_s"])),
                description=str(payload.get("description", "")),
            )
        except (TypeError, ValueError) as exc:
            raise TelemetryError(f"malformed SLO spec: {exc}") from exc


def histogram_good_total(state: dict, threshold_s: float) -> tuple[int, int]:
    """``(good, total)`` from a Histogram ``state()`` dict.

    *Good* sums every bucket whose upper edge is <= *threshold_s*
    (matching the histogram's ``le`` semantics).  When the threshold
    falls inside a bucket the whole bucket counts as bad — the
    conservative reading; pick a threshold equal to a bucket edge for
    an exact split.
    """
    edges = state.get("edges", [])
    counts = state.get("counts", [])
    good = 0
    for edge, count in zip(edges, counts):
        if float(edge) <= threshold_s:
            good += int(count)
        else:
            break
    return good, int(state.get("count", 0))


class BurnRateTracker:
    """Sliding windows over cumulative ``(good, total)`` samples.

    Append-only: callers :meth:`record` running cumulative totals (or
    feed histogram snapshots via :meth:`observe_histogram`), and
    windowed queries diff the newest sample against the newest sample
    at or before the window start.  A synthetic origin sample ``(t0,
    0, 0)`` makes young trackers well-defined, and samples older than
    *horizon_s* are pruned (keeping one baseline at the horizon edge),
    so memory stays bounded.
    """

    def __init__(self, spec: SLOSpec, clock=time.monotonic,
                 horizon_s: float = 3600.0):
        self.spec = spec
        self._clock = clock
        self.horizon_s = float(horizon_s)
        self._samples: deque = deque([(float(clock()), 0, 0)])

    def record(self, good: int, total: int, now: float | None = None) -> None:
        """Append cumulative totals (must be non-decreasing)."""
        now = float(self._clock() if now is None else now)
        self._samples.append((now, int(good), int(total)))
        while len(self._samples) >= 2 \
                and self._samples[1][0] <= now - self.horizon_s:
            self._samples.popleft()

    def observe_histogram(self, state: dict,
                          now: float | None = None) -> None:
        """Record a latency histogram snapshot against the threshold."""
        if self.spec.threshold_s is None:
            raise TelemetryError(
                f"SLO {self.spec.name!r} has no latency threshold; feed "
                "availability counts via record()"
            )
        good, total = histogram_good_total(state, self.spec.threshold_s)
        self.record(good, total, now)

    # ------------------------------------------------------------------
    def _delta(self, window_s: float, now: float) -> tuple[int, int]:
        cutoff = now - window_s
        baseline = self._samples[0]
        for sample in self._samples:
            if sample[0] <= cutoff:
                baseline = sample
            else:
                break
        latest = self._samples[-1]
        return latest[1] - baseline[1], latest[2] - baseline[2]

    def bad_fraction(self, window_s: float,
                     now: float | None = None) -> float:
        """Fraction of requests in the window violating the objective."""
        now = float(self._clock() if now is None else now)
        good, total = self._delta(window_s, now)
        if total <= 0:
            return 0.0
        return (total - good) / total

    def burn_rate(self, window_s: float, now: float | None = None) -> float:
        """Budget-consumption speed: 1.0 = exactly on budget."""
        return self.bad_fraction(window_s, now) / self.spec.error_budget

    def budget_remaining(self, window_s: float,
                         now: float | None = None) -> float:
        """Fraction of the window's error allowance left (can go < 0)."""
        return 1.0 - self.burn_rate(window_s, now)

    def window_total(self, window_s: float,
                     now: float | None = None) -> int:
        """Requests observed inside the window."""
        now = float(self._clock() if now is None else now)
        return self._delta(window_s, now)[1]


@dataclass(frozen=True)
class BurnAlert:
    """Multi-window burn alert: fires when BOTH windows exceed the bar."""

    name: str
    burn_threshold: float
    fast_window_s: float = 60.0
    slow_window_s: float = 600.0

    def evaluate(self, tracker: BurnRateTracker,
                 now: float | None = None) -> dict:
        """``{"name", "firing", "fast_burn", "slow_burn", ...}``."""
        fast = tracker.burn_rate(self.fast_window_s, now)
        slow = tracker.burn_rate(self.slow_window_s, now)
        return {
            "name": self.name,
            "burn_threshold": self.burn_threshold,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "fast_burn": fast,
            "slow_burn": slow,
            "firing": fast >= self.burn_threshold
            and slow >= self.burn_threshold,
        }


class SLOShedPolicy:
    """Burn-rate-driven admission policy for the serving layer.

    Classifies each finished request good/bad against the spec
    (availability: ``ok``; latency: ``ok`` and under the threshold),
    tracks cumulative totals through a :class:`BurnRateTracker`, and
    derives an admission decision from two windows:

    * **shed** when both fast and slow burns reach ``shed_burn``
      (sustained overload — the multi-window rule keeps one slow
      request from tripping it once traffic history exists);
    * **degraded** when the fast burn reaches ``degrade_burn``;
    * **full** otherwise, including before any request has finished.

    Thread-safe; decisions are pure reads of recorded state, so a
    seeded load test reproduces exact shed counts run after run.
    """

    def __init__(self, spec: SLOSpec, *, fast_window_s: float = 5.0,
                 slow_window_s: float = 30.0, degrade_burn: float = 1.0,
                 shed_burn: float = 4.0, clock=time.monotonic):
        if fast_window_s <= 0 or slow_window_s < fast_window_s:
            raise TelemetryError(
                "SLO shed policy needs 0 < fast_window_s <= slow_window_s, "
                f"got {fast_window_s}/{slow_window_s}"
            )
        if degrade_burn <= 0 or shed_burn < degrade_burn:
            raise TelemetryError(
                "SLO shed policy needs 0 < degrade_burn <= shed_burn, got "
                f"{degrade_burn}/{shed_burn}"
            )
        self.spec = spec
        self.fast_window_s = float(fast_window_s)
        self.slow_window_s = float(slow_window_s)
        self.degrade_burn = float(degrade_burn)
        self.shed_burn = float(shed_burn)
        self.tracker = BurnRateTracker(
            spec, clock=clock, horizon_s=max(3600.0, 2 * slow_window_s)
        )
        self._lock = threading.Lock()
        self._good = 0
        self._total = 0

    def observe(self, latency_s: float, ok: bool = True) -> None:
        """Account one finished request."""
        bad = not ok or (
            self.spec.objective == "latency"
            and self.spec.threshold_s is not None
            and latency_s > self.spec.threshold_s
        )
        with self._lock:
            self._total += 1
            if not bad:
                self._good += 1
            self.tracker.record(self._good, self._total)

    def decision(self, now: float | None = None) -> str:
        """``"full"`` | ``"degraded"`` | ``"shed"`` right now."""
        if self._total == 0:
            return "full"
        fast = self.tracker.burn_rate(self.fast_window_s, now)
        slow = self.tracker.burn_rate(self.slow_window_s, now)
        if fast >= self.shed_burn and slow >= self.shed_burn:
            return "shed"
        if fast >= self.degrade_burn:
            return "degraded"
        return "full"

    def snapshot(self, now: float | None = None) -> dict:
        """JSON-ready state for ``/metrics`` and run reports."""
        windows = {}
        for label, window_s in (("fast", self.fast_window_s),
                                ("slow", self.slow_window_s)):
            windows[label] = {
                "window_s": window_s,
                "bad_fraction": self.tracker.bad_fraction(window_s, now),
                "burn_rate": self.tracker.burn_rate(window_s, now),
                "budget_remaining": self.tracker.budget_remaining(
                    window_s, now
                ),
            }
        return {
            "spec": self.spec.to_dict(),
            "degrade_burn": self.degrade_burn,
            "shed_burn": self.shed_burn,
            "good": self._good,
            "total": self._total,
            "windows": windows,
            "decision": self.decision(now),
        }
