"""Counters, gauges, and fixed-bucket histograms with mergeable snapshots.

The registry is the *aggregation* half of the telemetry subsystem (the
tracing half lives in :mod:`repro.telemetry.spans`).  Three metric kinds
cover every counter-style signal the instrumented layers emit:

* :class:`Counter`   — monotonically increasing integer (cache hits,
  scheduler wakeups, degradation-tier uses).
* :class:`Gauge`     — last-written float (dataset rows, queue depth).
* :class:`Histogram` — fixed-bucket distribution (per-round fit times,
  inference batch sizes).  Buckets are *fixed at creation* so two
  histograms of the same name are mergeable by element-wise addition —
  the property that makes cross-process aggregation exact rather than
  approximate.

Snapshots are plain JSON-ready dicts with deterministic key order.
:meth:`MetricsRegistry.merge_snapshot` folds one registry's snapshot
into another — this is how :func:`repro.parallel.run_tasks` ships each
worker process's metrics back over its ordered result channel and the
parent ends up with exactly the numbers a sequential run would have
counted.

Thread safety: creation of metrics is lock-protected; updates rely on a
per-metric lock for counters/histograms (gauges are single writes).
Disabled-mode call sites never reach these objects at all — the
module-level accessors in :mod:`repro.telemetry` hand out a shared
no-op metric instead (see :data:`NULL_METRIC`).
"""

from __future__ import annotations

import threading
from bisect import bisect_left

from repro.errors import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetric",
    "NULL_METRIC",
    "LATENCY_BUCKETS_S",
    "SIZE_BUCKETS",
]

#: Latency buckets in seconds: 1 µs .. ~100 s in x4 steps.  Wide enough
#: for both a single flat-ensemble predict call and a full training run.
LATENCY_BUCKETS_S: tuple[float, ...] = tuple(
    1e-6 * 4 ** i for i in range(14)
)

#: Size buckets (rows, events, records): 1 .. ~1M in x4 steps.
SIZE_BUCKETS: tuple[float, ...] = tuple(float(4 ** i) for i in range(11))


class Counter:
    """Monotonic counter; :meth:`inc` only ever adds.

    ``_touched`` records "written since creation or the last registry
    reset" — snapshots include only touched metrics, so a reset
    registry reports nothing until new writes land even though the
    metric objects themselves survive (see
    :meth:`MetricsRegistry.reset`).
    """

    __slots__ = ("name", "_value", "_lock", "_touched")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()
        self._touched = False

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise TelemetryError(f"counter {self.name!r}: inc({n}) is "
                                 "negative (counters only go up)")
        with self._lock:
            self._value += n
            self._touched = True

    @property
    def value(self) -> int:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0
            self._touched = False


class Gauge:
    """Last-written value; :meth:`set` replaces."""

    __slots__ = ("name", "_value", "_touched")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._touched = False

    def set(self, value: float) -> None:
        self._value = float(value)
        self._touched = True

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0
        self._touched = False


class Histogram:
    """Fixed-bucket histogram with an overflow bucket.

    Bucket *i* counts observations ``edges[i-1] < v <= edges[i]``
    (upper-edge-inclusive, Prometheus-style ``le`` semantics);
    ``counts[-1]`` is the overflow bucket for ``v > edges[-1]``, so
    ``len(counts) == len(edges) + 1`` and every observation lands
    somewhere.  Sum/count/min/max ride along for exact means.
    """

    __slots__ = ("name", "edges", "counts", "_sum", "_count",
                 "_min", "_max", "_lock", "_touched")

    def __init__(self, name: str, buckets: tuple[float, ...]):
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise TelemetryError(f"histogram {name!r} needs >= 1 bucket edge")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise TelemetryError(
                f"histogram {name!r} bucket edges must be strictly "
                f"increasing, got {edges}"
            )
        self.name = name
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = threading.Lock()
        self._touched = False

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self.edges, value)
        with self._lock:
            self._touched = True
            self.counts[idx] += 1
            self._sum += value
            self._count += 1
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold *other*'s observations into this histogram (exact)."""
        self.merge_state(other.state())
        return self

    # -- snapshot plumbing ---------------------------------------------
    def state(self) -> dict:
        """JSON-ready state (what snapshots carry)."""
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self._sum,
            "count": self._count,
            "min": self._min,
            "max": self._max,
        }

    def merge_state(self, state: dict) -> None:
        if tuple(state.get("edges", ())) != self.edges:
            raise TelemetryError(
                f"histogram {self.name!r}: cannot merge mismatched bucket "
                f"edges {tuple(state.get('edges', ()))} into {self.edges}"
            )
        counts = state.get("counts", [])
        if len(counts) != len(self.counts):
            raise TelemetryError(
                f"histogram {self.name!r}: snapshot has {len(counts)} "
                f"buckets, expected {len(self.counts)}"
            )
        with self._lock:
            self._touched = True
            for i, c in enumerate(counts):
                self.counts[i] += int(c)
            self._sum += float(state.get("sum", 0.0))
            self._count += int(state.get("count", 0))
            for bound, pick in (("min", min), ("max", max)):
                theirs = state.get(bound)
                if theirs is None:
                    continue
                ours = self._min if bound == "min" else self._max
                merged = float(theirs) if ours is None else pick(
                    ours, float(theirs)
                )
                if bound == "min":
                    self._min = merged
                else:
                    self._max = merged

    def _reset(self) -> None:
        with self._lock:
            self.counts = [0] * len(self.counts)
            self._sum = 0.0
            self._count = 0
            self._min = None
            self._max = None
            self._touched = False


class NullMetric:
    """Shared do-nothing stand-in handed out when telemetry is off.

    Supports the full update surface of all three metric kinds so call
    sites stay branchless: ``telemetry.counter("x").inc()`` costs two
    no-op calls when disabled, and nothing is ever recorded.
    """

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_METRIC = NullMetric()


class MetricsRegistry:
    """Name-keyed metric store with get-or-create accessors.

    A name permanently belongs to the kind that first created it;
    re-requesting it with a different kind (or different histogram
    buckets) raises :class:`~repro.errors.TelemetryError` instead of
    silently splitting the series.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, kind: type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = factory()
                    self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise TelemetryError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"requested as {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = LATENCY_BUCKETS_S) -> Histogram:
        hist = self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets)
        )
        if hist.edges != tuple(float(b) for b in buckets):
            raise TelemetryError(
                f"histogram {name!r} already exists with buckets "
                f"{hist.edges}; requested {tuple(buckets)}"
            )
        return hist

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Zero every metric *in place*, keeping the objects registered.

        Clearing the dict instead (the old behavior) orphaned every
        handed-out handle: a caller holding a ``Counter`` across a
        reset kept writing to an instance the registry had forgotten,
        so its increments silently vanished from snapshots.  In-place
        zeroing preserves handle identity — ``registry.counter(name)``
        before and after a reset return the same object — and the
        per-metric touched flag keeps never-rewritten metrics out of
        post-reset snapshots.
        """
        with self._lock:
            for metric in self._metrics.values():
                metric._reset()

    def snapshot(self) -> dict:
        """JSON-ready snapshot: ``{"counters": {...}, "gauges": {...},
        "histograms": {...}}`` with names sorted for determinism.

        Only metrics written since creation or the last reset are
        included — a reset registry snapshots empty, and fork-inherited
        worker registries never ship zeroed gauges that would clobber
        the parent's values on merge.
        """
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if not metric._touched:
                continue
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.state()
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a snapshot (e.g. from a worker process) into this
        registry: counters add, gauges last-write-wins, histograms merge
        bucket-wise (edges must match)."""
        if not isinstance(snapshot, dict):
            raise TelemetryError(
                f"snapshot must be a dict, got {type(snapshot).__name__}"
            )
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, state in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, tuple(state.get("edges", ())))
            hist.merge_state(state)
