"""Human-readable summaries of saved telemetry artifacts.

``repro report <run-dir>`` loads ``metrics.json`` / ``trace.json`` from
a finalized run directory and hands the parsed payloads here.  Every
function is pure (JSON in, text out) and depends on nothing above
:mod:`repro.errors`, so the report path works on any machine with the
artifacts — no simulator, dataset, or model stack required.

Self-time accounting: a span's *self time* is its duration minus the
durations of its direct children (reconstructed from the
``span_id``/``parent_id`` pairs the Chrome exporter stores in each
event's ``args``).  Sorting by total self time surfaces the phases that
actually burn wall-clock, not the outer spans that merely contain them.
"""

from __future__ import annotations

__all__ = [
    "span_rollup",
    "format_span_table",
    "format_metrics_tables",
    "format_uncertainty_table",
    "format_slo_table",
    "render_run_report",
]


def _span_events(trace: dict) -> list[dict]:
    events = trace.get("traceEvents", trace if isinstance(trace, list) else [])
    return [e for e in events if e.get("ph") == "X"]


def span_rollup(trace: dict) -> list[dict]:
    """Aggregate a Chrome trace into per-span-name totals.

    Returns rows ``{"name", "calls", "total_s", "self_s", "errors"}``
    sorted by self time, descending.
    """
    events = _span_events(trace)
    child_dur: dict[int, float] = {}
    for event in events:
        parent = (event.get("args") or {}).get("parent_id")
        if parent is not None:
            child_dur[parent] = child_dur.get(parent, 0.0) \
                + float(event.get("dur", 0.0))
    rows: dict[str, dict] = {}
    for event in events:
        args = event.get("args") or {}
        dur_us = float(event.get("dur", 0.0))
        self_us = dur_us - child_dur.get(args.get("span_id"), 0.0)
        row = rows.setdefault(event.get("name", "?"), {
            "name": event.get("name", "?"),
            "calls": 0, "total_s": 0.0, "self_s": 0.0, "errors": 0,
        })
        row["calls"] += 1
        row["total_s"] += dur_us / 1e6
        row["self_s"] += self_us / 1e6
        if args.get("error"):
            row["errors"] += 1
    return sorted(rows.values(), key=lambda r: (-r["self_s"], r["name"]))


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return lines


def format_span_table(trace: dict, limit: int = 15) -> str:
    """Top spans by self time, as a fixed-width text table."""
    rollup = span_rollup(trace)
    if not rollup:
        return "no spans recorded"
    rows = [
        [r["name"], str(r["calls"]), f"{r['total_s']:.4f}",
         f"{r['self_s']:.4f}"] + (["!"] if r["errors"] else [""])
        for r in rollup[:limit]
    ]
    lines = _table(["span", "calls", "total_s", "self_s", "err"], rows)
    if len(rollup) > limit:
        lines.append(f"... and {len(rollup) - limit} more span names")
    return "\n".join(lines)


def format_metrics_tables(snapshot: dict) -> str:
    """Counter/gauge/histogram tables from a metrics snapshot."""
    sections: list[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    if counters or gauges:
        rows = [[name, str(value)] for name, value in sorted(counters.items())]
        rows += [[name, f"{value:g}"] for name, value in sorted(gauges.items())]
        sections.append("\n".join(_table(["metric", "value"], rows)))
    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = []
        for name, state in sorted(histograms.items()):
            count = int(state.get("count", 0))
            mean = (float(state.get("sum", 0.0)) / count) if count else 0.0
            fmt = (lambda v: "-" if v is None else f"{float(v):.4g}")
            rows.append([name, str(count), f"{mean:.4g}",
                         fmt(state.get("min")), fmt(state.get("max"))])
        sections.append("\n".join(
            _table(["histogram", "count", "mean", "min", "max"], rows)
        ))
    if not sections:
        return "no metrics recorded"
    return "\n\n".join(sections)


def format_uncertainty_table(payload: dict) -> str:
    """Per-machine predictive-uncertainty table from ``metrics.json``.

    ``repro schedule --with-uncertainty`` (and any run that stores an
    ``"uncertainty"`` mapping of ``machine -> {stat: value}``) renders
    through here.  Pure dict formatting — this module knows nothing
    about machine specs, so the telemetry layer stays arch-free.
    """
    rows = []
    for machine in sorted(payload):
        stats = payload[machine]
        if not isinstance(stats, dict):
            rows.append([str(machine), str(stats), "", ""])
            continue
        rows.append([
            str(machine),
            *(f"{stats[k]:.4f}" if isinstance(stats.get(k), (int, float))
              else "-" for k in ("mean_std", "p95_std", "max_std")),
        ])
    if not rows:
        return "no per-machine uncertainty recorded"
    return "\n".join(
        _table(["machine", "mean_std", "p95_std", "max_std"], rows)
    )


def format_slo_table(payload) -> str:
    """Budget-remaining table from saved SLO state.

    *payload* is one :meth:`repro.telemetry.slo.SLOShedPolicy.snapshot`
    dict or a list of them (``metrics.json``'s ``"slo"`` entry).  One
    row per (SLO, window) with the burn rate and the fraction of the
    window's error budget left; the admission decision rides in the
    last column of each SLO's first row.
    """
    if isinstance(payload, dict):
        payload = [payload]
    rows = []
    for entry in payload or []:
        if not isinstance(entry, dict):
            continue
        spec = entry.get("spec", {})
        label = str(spec.get("name", "?"))
        objective = str(spec.get("objective", "?"))
        target = spec.get("target")
        target_s = f"{float(target):.4g}" if target is not None else "-"
        first = True
        for window_label in ("fast", "slow"):
            window = (entry.get("windows") or {}).get(window_label)
            if not isinstance(window, dict):
                continue
            rows.append([
                label if first else "",
                objective if first else "",
                target_s if first else "",
                f"{window_label} {window.get('window_s', 0):g}s",
                f"{float(window.get('burn_rate', 0.0)):.3f}",
                f"{float(window.get('budget_remaining', 0.0)):.3f}",
                str(entry.get("decision", "")) if first else "",
            ])
            first = False
    if not rows:
        return "no SLO state recorded"
    return "\n".join(_table(
        ["slo", "objective", "target", "window", "burn",
         "budget_left", "decision"],
        rows,
    ))


def render_run_report(manifest: dict, metrics: dict | None,
                      trace: dict | None) -> str:
    """The full ``repro report <run-dir>`` text."""
    lines = [
        f"run: {manifest.get('command', '?')} "
        f"(config {str(manifest.get('config_hash', ''))[:12]}, "
        f"seed {manifest.get('seed', '?')})",
        f"wall time: {manifest.get('wall_time_seconds', '?')} s; "
        f"{len(manifest.get('files', {}))} artifact(s)",
    ]
    for name in sorted(manifest.get("files", {})):
        meta = manifest["files"][name]
        lines.append(f"  {name}  ({meta.get('bytes', '?')} bytes)")
    if trace is not None:
        lines += ["", "top spans by self time:", format_span_table(trace)]
    if metrics is not None:
        snapshot = metrics.get("telemetry") if isinstance(metrics, dict) \
            else None
        if snapshot:
            lines += ["", "telemetry metrics:",
                      format_metrics_tables(snapshot)]
        uncertainty = (metrics.get("uncertainty")
                       if isinstance(metrics, dict) else None)
        if isinstance(uncertainty, dict) and uncertainty:
            lines += ["", "per-machine predictive uncertainty "
                          "(rel-time std):",
                      format_uncertainty_table(uncertainty)]
        slo = metrics.get("slo") if isinstance(metrics, dict) else None
        if slo:
            lines += ["", "SLO error-budget status:",
                      format_slo_table(slo)]
        headline = {
            k: v for k, v in (metrics.items()
                              if isinstance(metrics, dict) else [])
            if k not in ("telemetry", "uncertainty", "slo")
        }
        if headline:
            lines += ["", "headline metrics (metrics.json):"]
            for key in sorted(headline):
                lines.append(f"  {key}: {headline[key]}")
    if trace is None and metrics is None:
        lines += ["", "no telemetry artifacts in this run "
                      "(rerun with --telemetry metrics|trace)"]
    return "\n".join(lines)
