"""Flight recorder: a bounded ring of recent events for post-mortems.

Trace mode answers "what happened?" only when it was switched on
*before* the interesting request — which is never true for the request
that crashed production.  The flight recorder closes that gap: the
serving and scheduling layers drop tiny boundary records (admission
transitions, batch flushes, model swaps, signals) into a fixed-size
ring as they run, and when something notable happens — a shed
transition, SIGTERM, an unhandled server error — the last *capacity*
events are dumped to a manifest-inventoried ``flight.json``.

Cost discipline, enforced by ``benchmarks/test_perf_telemetry.py``:

* disabled (the default), :func:`record` is one attribute load and a
  falsy branch — no allocation, no lock (< 2 µs/call gate);
* enabled, an append is one ``deque.append`` with ``maxlen`` under a
  lock: O(1), no growth, the oldest record falls off the back.

Timestamps are wall-clock ``time.time_ns()`` — flight dumps are for
humans correlating with logs, not for measuring durations.

Like the tracer/registry there is one module-level recorder; the
:class:`FlightRecorder` class stays importable for isolated use in
tests.  Layering: depends on nothing above the stdlib, so every layer
may record into it (enforced by ``tools/check_layering.py``).
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = [
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "recorder",
    "enable",
    "disable",
    "enabled",
    "record",
    "dump",
]

#: Ring size when :func:`enable` is not given one.  512 events at the
#: serve layer's record rate (one per admission transition / batch
#: flush / swap, not one per request) spans minutes of history in a
#: few tens of kilobytes.
DEFAULT_CAPACITY = 512

#: Format version stamped into every dump.
FLIGHT_FORMAT_VERSION = 1


class FlightRecorder:
    """Bounded in-memory event ring with O(1) append."""

    __slots__ = ("_ring", "_lock", "_enabled", "_recorded")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 enabled: bool = False):
        self._ring: deque = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._enabled = bool(enabled)
        self._recorded = 0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    def __len__(self) -> int:
        return len(self._ring)

    def enable(self, capacity: int | None = None) -> None:
        """Start recording; resizing drops existing events."""
        if capacity is not None and capacity != self._ring.maxlen:
            if capacity < 1:
                raise ValueError(
                    f"flight recorder capacity must be >= 1, got {capacity}"
                )
            with self._lock:
                self._ring = deque(maxlen=int(capacity))
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._recorded = 0

    # ------------------------------------------------------------------
    def record(self, kind: str, **fields) -> None:
        """Append one event; a no-op (one branch) while disabled."""
        if not self._enabled:
            return
        event = (time.time_ns(), kind, fields)
        with self._lock:
            self._ring.append(event)
            self._recorded += 1

    def dump(self, reason: str = "manual") -> dict:
        """JSON-ready dump of the ring, oldest event first.

        ``recorded`` counts every event since the last :meth:`clear`,
        so ``recorded - len(events)`` is how many fell off the back.
        """
        with self._lock:
            events = list(self._ring)
            recorded = self._recorded
        return {
            "flight_format_version": FLIGHT_FORMAT_VERSION,
            "reason": reason,
            "dumped_at_unix_ns": time.time_ns(),
            "capacity": self.capacity,
            "recorded": recorded,
            "events": [
                {"ts_unix_ns": ts, "kind": kind, **fields}
                for ts, kind, fields in events
            ],
        }


#: The process-wide recorder the instrumented layers write into.
_RECORDER = FlightRecorder()


def recorder() -> FlightRecorder:
    """The module-level recorder instance."""
    return _RECORDER


def enable(capacity: int | None = None) -> None:
    _RECORDER.enable(capacity)


def disable() -> None:
    _RECORDER.disable()


def enabled() -> bool:
    return _RECORDER.enabled


def record(kind: str, **fields) -> None:
    _RECORDER.record(kind, **fields)


def dump(reason: str = "manual") -> dict:
    return _RECORDER.dump(reason)
