"""Exporters: Chrome ``trace_event`` JSON and flat JSONL.

Two consumers, two formats:

* :func:`chrome_trace` — the Chrome/Perfetto ``trace_event`` format
  (load ``trace.json`` at ``chrome://tracing`` or https://ui.perfetto.dev).
  Every span becomes a complete ("ph": "X") event with microsecond
  timestamps relative to the earliest span; span/parent ids and user
  attributes ride in ``args`` where viewers show them on click and
  :mod:`repro.telemetry.report` reconstructs the span tree for
  self-time accounting.
* :func:`spans_jsonl` — one flat JSON object per line, trivially
  greppable/streamable (``jq``-friendly) when a viewer is overkill.

:func:`sim_events_to_chrome` is the odd one out: it renders a
*simulated-time* event log (the scheduler's ``result.extra["events"]``)
on the same timeline format, with simulated seconds mapped to trace
microseconds and one timeline row per machine — so a scheduling run can
be inspected span-by-span even though no wall clock was involved.
"""

from __future__ import annotations

import json
import os
import re

from repro.telemetry.spans import SpanRecord

__all__ = [
    "chrome_trace",
    "spans_jsonl",
    "write_json",
    "sim_events_to_chrome",
    "prometheus_text",
    "prometheus_sample",
]


def chrome_trace(spans: list[SpanRecord], process_name: str = "repro") -> dict:
    """Chrome ``trace_event`` document for *spans* (JSON-ready dict)."""
    pid = os.getpid()
    t0 = min((s.start_ns for s in spans), default=0)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        args = {"span_id": span.span_id, "parent_id": span.parent_id}
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
        args.update(span.attrs)
        if span.error:
            args["error"] = True
            args["error_type"] = span.error_type
        events.append({
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": (span.start_ns - t0) / 1e3,   # microseconds
            "dur": span.duration_ns / 1e3,
            "pid": pid,
            "tid": span.thread_id,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def spans_jsonl(spans: list[SpanRecord]) -> str:
    """Flat JSONL rendering: one span object per line."""
    return "".join(
        json.dumps(span.to_json(), sort_keys=True) + "\n" for span in spans
    )


def write_json(path, payload: dict) -> None:
    """Deterministic pretty JSON write (matches run-dir artifacts)."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------------
# Prometheus text exposition (format version 0.0.4).  The histogram
# already stores upper-edge-inclusive buckets, i.e. exactly Prometheus
# ``le`` semantics, so rendering is cumulation + formatting — no
# re-binning.

_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str) -> str:
    """Sanitize a dotted metric name into a Prometheus family name."""
    out = prefix + _PROM_INVALID.sub("_", name)
    if out[0].isdigit():
        out = "_" + out
    return out


def _prom_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def prometheus_sample(name: str, labels: dict | None, value) -> str:
    """One exposition sample line, with label escaping."""
    if labels:
        rendered = ",".join(
            '{}="{}"'.format(
                key,
                str(val).replace("\\", r"\\").replace('"', r"\"")
                .replace("\n", r"\n"),
            )
            for key, val in sorted(labels.items())
        )
        return f"{name}{{{rendered}}} {_prom_value(value)}"
    return f"{name} {_prom_value(value)}"


def prometheus_text(snapshot: dict, prefix: str = "repro_") -> str:
    """Render a metrics snapshot in Prometheus text exposition format.

    Counters get the conventional ``_total`` suffix; histograms render
    the full ``_bucket{le=...}`` / ``_sum`` / ``_count`` family with
    cumulative bucket counts and a ``+Inf`` bucket equal to the total
    count.  Families are sorted by name for deterministic scrapes.
    """
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        family = _prom_name(name, prefix) + "_total"
        lines.append(f"# TYPE {family} counter")
        lines.append(prometheus_sample(family, None, int(value)))
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        family = _prom_name(name, prefix)
        lines.append(f"# TYPE {family} gauge")
        lines.append(prometheus_sample(family, None, float(value)))
    for name, state in sorted(snapshot.get("histograms", {}).items()):
        family = _prom_name(name, prefix)
        lines.append(f"# TYPE {family} histogram")
        cumulative = 0
        for edge, count in zip(state.get("edges", []),
                               state.get("counts", [])):
            cumulative += int(count)
            lines.append(prometheus_sample(
                family + "_bucket", {"le": repr(float(edge))}, cumulative
            ))
        total = int(state.get("count", 0))
        lines.append(prometheus_sample(
            family + "_bucket", {"le": "+Inf"}, total
        ))
        lines.append(prometheus_sample(
            family + "_sum", None, float(state.get("sum", 0.0))
        ))
        lines.append(prometheus_sample(family + "_count", None, total))
    return "\n".join(lines) + ("\n" if lines else "")


def sim_events_to_chrome(events, time_scale: float = 1e6) -> dict:
    """Chrome trace document for a *simulated-time* scheduler event log.

    *events* are ``(time, kind, job_id, machine)`` tuples (the
    ``trace=True`` log of :class:`repro.sched.Scheduler`); simulated
    seconds map to trace microseconds via *time_scale* so one trace
    millisecond reads as one simulated second in the viewer.  Events are
    instants ("ph": "i") grouped on one timeline row per machine.
    """
    tids: dict[str, int] = {}
    out: list[dict] = []
    for time_s, kind, job_id, machine in events:
        row = str(machine) if machine else "(queue)"
        tid = tids.setdefault(row, len(tids) + 1)
        out.append({
            "name": str(kind),
            "cat": "sched",
            "ph": "i",
            "s": "t",                      # thread-scoped instant
            "ts": float(time_s) * time_scale,
            "pid": 1,
            "tid": tid,
            "args": {"job_id": int(job_id), "machine": str(machine)},
        })
    meta = [
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
         "args": {"name": row}}
        for row, tid in sorted(tids.items(), key=lambda kv: kv[1])
    ]
    return {"traceEvents": meta + out, "displayTimeUnit": "ms"}
