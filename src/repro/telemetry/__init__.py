"""Telemetry: structured tracing spans and a mergeable metrics registry.

One module-level *mode* governs everything:

========  =======================  ============================
mode      metrics registry         span tracer
========  =======================  ============================
off       no-op (``NULL_METRIC``)  no-op (null span handles)
metrics   recording                no-op
trace     recording                recording
========  =======================  ============================

The instrumented layers call the accessors below unconditionally::

    from repro import telemetry

    telemetry.counter("dataset.cache.hits").inc(5)
    with telemetry.span("sched.run", strategy="model") as sp:
        ...
        sp.annotate(jobs=len(jobs))

With telemetry off (the default), ``counter()``/``gauge()``/
``histogram()`` return a shared :class:`~repro.telemetry.metrics.NullMetric`
and ``span()`` returns a no-op handle — the cost is one global read and
a branch, which the telemetry benchmark holds to < 5% on the scheduler
hot loop.  Nothing is ever recorded until :func:`configure` switches the
mode on, so importing this package has no observable effect.

Cross-process aggregation: :func:`repro.parallel.run_tasks` snapshots
each worker's registry per task and the parent folds the snapshots back
in with :func:`merge_snapshot` — counters add, gauges last-write-wins,
histograms merge bucket-wise.  For deterministic workloads the merged
numbers equal a sequential run's exactly (pinned by test).

Layering: this package sits at the bottom of the layer graph beside
``errors``/``registry`` (enforced by ``tools/check_layering.py``), so
every other layer may instrument itself without import cycles.
"""

from __future__ import annotations

from repro.errors import TelemetryError
from repro.telemetry import flightrec, slo
from repro.telemetry.export import (
    chrome_trace,
    prometheus_sample,
    prometheus_text,
    sim_events_to_chrome,
    spans_jsonl,
    write_json,
)
from repro.telemetry.metrics import (
    LATENCY_BUCKETS_S,
    NULL_METRIC,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetric,
)
from repro.telemetry.report import format_slo_table, render_run_report
from repro.telemetry.spans import SpanRecord, Tracer, new_trace_id

__all__ = [
    "MODES",
    "configure",
    "mode",
    "metrics_enabled",
    "tracing_enabled",
    "span",
    "start_span",
    "trace_context",
    "current_trace",
    "new_trace_id",
    "adopt_spans",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "merge_snapshot",
    "spans",
    "reset",
    "chrome_trace",
    "spans_jsonl",
    "write_json",
    "sim_events_to_chrome",
    "prometheus_text",
    "prometheus_sample",
    "render_run_report",
    "format_slo_table",
    "flightrec",
    "slo",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetric",
    "NULL_METRIC",
    "SpanRecord",
    "Tracer",
    "TelemetryError",
    "LATENCY_BUCKETS_S",
    "SIZE_BUCKETS",
]

#: Valid telemetry modes, in increasing order of detail.
MODES: tuple[str, ...] = ("off", "metrics", "trace")

_MODE: str = "off"
_REGISTRY = MetricsRegistry()
_TRACER = Tracer(enabled=False)


def configure(mode: str | None) -> None:
    """Set the global telemetry mode (``None`` means ``"off"``)."""
    global _MODE
    mode = mode or "off"
    if mode not in MODES:
        raise TelemetryError(
            f"unknown telemetry mode {mode!r} (choose from "
            f"{', '.join(MODES)})"
        )
    _MODE = mode
    _TRACER.enabled = mode == "trace"


def mode() -> str:
    """The current telemetry mode."""
    return _MODE


def metrics_enabled() -> bool:
    """True when the metrics registry is recording (metrics or trace)."""
    return _MODE != "off"


def tracing_enabled() -> bool:
    """True when the span tracer is recording (trace only)."""
    return _MODE == "trace"


# ----------------------------------------------------------------------
# Accessors.  These are THE instrumentation API: call sites never touch
# the registry/tracer objects directly, so disabled mode costs only the
# mode branch here.

def span(name: str, **attrs):
    """A span handle (context manager / decorator) for a traced region."""
    return _TRACER.span(name, **attrs)


def start_span(name: str, *, trace_id: str | None = None,
               parent_id: int | None = None, **attrs):
    """An explicitly-parented span for async request scopes.

    Unlike :func:`span`, parentage is wired by the caller (not the
    thread-local stack) and the span is finished with ``end()`` — the
    right tool when many requests interleave on one event-loop thread.
    Returns a shared no-op handle (``span_id`` is ``None``) while
    tracing is disabled.
    """
    return _TRACER.start_span(name, trace_id=trace_id,
                              parent_id=parent_id, **attrs)


def trace_context(trace_id: str | None = None,
                  parent_span_id: int | None = None):
    """Context manager stamping this thread's root spans with a trace.

    Survives :func:`reset` — a worker process installs its parent's
    trace context once and every span tree it records afterwards
    (including after mode switches) lands in the parent's trace.
    """
    return _TRACER.context(trace_id, parent_span_id)


def current_trace() -> tuple[str | None, int | None]:
    """The ``(trace_id, parent_span_id)`` a child spawned now inherits."""
    return _TRACER.current_context()


def adopt_spans(records, parent_id: int | None = None,
                trace_id: str | None = None) -> int:
    """Graft worker-process span records into the global tracer.

    Remaps span ids to this tracer's id space and attaches the worker's
    root spans under *parent_id* (see :meth:`Tracer.adopt`)."""
    return _TRACER.adopt(records, parent_id=parent_id, trace_id=trace_id)


def counter(name: str):
    """The named counter, or the shared no-op metric when disabled."""
    if _MODE == "off":
        return NULL_METRIC
    return _REGISTRY.counter(name)


def gauge(name: str):
    """The named gauge, or the shared no-op metric when disabled."""
    if _MODE == "off":
        return NULL_METRIC
    return _REGISTRY.gauge(name)


def histogram(name: str, buckets: tuple[float, ...] = LATENCY_BUCKETS_S):
    """The named histogram, or the shared no-op metric when disabled."""
    if _MODE == "off":
        return NULL_METRIC
    return _REGISTRY.histogram(name, buckets)


# ----------------------------------------------------------------------
# Collection plumbing (used by the CLI spine and the parallel executor).

def snapshot() -> dict:
    """JSON-ready snapshot of the global metrics registry."""
    return _REGISTRY.snapshot()


def merge_snapshot(state: dict) -> None:
    """Fold a worker-process snapshot into the global registry."""
    _REGISTRY.merge_snapshot(state)


def spans() -> list[SpanRecord]:
    """All finished spans collected by the global tracer."""
    return _TRACER.spans()


def reset() -> None:
    """Clear all collected metrics and spans (mode is unchanged)."""
    _REGISTRY.reset()
    _TRACER.reset()
