"""Structured tracing spans: nested, monotonic-clock, exception-safe.

A *span* is one timed region of execution with a name, key-value
attributes, and a parent (the span that was open on the same thread
when it started).  Spans nest naturally through the context-manager
protocol::

    with tracer.span("dataset.generate", shards=240):
        with tracer.span("dataset.shard", app="AMG"):
            ...

and close *even when the body raises* — the span is recorded with
``error=True`` and the exception type name, then the exception
propagates unchanged.  Timing uses :func:`time.perf_counter_ns` (the
monotonic high-resolution clock), so spans are immune to wall-clock
steps and cheap to take.

The :class:`Tracer` collects finished spans in memory: appends are
lock-protected and the open-span stack is thread-local, so concurrent
threads trace independently and interleave safely.  Exporters
(:mod:`repro.telemetry.export`) turn the collected list into Chrome
``trace_event`` JSON or flat JSONL.

The *disabled* path never reaches this module: the package-level
``span()`` accessor returns a shared no-op handle when tracing is off
(see :mod:`repro.telemetry`), so instrumentation costs one attribute
check per call site, not a Span allocation.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from functools import wraps

__all__ = ["SpanRecord", "Tracer", "new_trace_id"]


def new_trace_id() -> str:
    """A fresh 64-bit trace id as 16 lowercase hex chars."""
    return os.urandom(8).hex()


@dataclass
class SpanRecord:
    """One finished span (times in perf-counter nanoseconds).

    ``trace_id`` groups spans belonging to one logical request or run
    across process boundaries; it is ``None`` for spans recorded outside
    any trace context (process-local tracing, the common batch case).
    """

    name: str
    span_id: int
    parent_id: int | None
    start_ns: int
    end_ns: int
    thread_id: int
    attrs: dict = field(default_factory=dict)
    error: bool = False
    error_type: str | None = None
    trace_id: str | None = None

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        return (self.end_ns - self.start_ns) / 1e9

    def to_json(self) -> dict:
        """Flat JSON-ready form (the JSONL exporter's row)."""
        out = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "thread_id": self.thread_id,
            "attrs": dict(self.attrs),
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.error:
            out["error"] = True
            out["error_type"] = self.error_type
        return out


class _SpanHandle:
    """Context manager *and* decorator for one span site.

    The telemetry mode is consulted at ``__enter__``/call time — not at
    construction — so a function decorated while telemetry is off still
    traces once telemetry is enabled.
    """

    __slots__ = ("_tracer", "_name", "_attrs", "_record")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._record: SpanRecord | None = None

    def __enter__(self) -> "_SpanHandle":
        self._record = self._tracer._begin(self._name, self._attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self._record
        self._record = None
        if record is not None:
            self._tracer._finish(record, exc_type)
        return False  # never swallow the exception

    def annotate(self, **attrs) -> None:
        """Attach attributes to the live span (no-op when disabled)."""
        if self._record is not None:
            self._record.attrs.update(attrs)

    @property
    def span_id(self) -> int | None:
        """The live span's id (``None`` before entry / when disabled)."""
        return self._record.span_id if self._record is not None else None

    def __call__(self, fn):
        @wraps(fn)
        def wrapper(*args, **kwargs):
            with _SpanHandle(self._tracer, self._name, dict(self._attrs)):
                return fn(*args, **kwargs)
        return wrapper


class _NullSpan:
    """Shared no-op handle returned while tracing is disabled.

    As a decorator it still wraps through the active tracer at call
    time, so enabling telemetry later activates decorated functions.
    """

    __slots__ = ("_tracer", "_name", "_attrs")

    def __init__(self, tracer: "Tracer | None" = None, name: str = "",
                 attrs: dict | None = None):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs or {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        pass

    @property
    def span_id(self) -> None:
        return None

    def __call__(self, fn):
        if self._tracer is None:
            return fn
        tracer, name, attrs = self._tracer, self._name, self._attrs

        @wraps(fn)
        def wrapper(*args, **kwargs):
            with tracer.span(name, **attrs):
                return fn(*args, **kwargs)
        return wrapper


class _ManualSpan:
    """Explicitly-parented span handle (no thread-local stack).

    The stack-based :class:`_SpanHandle` derives parentage from "the
    span open on this thread", which is wrong for async request scopes:
    many requests interleave on one event-loop thread, and a coalesced
    batch finishes items whose requests started elsewhere.  A manual
    span instead carries its ``trace_id``/``parent_id`` explicitly and
    exposes its ``span_id`` so children in other scopes can link to it.

    Usable as a plain handle (``end()``) or a context manager.  The
    disabled tracer hands out the shared :data:`_NULL_MANUAL`, whose
    ``span_id`` is ``None`` and whose methods do nothing.
    """

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer | None", record: SpanRecord | None):
        self._tracer = tracer
        self._record = record

    @property
    def span_id(self) -> int | None:
        return self._record.span_id if self._record is not None else None

    def annotate(self, **attrs) -> None:
        if self._record is not None:
            self._record.attrs.update(attrs)

    def end(self, exc_type: type | None = None) -> None:
        """Finish the span; idempotent (second call is a no-op)."""
        record = self._record
        self._record = None
        if record is None or self._tracer is None:
            return
        record.end_ns = time.perf_counter_ns()
        if exc_type is not None:
            record.error = True
            record.error_type = exc_type.__name__
        with self._tracer._lock:
            self._tracer._spans.append(record)

    def __enter__(self) -> "_ManualSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end(exc_type)
        return False


_NULL_MANUAL = _ManualSpan(None, None)


class _TraceContext:
    """Context manager installing an ambient (trace_id, parent_id) pair.

    Pushed onto a *separate* thread-local stack that survives
    :meth:`Tracer.reset` — a sweep cell installs its parent's trace
    before the CLI replay path resets telemetry, and the context must
    outlive that reset.  Installing a context is allowed while tracing
    is disabled (the cell sets context first, enables trace mode
    later).
    """

    __slots__ = ("_tracer", "_entry", "_token")

    def __init__(self, tracer: "Tracer", trace_id: str | None,
                 parent_span_id: int | None):
        self._tracer = tracer
        self._entry = (trace_id, parent_span_id)
        self._token = False

    def __enter__(self) -> "_TraceContext":
        self._tracer._context_stack().append(self._entry)
        self._token = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token:
            self._token = False
            stack = self._tracer._context_stack()
            if stack:
                stack.pop()
        return False


class Tracer:
    """Thread-safe in-memory span collector.

    ``enabled`` gates recording: when False, :meth:`span` returns a
    shared no-op handle whose enter/exit do nothing (the decorator form
    re-checks at every call, so late enabling works).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._spans: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        # Ambient trace context lives apart from the span stack so that
        # reset() (which drops collected spans and open stacks) keeps
        # the cross-process trace parentage installed by context().
        self._ctx = threading.local()

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs):
        """A context-manager/decorator handle for one traced region."""
        if not self.enabled:
            return _NullSpan(self, name, attrs)
        return _SpanHandle(self, name, attrs)

    def _stack(self) -> list[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _context_stack(self) -> list[tuple[str | None, int | None]]:
        stack = getattr(self._ctx, "stack", None)
        if stack is None:
            stack = self._ctx.stack = []
        return stack

    def context(self, trace_id: str | None = None,
                parent_span_id: int | None = None) -> _TraceContext:
        """Install an ambient trace for spans begun with an empty stack.

        While the context is active, root spans on this thread inherit
        *trace_id* and parent to *parent_span_id* — this is how a child
        process (sweep cell, parallel worker) stamps its whole span
        tree as a subtree of the parent process's trace.
        """
        return _TraceContext(self, trace_id, parent_span_id)

    def current_context(self) -> tuple[str | None, int | None]:
        """The (trace_id, parent_span_id) a child started now should use.

        The parent is the innermost open span on this thread when there
        is one (so children attach below the call site), else the
        ambient context's parent.
        """
        stack = getattr(self._local, "stack", None)
        if stack:
            top = stack[-1]
            trace_id = top.trace_id
            if trace_id is None:
                ctx = self._context_stack()
                trace_id = ctx[-1][0] if ctx else None
            return trace_id, top.span_id
        ctx = self._context_stack()
        if ctx:
            return ctx[-1]
        return None, None

    def _begin(self, name: str, attrs: dict) -> SpanRecord | None:
        if not self.enabled:
            return None
        stack = self._stack()
        if stack:
            parent = stack[-1].span_id
            trace_id = stack[-1].trace_id
        else:
            ctx = self._context_stack()
            trace_id, parent = ctx[-1] if ctx else (None, None)
        record = SpanRecord(
            name=name,
            span_id=next(self._ids),
            parent_id=parent,
            start_ns=time.perf_counter_ns(),
            end_ns=0,
            thread_id=threading.get_ident(),
            attrs=dict(attrs),
            trace_id=trace_id,
        )
        stack.append(record)
        return record

    def start_span(self, name: str, *, trace_id: str | None = None,
                   parent_id: int | None = None, **attrs) -> _ManualSpan:
        """Begin an explicitly-parented span outside the thread stack.

        For async request scopes where thread-locality lies about
        causality: the caller wires ``trace_id``/``parent_id`` itself
        and finishes the span with ``end()``.  Returns the shared no-op
        handle while tracing is disabled.
        """
        if not self.enabled:
            return _NULL_MANUAL
        record = SpanRecord(
            name=name,
            span_id=next(self._ids),
            parent_id=parent_id,
            start_ns=time.perf_counter_ns(),
            end_ns=0,
            thread_id=threading.get_ident(),
            attrs=dict(attrs),
            trace_id=trace_id,
        )
        return _ManualSpan(self, record)

    def adopt(self, records, parent_id: int | None = None,
              trace_id: str | None = None) -> int:
        """Graft finished spans from another tracer into this one.

        Used by the parallel executor to merge worker-process span
        trees back into the parent: every in-batch span id is remapped
        to a fresh id from this tracer (worker tracers all count from
        1, so raw ids collide across workers), in-batch parent links
        are rewritten through the same mapping, and spans with no
        parent — the worker's roots — are attached to *parent_id*.
        Records may be :class:`SpanRecord` objects or their
        ``to_json()`` dict form.  Returns the number adopted.
        """
        if not self.enabled or not records:
            return 0
        clean: list[SpanRecord] = []
        mapping: dict[int, int] = {}
        for rec in records:
            if isinstance(rec, dict):
                start_ns = int(rec.get("start_ns", 0))
                rec = SpanRecord(
                    name=rec.get("name", "?"),
                    span_id=int(rec["span_id"]),
                    parent_id=rec.get("parent_id"),
                    start_ns=start_ns,
                    end_ns=start_ns + int(rec.get("duration_ns", 0)),
                    thread_id=int(rec.get("thread_id", 0)),
                    attrs=dict(rec.get("attrs", {})),
                    error=bool(rec.get("error", False)),
                    error_type=rec.get("error_type"),
                    trace_id=rec.get("trace_id"),
                )
            mapping[rec.span_id] = next(self._ids)
            clean.append(rec)
        for rec in clean:
            rec.span_id = mapping[rec.span_id]
            if rec.parent_id is None:
                rec.parent_id = parent_id
            else:
                rec.parent_id = mapping.get(rec.parent_id, rec.parent_id)
            if trace_id is not None and rec.trace_id is None:
                rec.trace_id = trace_id
        with self._lock:
            self._spans.extend(clean)
        return len(clean)

    def _finish(self, record: SpanRecord, exc_type) -> None:
        record.end_ns = time.perf_counter_ns()
        if exc_type is not None:
            record.error = True
            record.error_type = exc_type.__name__
        stack = self._stack()
        # The record is normally the top of this thread's stack; guard
        # against exotic reentrancy by removing it wherever it is.
        if stack and stack[-1] is record:
            stack.pop()
        elif record in stack:
            stack.remove(record)
        with self._lock:
            self._spans.append(record)

    # ------------------------------------------------------------------
    def spans(self) -> list[SpanRecord]:
        """Finished spans, in completion order (children before parents)."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def reset(self) -> None:
        """Drop collected spans and open stacks.

        The ambient trace context (:meth:`context`) deliberately
        survives: a sweep cell installs its parent's trace before the
        CLI replay path calls reset, and must stay stamped after.
        """
        with self._lock:
            self._spans.clear()
        self._local = threading.local()
