"""Structured tracing spans: nested, monotonic-clock, exception-safe.

A *span* is one timed region of execution with a name, key-value
attributes, and a parent (the span that was open on the same thread
when it started).  Spans nest naturally through the context-manager
protocol::

    with tracer.span("dataset.generate", shards=240):
        with tracer.span("dataset.shard", app="AMG"):
            ...

and close *even when the body raises* — the span is recorded with
``error=True`` and the exception type name, then the exception
propagates unchanged.  Timing uses :func:`time.perf_counter_ns` (the
monotonic high-resolution clock), so spans are immune to wall-clock
steps and cheap to take.

The :class:`Tracer` collects finished spans in memory: appends are
lock-protected and the open-span stack is thread-local, so concurrent
threads trace independently and interleave safely.  Exporters
(:mod:`repro.telemetry.export`) turn the collected list into Chrome
``trace_event`` JSON or flat JSONL.

The *disabled* path never reaches this module: the package-level
``span()`` accessor returns a shared no-op handle when tracing is off
(see :mod:`repro.telemetry`), so instrumentation costs one attribute
check per call site, not a Span allocation.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from functools import wraps

__all__ = ["SpanRecord", "Tracer"]


@dataclass
class SpanRecord:
    """One finished span (times in perf-counter nanoseconds)."""

    name: str
    span_id: int
    parent_id: int | None
    start_ns: int
    end_ns: int
    thread_id: int
    attrs: dict = field(default_factory=dict)
    error: bool = False
    error_type: str | None = None

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        return (self.end_ns - self.start_ns) / 1e9

    def to_json(self) -> dict:
        """Flat JSON-ready form (the JSONL exporter's row)."""
        out = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "thread_id": self.thread_id,
            "attrs": dict(self.attrs),
        }
        if self.error:
            out["error"] = True
            out["error_type"] = self.error_type
        return out


class _SpanHandle:
    """Context manager *and* decorator for one span site.

    The telemetry mode is consulted at ``__enter__``/call time — not at
    construction — so a function decorated while telemetry is off still
    traces once telemetry is enabled.
    """

    __slots__ = ("_tracer", "_name", "_attrs", "_record")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._record: SpanRecord | None = None

    def __enter__(self) -> "_SpanHandle":
        self._record = self._tracer._begin(self._name, self._attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self._record
        self._record = None
        if record is not None:
            self._tracer._finish(record, exc_type)
        return False  # never swallow the exception

    def annotate(self, **attrs) -> None:
        """Attach attributes to the live span (no-op when disabled)."""
        if self._record is not None:
            self._record.attrs.update(attrs)

    def __call__(self, fn):
        @wraps(fn)
        def wrapper(*args, **kwargs):
            with _SpanHandle(self._tracer, self._name, dict(self._attrs)):
                return fn(*args, **kwargs)
        return wrapper


class _NullSpan:
    """Shared no-op handle returned while tracing is disabled.

    As a decorator it still wraps through the active tracer at call
    time, so enabling telemetry later activates decorated functions.
    """

    __slots__ = ("_tracer", "_name", "_attrs")

    def __init__(self, tracer: "Tracer | None" = None, name: str = "",
                 attrs: dict | None = None):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs or {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        pass

    def __call__(self, fn):
        if self._tracer is None:
            return fn
        tracer, name, attrs = self._tracer, self._name, self._attrs

        @wraps(fn)
        def wrapper(*args, **kwargs):
            with tracer.span(name, **attrs):
                return fn(*args, **kwargs)
        return wrapper


class Tracer:
    """Thread-safe in-memory span collector.

    ``enabled`` gates recording: when False, :meth:`span` returns a
    shared no-op handle whose enter/exit do nothing (the decorator form
    re-checks at every call, so late enabling works).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._spans: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs):
        """A context-manager/decorator handle for one traced region."""
        if not self.enabled:
            return _NullSpan(self, name, attrs)
        return _SpanHandle(self, name, attrs)

    def _stack(self) -> list[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _begin(self, name: str, attrs: dict) -> SpanRecord | None:
        if not self.enabled:
            return None
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        record = SpanRecord(
            name=name,
            span_id=next(self._ids),
            parent_id=parent,
            start_ns=time.perf_counter_ns(),
            end_ns=0,
            thread_id=threading.get_ident(),
            attrs=dict(attrs),
        )
        stack.append(record)
        return record

    def _finish(self, record: SpanRecord, exc_type) -> None:
        record.end_ns = time.perf_counter_ns()
        if exc_type is not None:
            record.error = True
            record.error_type = exc_type.__name__
        stack = self._stack()
        # The record is normally the top of this thread's stack; guard
        # against exotic reentrancy by removing it wherever it is.
        if stack and stack[-1] is record:
            stack.pop()
        elif record in stack:
            stack.remove(record)
        with self._lock:
            self._spans.append(record)

    # ------------------------------------------------------------------
    def spans(self) -> list[SpanRecord]:
        """Finished spans, in completion order (children before parents)."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()
        self._local = threading.local()
