"""Workload models for the 20 Table II applications.

The paper profiles 20 proxy applications from the ECP Proxy App Suite
and E4S test suite; 11 of them have GPU support.  Running the real codes
is impossible here, so each application is modeled as an
:class:`AppSpec`: a small set of kernels with instruction mixes, working
sets, locality, parallel efficiency, GPU offload characteristics, and
I/O — chosen to match each code's published computational character
(e.g. XSBench is branchy latency-bound table lookups, SWFFT is
bandwidth- and communication-bound, CANDLE/CosmoFlow/miniGAN/DeepCam are
dense single-precision tensor codes with noisy Python software stacks).

Note: the OCR of Table II in the provided paper text shows a GPU check
on every row, but the prose says eleven of twenty applications support
GPUs; this catalog assigns GPU support to the eleven applications whose
upstream codes have GPU backends (see ``GPU_APPS`` below).
"""

from repro.apps.catalog import (
    APPLICATIONS,
    CPU_ONLY_APPS,
    GPU_APPS,
    ML_PYTHON_APPS,
    get_app,
)
from repro.apps.inputs import InputConfig, generate_inputs
from repro.apps.spec import AppSpec, InstructionMix, KernelSpec

__all__ = [
    "AppSpec",
    "KernelSpec",
    "InstructionMix",
    "InputConfig",
    "generate_inputs",
    "APPLICATIONS",
    "GPU_APPS",
    "CPU_ONLY_APPS",
    "ML_PYTHON_APPS",
    "get_app",
]
