"""Input-configuration generation.

"Each application is paired with different input configurations when
run, in order to test different problems and problem sizes" (Section
V-A).  We model an input as a size knob plus a small perturbation of the
instruction mix (different physics options / problem shapes shift the
mix), generated deterministically from a seed so the MP-HPC dataset is
reproducible.  Labels render as each application's real CLI idiom
(e.g. XSBench's lookups knob, SW4lite's grid spacing) so profiles and
dataset rows read like genuine run records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.spec import AppSpec, InstructionMix
from repro.parallel.seeding import substream

__all__ = ["InputConfig", "generate_inputs"]

#: Per-application CLI idioms: (flag, nominal value, rounding).  The
#: size knob scales the nominal value; unlisted apps fall back to a
#: generic "-s" label.  Values are representative of each app's real
#: input descriptions.
_CLI_IDIOMS: dict[str, tuple[str, float, int]] = {
    "AMG": ("-n", 96, 1),                 # grid points per dim
    "CANDLE": ("--epochs", 12, 1),
    "CoMD": ("-x", 40, 1),                # lattice cells per dim
    "CosmoFlow": ("--samples", 512, 1),
    "CRADL": ("--zones", 280000, 1000),
    "Ember": ("--nx", 128, 1),
    "ExaMiniMD": ("--atoms", 500000, 1000),
    "Laghos": ("-rs", 4, 1),              # refinement steps
    "miniFE": ("-nx", 160, 1),
    "miniGAN": ("--batches", 900, 10),
    "miniQMC": ("-w", 64, 1),             # walkers
    "miniTri": ("--edges", 4000000, 10000),
    "miniVite": ("--vertices", 2500000, 10000),
    "DeepCam": ("--tiles", 768, 1),
    "Nekbone": ("--elements", 9000, 100),
    "PICSARLite": ("--particles", 60000000, 100000),
    "SW4lite": ("-h", 0.02, 0),           # grid spacing (inverse size)
    "SWFFT": ("--ngrid", 512, 1),
    "Thornado-mini": ("--groups", 40, 1),
    "XSBench": ("-l", 17000000, 10000),   # cross-section lookups
}


def _render_label(app_name: str, size_scale: float, variant: int) -> str:
    idiom = _CLI_IDIOMS.get(app_name)
    if idiom is None:
        return f"-s {size_scale:.3f} -v {variant}"
    flag, nominal, rounding = idiom
    if flag == "-h":  # grid spacing: finer spacing = bigger problem
        value = nominal / size_scale ** (1.0 / 3.0)
        return f"{flag} {value:.4f} -v {variant}"
    value = nominal * size_scale
    if rounding > 0:
        value = max(rounding, int(round(value / rounding) * rounding))
        return f"{flag} {value} -v {variant}"
    return f"{flag} {value:.3f} -v {variant}"


@dataclass(frozen=True)
class InputConfig:
    """One application input ("-s 5"-style CLI configuration).

    Attributes
    ----------
    app_name:
        Owning application.
    label:
        Human-readable CLI-like label, unique per app.
    size_scale:
        Problem-size knob; 1.0 is the app's nominal problem.
    mix:
        The instruction mix this input induces (base mix, perturbed).
    io_scale:
        Multiplier on the app's baseline I/O volume.
    """

    app_name: str
    label: str
    size_scale: float
    mix: InstructionMix
    io_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.size_scale <= 0:
            raise ValueError("size_scale must be positive")


def generate_inputs(
    app: AppSpec,
    count: int,
    seed: int = 0,
    size_range: tuple[float, float] = (0.25, 8.0),
    mix_jitter: float = 0.18,
) -> list[InputConfig]:
    """Generate *count* deterministic input configurations for *app*.

    Sizes are log-uniform over *size_range*; each of the six mix
    fractions is scaled by an independent log-normal factor with sigma
    *mix_jitter* (different inputs exercise different code paths), and
    I/O volume varies by up to 2x either way.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    lo, hi = size_range
    if not 0 < lo < hi:
        raise ValueError(f"bad size_range {size_range}")
    # Seed derived from both the app name and the caller's seed so each
    # app gets an independent but reproducible stream.
    rng = substream(seed, app.name)
    sizes = np.exp(rng.uniform(np.log(lo), np.log(hi), size=count))
    out: list[InputConfig] = []
    for i in range(count):
        factors = np.exp(rng.normal(0.0, mix_jitter, size=6))
        io_scale = float(np.exp(rng.uniform(np.log(0.5), np.log(2.0))))
        out.append(
            InputConfig(
                app_name=app.name,
                label=_render_label(app.name, float(sizes[i]), i),
                size_scale=float(sizes[i]),
                mix=app.mix.perturbed(factors),
                io_scale=io_scale,
            )
        )
    return out
