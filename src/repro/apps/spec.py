"""Application model dataclasses.

An :class:`AppSpec` is an analytical stand-in for one proxy application:
everything the performance simulator and profiler need to produce
runtimes and counters with that application's character.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["InstructionMix", "KernelSpec", "AppSpec"]


@dataclass(frozen=True)
class InstructionMix:
    """Dynamic instruction mix as fractions of total instructions.

    The six named categories correspond to the six ratio features of
    Table III (branch, store, load, single FP, double FP, integer
    arithmetic); the remainder is address arithmetic / moves / other.
    Fractions must be non-negative and sum to at most 1.
    """

    branch: float
    load: float
    store: float
    fp_sp: float
    fp_dp: float
    int_arith: float

    def __post_init__(self) -> None:
        vals = self.as_array()
        if (vals < 0).any():
            raise ValueError(f"negative mix fraction: {self}")
        if vals.sum() > 1.0 + 1e-9:
            raise ValueError(f"mix fractions sum to {vals.sum():.3f} > 1")

    def as_array(self) -> np.ndarray:
        return np.array(
            [self.branch, self.load, self.store,
             self.fp_sp, self.fp_dp, self.int_arith]
        )

    @property
    def other(self) -> float:
        return max(0.0, 1.0 - float(self.as_array().sum()))

    def perturbed(self, factors: np.ndarray) -> "InstructionMix":
        """Return a mix with each fraction scaled by ``factors`` (length 6),
        renormalized if the perturbation pushes the sum above 1."""
        vals = self.as_array() * np.asarray(factors, dtype=np.float64)
        total = vals.sum()
        if total > 0.97:
            vals *= 0.97 / total
        return InstructionMix(*vals)


@dataclass(frozen=True)
class KernelSpec:
    """One kernel (CCT leaf) of an application.

    Attributes
    ----------
    name:
        Function name shown in the calling context tree.
    weight:
        Fraction of the application's dynamic instructions spent here.
    offloadable:
        Whether this kernel runs on the GPU in GPU builds.
    """

    name: str
    weight: float
    offloadable: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.weight <= 1:
            raise ValueError(f"kernel weight must be in (0, 1]: {self}")


@dataclass(frozen=True)
class AppSpec:
    """Analytical model of one Table II application.

    Attributes
    ----------
    name, description:
        Table II identity.
    gpu_support:
        Whether the code has a GPU backend (11 of the 20 do).
    mix:
        Baseline dynamic instruction mix.
    kernels:
        CCT structure; kernel weights must sum to ~1.
    base_instructions:
        Total dynamic instructions at input scale 1.0 (all ranks).
    instr_exponent:
        Work growth vs the input size knob (1.0 linear; >1 superlinear).
    working_set_base:
        Total working set in bytes at input scale 1.0.
    ws_exponent:
        Working-set growth vs the input size knob.
    vectorizable:
        Fraction of FP work that uses full SIMD width (dense stencils
        ~0.9; irregular sparse ~0.2).
    irregularity:
        Multiplier on the CPU branch-misprediction rate and GPU
        divergence (1 = well-predicted loops, 3 = data-dependent chaos).
    mlp:
        Memory-level parallelism: how many outstanding misses overlap
        (higher hides latency; streaming codes ~8, pointer-chasing ~1.5).
    parallel_fraction:
        Amdahl parallel fraction for intra-node scaling.
    comm_cost:
        Multi-node communication time as a fraction of one-node compute
        time at a 12.5 GB/s reference interconnect.
    gpu_offload:
        Fraction of work offloaded in GPU builds (0 when no GPU support).
    gpu_kernel_launches:
        Kernel launches per unit of input scale (launch-latency term).
    io_read_base, io_write_base:
        Bytes of file I/O at input scale 1.0.
    runtime_noise_sigma:
        Log-normal run-to-run variability (ML/Python stacks are noisier,
        which the paper observes in its leave-one-app-out study).
    python_stack:
        True for the ML/Python applications (CANDLE, CosmoFlow, miniGAN,
        DeepCam): adds interpreter overhead instructions and page-table
        bloat from their large library stacks.
    """

    name: str
    description: str
    gpu_support: bool
    mix: InstructionMix
    kernels: tuple[KernelSpec, ...]
    base_instructions: float
    instr_exponent: float = 1.0
    working_set_base: float = 512e6
    ws_exponent: float = 1.0
    vectorizable: float = 0.5
    irregularity: float = 1.0
    mlp: float = 4.0
    parallel_fraction: float = 0.98
    comm_cost: float = 0.10
    gpu_offload: float = 0.0
    gpu_kernel_launches: float = 2e4
    io_read_base: float = 50e6
    io_write_base: float = 20e6
    runtime_noise_sigma: float = 0.03
    python_stack: bool = False
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        total = sum(k.weight for k in self.kernels)
        if not self.kernels or abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"{self.name}: kernel weights must sum to 1 (got {total:.4f})"
            )
        if self.gpu_support and not 0 < self.gpu_offload <= 1:
            raise ValueError(f"{self.name}: GPU app needs gpu_offload in (0,1]")
        if not self.gpu_support and self.gpu_offload != 0:
            raise ValueError(f"{self.name}: CPU-only app cannot offload")
        if self.base_instructions <= 0 or self.working_set_base <= 0:
            raise ValueError(f"{self.name}: sizes must be positive")
        if not 0 <= self.parallel_fraction <= 1:
            raise ValueError(f"{self.name}: parallel_fraction out of range")

    def instructions(self, size_scale: float) -> float:
        """Total dynamic instructions at an input size knob value."""
        return self.base_instructions * size_scale**self.instr_exponent

    def working_set(self, size_scale: float) -> float:
        """Total working set in bytes at an input size knob value."""
        return self.working_set_base * size_scale**self.ws_exponent
