"""The 20-application catalog (Table II).

Each entry's parameters encode the published computational character of
the proxy app.  The values are analytical-model inputs, not measurements;
what matters downstream is their *relative* structure (which apps are
branchy, bandwidth-bound, vectorizable, GPU-friendly, noisy) because
that is what creates the counter-to-RPV correlations the ML model learns.
"""

from __future__ import annotations

from dataclasses import replace

from repro.apps.spec import AppSpec, InstructionMix, KernelSpec
from repro.registry import Registry

__all__ = [
    "APPLICATIONS",
    "GPU_APPS",
    "CPU_ONLY_APPS",
    "ML_PYTHON_APPS",
    "get_app",
]


def _k(*pairs: tuple[str, float]) -> tuple[KernelSpec, ...]:
    return tuple(KernelSpec(name, weight) for name, weight in pairs)


#: The application registry: ``Mapping`` of canonical name -> AppSpec
#: with case-insensitive lookup and typed UnknownNameError on misses.
APPLICATIONS: Registry[AppSpec] = Registry("application")

#: Global work scale applied to every app's nominal instruction count.
#: Calibrated so the proxy-app runs land in the seconds-to-minutes range
#: the paper's scheduling experiment implies (50,000 jobs finish in
#: ~0.87 h on the four clusters), rather than hour-long single-core runs.
_WORK_SCALE = 1.0 / 15.0

#: Global scale on run-to-run noise.  Catalog sigmas encode the *relative*
#: noisiness of the apps (ML/Python stacks worst); this factor calibrates
#: absolute run-to-run variability to the 1-5% typical of dedicated HPC
#: nodes so that cross-system orderings are measurement-stable, as the
#: paper's SOS of 0.86 implies they were.
_NOISE_SCALE = 0.5


def _register(app: AppSpec) -> None:
    app = replace(
        app,
        base_instructions=app.base_instructions * _WORK_SCALE,
        io_read_base=app.io_read_base * _WORK_SCALE,
        io_write_base=app.io_write_base * _WORK_SCALE,
        # Kernel launches track iteration counts, so they scale with work.
        gpu_kernel_launches=app.gpu_kernel_launches * _WORK_SCALE,
        runtime_noise_sigma=app.runtime_noise_sigma * _NOISE_SCALE,
    )
    APPLICATIONS.register(app.name, app)


# ---------------------------------------------------------------------------
# GPU-capable applications (11)
# ---------------------------------------------------------------------------
_register(AppSpec(
    name="AMG",
    description="Algebraic multigrid solver",
    gpu_support=True,
    mix=InstructionMix(branch=0.09, load=0.32, store=0.10,
                       fp_sp=0.01, fp_dp=0.17, int_arith=0.14),
    kernels=_k(("hypre_Setup", 0.25), ("hypre_MatVec", 0.45),
               ("hypre_Relax", 0.20), ("hypre_Restrict", 0.10)),
    base_instructions=1.1e12,
    instr_exponent=1.05,
    working_set_base=3.0e9,
    vectorizable=0.25,
    irregularity=1.8,
    mlp=3.0,
    parallel_fraction=0.985,
    comm_cost=0.22,
    gpu_offload=0.88,
    runtime_noise_sigma=0.035,
))

_register(AppSpec(
    name="CANDLE",
    description="Deep learning models for cancer studies",
    gpu_support=True,
    mix=InstructionMix(branch=0.04, load=0.27, store=0.12,
                       fp_sp=0.34, fp_dp=0.01, int_arith=0.08),
    kernels=_k(("conv_forward", 0.40), ("gemm", 0.30),
               ("backprop", 0.22), ("optimizer_step", 0.08)),
    base_instructions=9.6e12,
    instr_exponent=1.0,
    working_set_base=6.0e9,
    vectorizable=0.92,
    irregularity=0.7,
    mlp=7.0,
    parallel_fraction=0.995,
    comm_cost=0.15,
    gpu_offload=0.97,
    gpu_kernel_launches=1.2e5,
    io_read_base=2.0e9,
    runtime_noise_sigma=0.10,
    python_stack=True,
))

_register(AppSpec(
    name="CosmoFlow",
    description="3D convolutional neural network for astrophysical studies",
    gpu_support=True,
    mix=InstructionMix(branch=0.035, load=0.28, store=0.13,
                       fp_sp=0.36, fp_dp=0.005, int_arith=0.07),
    kernels=_k(("conv3d", 0.55), ("pool", 0.10),
               ("dense", 0.20), ("grad_update", 0.15)),
    base_instructions=1.2e+13,
    working_set_base=9.0e9,
    vectorizable=0.94,
    irregularity=0.65,
    mlp=7.5,
    parallel_fraction=0.995,
    comm_cost=0.20,
    gpu_offload=0.97,
    gpu_kernel_launches=9e4,
    io_read_base=6.0e9,
    runtime_noise_sigma=0.11,
    python_stack=True,
))

_register(AppSpec(
    name="CRADL",
    description="Multiphysics and ALE hydrodynamics",
    gpu_support=True,
    mix=InstructionMix(branch=0.10, load=0.29, store=0.11,
                       fp_sp=0.02, fp_dp=0.20, int_arith=0.11),
    kernels=_k(("ale_remap", 0.30), ("hydro_step", 0.40),
               ("eos_eval", 0.18), ("mesh_relax", 0.12)),
    base_instructions=1.6e12,
    working_set_base=4.5e9,
    vectorizable=0.45,
    irregularity=1.6,
    mlp=3.5,
    parallel_fraction=0.98,
    comm_cost=0.25,
    gpu_offload=0.80,
    runtime_noise_sigma=0.045,
))

_register(AppSpec(
    name="ExaMiniMD",
    description="Molecular dynamics simulations",
    gpu_support=True,
    mix=InstructionMix(branch=0.07, load=0.30, store=0.08,
                       fp_sp=0.03, fp_dp=0.24, int_arith=0.10),
    kernels=_k(("force_lj", 0.55), ("neighbor_build", 0.20),
               ("integrate", 0.15), ("comm_exchange", 0.10)),
    base_instructions=1.3e12,
    working_set_base=1.2e9,
    vectorizable=0.55,
    irregularity=1.2,
    mlp=4.5,
    parallel_fraction=0.99,
    comm_cost=0.12,
    gpu_offload=0.92,
    runtime_noise_sigma=0.03,
))

_register(AppSpec(
    name="Laghos",
    description="FEM for compressible gas dynamics",
    gpu_support=True,
    mix=InstructionMix(branch=0.05, load=0.26, store=0.09,
                       fp_sp=0.02, fp_dp=0.30, int_arith=0.09),
    kernels=_k(("mass_pa_apply", 0.40), ("force_pa_apply", 0.35),
               ("cg_iteration", 0.15), ("quadrature_update", 0.10)),
    base_instructions=1.8e12,
    working_set_base=2.2e9,
    vectorizable=0.80,
    irregularity=0.8,
    mlp=6.0,
    parallel_fraction=0.99,
    comm_cost=0.15,
    gpu_offload=0.90,
    runtime_noise_sigma=0.03,
))

_register(AppSpec(
    name="miniFE",
    description="Unstructured implicit FEM codes",
    gpu_support=True,
    mix=InstructionMix(branch=0.08, load=0.34, store=0.09,
                       fp_sp=0.01, fp_dp=0.18, int_arith=0.13),
    kernels=_k(("cg_matvec", 0.60), ("cg_dot", 0.12),
               ("cg_axpy", 0.13), ("assemble_fe", 0.15)),
    base_instructions=1.0e12,
    working_set_base=5.0e9,
    vectorizable=0.30,
    irregularity=1.3,
    mlp=3.5,
    parallel_fraction=0.985,
    comm_cost=0.18,
    gpu_offload=0.85,
    runtime_noise_sigma=0.03,
))

_register(AppSpec(
    name="miniGAN",
    description="Generative Adversarial Neural Network training",
    gpu_support=True,
    mix=InstructionMix(branch=0.045, load=0.26, store=0.13,
                       fp_sp=0.33, fp_dp=0.01, int_arith=0.08),
    kernels=_k(("generator_fwd", 0.30), ("discriminator_fwd", 0.25),
               ("backprop", 0.30), ("loss_eval", 0.15)),
    base_instructions=8.0e12,
    working_set_base=4.0e9,
    vectorizable=0.90,
    irregularity=0.75,
    mlp=6.5,
    parallel_fraction=0.99,
    comm_cost=0.18,
    gpu_offload=0.96,
    gpu_kernel_launches=1.5e5,
    io_read_base=1.0e9,
    runtime_noise_sigma=0.12,
    python_stack=True,
))

_register(AppSpec(
    name="miniQMC",
    description="Real space quantum Monte Carlo",
    gpu_support=True,
    mix=InstructionMix(branch=0.08, load=0.28, store=0.09,
                       fp_sp=0.10, fp_dp=0.18, int_arith=0.11),
    kernels=_k(("spline_eval", 0.40), ("jastrow", 0.25),
               ("determinant_update", 0.25), ("walker_move", 0.10)),
    base_instructions=1.5e12,
    working_set_base=2.8e9,
    vectorizable=0.60,
    irregularity=1.4,
    mlp=4.0,
    parallel_fraction=0.99,
    comm_cost=0.08,
    gpu_offload=0.88,
    runtime_noise_sigma=0.04,
))

_register(AppSpec(
    name="DeepCam",
    description="Climate segmentation benchmark",
    gpu_support=True,
    mix=InstructionMix(branch=0.04, load=0.27, store=0.12,
                       fp_sp=0.35, fp_dp=0.005, int_arith=0.075),
    kernels=_k(("encoder", 0.40), ("decoder", 0.30),
               ("loss", 0.10), ("data_pipeline", 0.20)),
    base_instructions=1.3e+13,
    working_set_base=1.1e10,
    vectorizable=0.93,
    irregularity=0.7,
    mlp=7.0,
    parallel_fraction=0.995,
    comm_cost=0.22,
    gpu_offload=0.96,
    gpu_kernel_launches=1.1e5,
    io_read_base=1.2e10,
    io_write_base=5.0e8,
    runtime_noise_sigma=0.12,
    python_stack=True,
))

_register(AppSpec(
    name="XSBench",
    description="Monte Carlo neutron transport macroscopic cross section lookups",
    gpu_support=True,
    mix=InstructionMix(branch=0.13, load=0.38, store=0.04,
                       fp_sp=0.01, fp_dp=0.09, int_arith=0.16),
    kernels=_k(("xs_lookup", 0.75), ("binary_search", 0.15),
               ("tally", 0.10)),
    base_instructions=9.0e11,
    working_set_base=5.5e9,
    ws_exponent=0.8,
    vectorizable=0.10,
    irregularity=2.6,
    mlp=2.0,
    parallel_fraction=0.995,
    comm_cost=0.03,
    gpu_offload=0.90,
    runtime_noise_sigma=0.03,
))

# ---------------------------------------------------------------------------
# CPU-only applications (9)
# ---------------------------------------------------------------------------
_register(AppSpec(
    name="CoMD",
    description="Molecular dynamics and materials science algorithms",
    gpu_support=False,
    mix=InstructionMix(branch=0.08, load=0.29, store=0.08,
                       fp_sp=0.02, fp_dp=0.22, int_arith=0.11),
    kernels=_k(("force_eam", 0.55), ("link_cells", 0.20),
               ("velocity_verlet", 0.15), ("halo_exchange", 0.10)),
    base_instructions=1.2e12,
    working_set_base=9.0e8,
    vectorizable=0.45,
    irregularity=1.3,
    mlp=4.0,
    parallel_fraction=0.99,
    comm_cost=0.12,
    runtime_noise_sigma=0.03,
))

_register(AppSpec(
    name="Ember",
    description="Communication patterns",
    gpu_support=False,
    mix=InstructionMix(branch=0.10, load=0.25, store=0.10,
                       fp_sp=0.01, fp_dp=0.05, int_arith=0.18),
    kernels=_k(("halo3d", 0.45), ("sweep3d", 0.30), ("incast", 0.25)),
    base_instructions=3.0e11,
    working_set_base=6.0e8,
    vectorizable=0.20,
    irregularity=1.1,
    mlp=3.0,
    parallel_fraction=0.95,
    comm_cost=1.20,  # communication-dominated by design
    runtime_noise_sigma=0.05,
))

_register(AppSpec(
    name="miniTri",
    description="Triangle enumeration via sparse linear algebra (Monte Carlo variants)",
    gpu_support=False,
    mix=InstructionMix(branch=0.14, load=0.37, store=0.06,
                       fp_sp=0.005, fp_dp=0.02, int_arith=0.22),
    kernels=_k(("spgemm", 0.60), ("triangle_count", 0.30),
               ("graph_read", 0.10)),
    base_instructions=8.0e11,
    working_set_base=7.0e9,
    vectorizable=0.08,
    irregularity=2.8,
    mlp=1.8,
    parallel_fraction=0.93,
    comm_cost=0.30,
    runtime_noise_sigma=0.05,
))

_register(AppSpec(
    name="miniVite",
    description="Graph community detection (Louvain)",
    gpu_support=False,
    mix=InstructionMix(branch=0.15, load=0.36, store=0.07,
                       fp_sp=0.01, fp_dp=0.05, int_arith=0.20),
    kernels=_k(("louvain_iterate", 0.65), ("modularity", 0.20),
               ("graph_rebuild", 0.15)),
    base_instructions=7.0e11,
    working_set_base=6.0e9,
    vectorizable=0.06,
    irregularity=3.0,
    mlp=1.6,
    parallel_fraction=0.92,
    comm_cost=0.35,
    runtime_noise_sigma=0.06,
))

_register(AppSpec(
    name="Nekbone",
    description="Navier-Stokes spectral element solver kernel",
    gpu_support=False,
    mix=InstructionMix(branch=0.04, load=0.27, store=0.08,
                       fp_sp=0.01, fp_dp=0.33, int_arith=0.08),
    kernels=_k(("ax_local", 0.60), ("cg_glsc3", 0.15),
               ("gs_op", 0.15), ("add2s2", 0.10)),
    base_instructions=1.9e12,
    working_set_base=1.6e9,
    vectorizable=0.90,
    irregularity=0.6,
    mlp=6.0,
    parallel_fraction=0.99,
    comm_cost=0.15,
    runtime_noise_sigma=0.025,
))

_register(AppSpec(
    name="PICSARLite",
    description="Particle-in-Cell simulation",
    gpu_support=False,
    mix=InstructionMix(branch=0.07, load=0.31, store=0.12,
                       fp_sp=0.02, fp_dp=0.21, int_arith=0.12),
    kernels=_k(("particle_push", 0.40), ("current_deposit", 0.30),
               ("field_gather", 0.20), ("maxwell_solve", 0.10)),
    base_instructions=1.4e12,
    working_set_base=3.5e9,
    vectorizable=0.40,
    irregularity=1.5,
    mlp=3.0,
    parallel_fraction=0.98,
    comm_cost=0.18,
    runtime_noise_sigma=0.035,
))

_register(AppSpec(
    name="SW4lite",
    description="Seismic wave simulation (4th order stencils)",
    gpu_support=False,
    mix=InstructionMix(branch=0.03, load=0.33, store=0.11,
                       fp_sp=0.01, fp_dp=0.28, int_arith=0.07),
    kernels=_k(("rhs4_stencil", 0.70), ("boundary_update", 0.15),
               ("supergrid_damping", 0.15)),
    base_instructions=2.2e12,
    working_set_base=8.0e9,
    vectorizable=0.88,
    irregularity=0.5,
    mlp=8.0,
    parallel_fraction=0.99,
    comm_cost=0.15,
    runtime_noise_sigma=0.025,
))

_register(AppSpec(
    name="SWFFT",
    description="Distributed-memory parallel 3D FFT",
    gpu_support=False,
    mix=InstructionMix(branch=0.05, load=0.32, store=0.16,
                       fp_sp=0.02, fp_dp=0.22, int_arith=0.09),
    kernels=_k(("fft_1d_pencils", 0.55), ("transpose_alltoall", 0.35),
               ("pack_unpack", 0.10)),
    base_instructions=1.1e12,
    instr_exponent=1.1,  # n log n work growth
    working_set_base=6.5e9,
    vectorizable=0.75,
    irregularity=0.8,
    mlp=5.0,
    parallel_fraction=0.98,
    comm_cost=0.70,  # all-to-all heavy
    runtime_noise_sigma=0.04,
))

_register(AppSpec(
    name="Thornado-mini",
    description="Radiative transfer solver in multi-group two-moment approximation",
    gpu_support=False,
    mix=InstructionMix(branch=0.06, load=0.28, store=0.09,
                       fp_sp=0.02, fp_dp=0.29, int_arith=0.09),
    kernels=_k(("moment_update", 0.45), ("opacity_eval", 0.25),
               ("riemann_solve", 0.20), ("limiter", 0.10)),
    base_instructions=1.7e12,
    working_set_base=2.0e9,
    vectorizable=0.65,
    irregularity=1.0,
    mlp=4.5,
    parallel_fraction=0.985,
    comm_cost=0.12,
    runtime_noise_sigma=0.03,
))

#: Names of applications with GPU support (11 of 20, per the paper prose).
GPU_APPS: tuple[str, ...] = tuple(
    sorted(a.name for a in APPLICATIONS.values() if a.gpu_support)
)

#: Names of CPU-only applications (9 of 20).
CPU_ONLY_APPS: tuple[str, ...] = tuple(
    sorted(a.name for a in APPLICATIONS.values() if not a.gpu_support)
)

#: The ML / Python-stack applications the paper singles out in Fig. 5.
ML_PYTHON_APPS: tuple[str, ...] = tuple(
    sorted(a.name for a in APPLICATIONS.values() if a.python_stack)
)


def get_app(name: str) -> AppSpec:
    """Look up an application by name (case-insensitive).

    Raises :class:`repro.errors.UnknownNameError` (a ``KeyError``) with
    did-you-mean suggestions on a miss.
    """
    return APPLICATIONS[name]
