"""Crash-safe filesystem primitives shared by every artifact writer.

Three writers used to each hand-roll their own torn-write defense (or
none): the shard cache wrote temp-then-rename without fsync, run-dir
manifests were written in place, and saved configs too.  A crash (or
SIGKILL) mid-write could leave a half-written ``manifest.json`` that
every later reader would trust.  This module centralizes the pattern:

* :func:`atomic_write_bytes` / :func:`atomic_write_text` /
  :func:`atomic_write_json` — write to a same-directory temp file,
  flush + fsync it, then ``os.replace`` over the target.  Readers see
  either the old bytes or the new bytes, never a mix, even across
  power loss (the fsync orders data before the rename).
* :func:`append_line` — append one newline-terminated record with a
  single ``write`` call, then flush + fsync.  Used by the sweep
  journal: a crash can at worst leave one torn *trailing* line, which
  the journal reader detects and drops.

Layering: bottom of the graph beside :mod:`repro.errors` — stdlib only,
importable from anywhere (enforced by ``tools/check_layering.py``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "append_line",
]


def _fsync_dir(path: Path) -> None:
    """Best-effort fsync of *path*'s directory (persists the rename)."""
    try:
        fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. network filesystems
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write *data* to *path* atomically (temp + fsync + rename)."""
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(path)
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write *text* (UTF-8) to *path* atomically."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str | Path, payload, *,
                      indent: int | None = 2,
                      sort_keys: bool = True) -> Path:
    """Write *payload* as JSON to *path* atomically.

    Defaults match the run-dir convention (pretty, sorted, trailing
    newline); pass ``indent=None`` for the compact cache encoding.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    if indent is not None:
        text += "\n"
    return atomic_write_text(path, text)


def append_line(path: str | Path, line: str) -> None:
    """Append one record to *path* durably.

    *line* must not contain a newline (one record per line is the
    contract); the terminator is added here.  The single ``write`` of a
    short line is atomic on POSIX local filesystems, and the fsync makes
    the record durable before the caller proceeds — so a journal built
    from these calls can lose at most the line being written at the
    instant of a crash, never an earlier one.
    """
    if "\n" in line:
        raise ValueError("append_line record must not contain newlines")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())
