"""Working-set cache-miss model.

A classic capacity-style approximation: when a level's capacity covers
the per-core (or per-device) working set, only a small compulsory miss
ratio remains; beyond capacity the miss ratio grows following a
power-law tail of the capacity ratio.  Application irregularity scales
both components (pointer-chasing codes miss more at every level, dense
stencils less).  The three global miss ratios are forced monotone
non-increasing with capacity so the hierarchy is always consistent.
"""

from __future__ import annotations

import numpy as np

__all__ = ["miss_ratio", "hierarchy_miss_ratios"]

#: Compulsory (cold) miss ratio for a perfectly cache-resident working set.
_COMPULSORY = 0.012
#: Slope of the capacity tail (regular, streaming access benefits from
#: spatial locality within lines, so the base slope is modest).
_CAPACITY_WEIGHT = 0.06
#: Irregularity contribution to the capacity tail.
_IRREGULAR_WEIGHT = 0.20


def miss_ratio(
    working_set_bytes: float, cache_bytes: float, irregularity: float = 1.0
) -> float:
    """Global miss ratio of one cache level for a given working set.

    Parameters
    ----------
    working_set_bytes:
        Actively-touched bytes per core (private levels) or per node /
        device (shared levels).
    cache_bytes:
        Level capacity.
    irregularity:
        Application access-pattern irregularity (1.0 nominal; see
        :class:`repro.apps.AppSpec`).

    Returns
    -------
    float in [0.002, 0.98].
    """
    if working_set_bytes <= 0 or cache_bytes <= 0:
        raise ValueError("sizes must be positive")
    if irregularity <= 0:
        raise ValueError("irregularity must be positive")
    base = _COMPULSORY * irregularity
    ratio = cache_bytes / working_set_bytes
    if ratio >= 1.0:
        mr = base
    else:
        tail = (1.0 - np.sqrt(ratio)) * (
            _CAPACITY_WEIGHT + _IRREGULAR_WEIGHT * irregularity
        )
        mr = base + tail
    return float(np.clip(mr, 0.002, 0.98))


def hierarchy_miss_ratios(
    ws_private: float,
    ws_shared: float,
    l1_bytes: float,
    l2_bytes: float,
    l3_bytes: float,
    irregularity: float = 1.0,
) -> tuple[float, float, float]:
    """Global miss ratios (g1, g2, g3) for a three-level hierarchy.

    ``ws_private`` is the per-core working set seen by the private L1/L2;
    ``ws_shared`` the per-node working set competing for the shared L3.
    Ratios are clamped monotone (g1 >= g2 >= g3) so local miss ratios
    ``g_{i+1}/g_i`` are always valid probabilities.
    """
    g1 = miss_ratio(ws_private, l1_bytes, irregularity)
    g2 = min(g1, miss_ratio(ws_private, l2_bytes, irregularity))
    g3 = min(g2, miss_ratio(ws_shared, l3_bytes, irregularity))
    return g1, g2, g3
