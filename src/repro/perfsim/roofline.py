"""Roofline analysis utilities.

The simulator's time model is roofline-style; this module exposes that
structure for analysis: attainable performance as a function of
arithmetic intensity for each machine (CPU and GPU rooflines), each
application's operational intensity, and a classification of which
bound (compute, memory bandwidth, latency, communication) dominates a
given run.  These are the standard plots/narratives a performance
engineer builds before trusting a cross-architecture model, and they
back the ``machine_balance`` example analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.inputs import InputConfig
from repro.apps.spec import AppSpec
from repro.arch.hardware import MachineSpec
from repro.perfsim.config import RunConfig
from repro.perfsim.cpu import ACCESS_BYTES, simulate_cpu
from repro.perfsim.gpu import simulate_gpu

__all__ = [
    "Roofline",
    "cpu_roofline",
    "gpu_roofline",
    "app_operational_intensity",
    "attainable_gflops",
    "BoundClassification",
    "classify_bound",
]


@dataclass(frozen=True)
class Roofline:
    """One roof: peak compute rate and memory bandwidth.

    Attributes
    ----------
    label:
        e.g. ``"Quartz CPU (DP)"``.
    peak_gflops:
        Compute ceiling (GFLOP/s).
    bandwidth_gbs:
        Memory ceiling (GB/s).
    """

    label: str
    peak_gflops: float
    bandwidth_gbs: float

    @property
    def ridge_point(self) -> float:
        """Arithmetic intensity (flops/byte) where the roofs meet."""
        return self.peak_gflops / self.bandwidth_gbs

    def attainable(self, intensity: float) -> float:
        """Attainable GFLOP/s at the given arithmetic intensity."""
        if intensity <= 0:
            raise ValueError("intensity must be positive")
        return min(self.peak_gflops, self.bandwidth_gbs * intensity)


def cpu_roofline(machine: MachineSpec, precision: str = "dp") -> Roofline:
    """The node-level CPU roofline of a machine."""
    if precision == "dp":
        peak = machine.cpu.peak_dp_gflops
    elif precision == "sp":
        peak = machine.cpu.peak_sp_gflops
    else:
        raise ValueError(f"unknown precision {precision!r}")
    return Roofline(
        label=f"{machine.name} CPU ({precision.upper()})",
        peak_gflops=peak,
        bandwidth_gbs=machine.cpu.mem_bw_gbs,
    )


def gpu_roofline(machine: MachineSpec, precision: str = "dp") -> Roofline:
    """The node-level GPU roofline (all devices aggregated)."""
    if not machine.has_gpu:
        raise ValueError(f"{machine.name} has no GPUs")
    if precision == "dp":
        peak = machine.node_peak_gpu_dp_gflops
    elif precision == "sp":
        peak = machine.node_peak_gpu_sp_gflops
    else:
        raise ValueError(f"unknown precision {precision!r}")
    return Roofline(
        label=f"{machine.name} GPU ({precision.upper()})",
        peak_gflops=peak,
        bandwidth_gbs=machine.node_gpu_mem_bw_gbs,
    )


def app_operational_intensity(app: AppSpec) -> float:
    """Flops per byte of memory traffic for an application's mix.

    Uses the simulator's convention: every load/store moves
    ``ACCESS_BYTES`` bytes, every FP instruction is one scalar flop.
    """
    mix = app.mix
    flops = mix.fp_sp + mix.fp_dp
    bytes_moved = (mix.load + mix.store) * ACCESS_BYTES
    if bytes_moved <= 0:
        raise ValueError(f"{app.name} has no memory traffic in its mix")
    return flops / bytes_moved


def attainable_gflops(
    roofline: Roofline, intensities: np.ndarray
) -> np.ndarray:
    """Vectorized attainable-performance curve (the roofline plot)."""
    intensities = np.asarray(intensities, dtype=np.float64)
    if (intensities <= 0).any():
        raise ValueError("intensities must be positive")
    return np.minimum(roofline.peak_gflops,
                      roofline.bandwidth_gbs * intensities)


@dataclass(frozen=True)
class BoundClassification:
    """Which term of the time model dominates a run."""

    bound: str  # "compute" | "bandwidth" | "communication" | "io"
    time_seconds: float
    shares: dict[str, float]


def classify_bound(
    app: AppSpec,
    inp: InputConfig,
    machine: MachineSpec,
    config: RunConfig,
) -> BoundClassification:
    """Classify the dominant bound of one (noise-free) CPU-side run.

    For GPU runs, classifies the device roofline (compute vs memory vs
    launch overhead) instead.
    """
    instructions = app.instructions(inp.size_scale)
    working_set = app.working_set(inp.size_scale)
    if config.uses_gpu:
        gpu_run = simulate_gpu(
            app, inp.mix, machine, instructions * app.gpu_offload,
            working_set, gpus=config.gpus, size_scale=inp.size_scale,
        )
        shares = {
            "compute": gpu_run.time_compute,
            "bandwidth": gpu_run.time_memory,
            "launch": gpu_run.time_launch,
        }
        total = sum(shares.values())
        shares = {k: v / total for k, v in shares.items()}
        return BoundClassification(
            bound=max(shares, key=shares.get),
            time_seconds=gpu_run.time,
            shares=shares,
        )
    cpu_run = simulate_cpu(
        app, inp.mix, machine, instructions, working_set,
        nodes=config.nodes, cores=config.cores, ranks=config.ranks,
        io_bytes=app.io_read_base + app.io_write_base,
        comm_active=True,
    )
    shares = {
        "compute": cpu_run.time_issue,
        "bandwidth": cpu_run.time_bandwidth,
        "communication": cpu_run.time_comm,
        "io": cpu_run.time_io,
    }
    total = sum(shares.values())
    shares = {k: v / total for k, v in shares.items()}
    return BoundClassification(
        bound=max(shares, key=shares.get),
        time_seconds=cpu_run.time,
        shares=shares,
    )
