"""Run configurations (Section V-B).

"On each of these systems the applications are run in three
configurations — on one core, on one node using all the cores, and on
two nodes.  The one-core runs use one GPU if applicable.  MPI is used
for the one and two node runs to make use of all the cores and GPUs on
the node."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.hardware import MachineSpec
from repro.apps.spec import AppSpec

__all__ = ["SCALES", "RunConfig", "run_configs_for"]

#: Canonical scale labels, in the paper's order.
SCALES: tuple[str, ...] = ("1core", "1node", "2node")


@dataclass(frozen=True)
class RunConfig:
    """A concrete resource allocation for one run.

    Attributes
    ----------
    scale:
        One of :data:`SCALES`.
    nodes:
        Node count (1 or 2).
    cores:
        Total CPU cores in use across all nodes.
    ranks:
        MPI ranks.  CPU runs use one rank per core; GPU runs use one
        rank per GPU (the common proxy-app convention).
    gpus:
        Total GPUs in use (0 for CPU runs).
    uses_gpu:
        True when the application's GPU backend is active, which also
        selects GPU counters during profiling (Section V-B).
    """

    scale: str
    nodes: int
    cores: int
    ranks: int
    gpus: int
    uses_gpu: bool

    def __post_init__(self) -> None:
        if self.scale not in SCALES:
            raise ValueError(f"unknown scale {self.scale!r}")
        if self.nodes < 1 or self.cores < 1 or self.ranks < 1:
            raise ValueError("nodes/cores/ranks must be positive")
        if self.uses_gpu and self.gpus < 1:
            raise ValueError("uses_gpu requires gpus >= 1")


def make_run_config(app: AppSpec, machine: MachineSpec, scale: str) -> RunConfig:
    """Build the :class:`RunConfig` for (app, machine, scale).

    GPU-capable applications use the GPUs on GPU machines; CPU-only
    applications run CPU-only everywhere ("If an application does not
    support running on a GPU, we run it on the CPU only and use
    comparable CPU counters").
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")
    gpu_run = app.gpu_support and machine.has_gpu
    nodes = 2 if scale == "2node" else 1
    if scale == "1core":
        cores = 1
        gpus = 1 if gpu_run else 0
        ranks = 1
    else:
        cores = machine.cpu.cores * nodes
        gpus = machine.gpus_per_node * nodes if gpu_run else 0
        ranks = gpus if gpu_run else cores
    return RunConfig(
        scale=scale, nodes=nodes, cores=cores, ranks=ranks,
        gpus=gpus, uses_gpu=gpu_run,
    )


def run_configs_for(app: AppSpec, machine: MachineSpec) -> list[RunConfig]:
    """The paper's three run configurations for (app, machine)."""
    return [make_run_config(app, machine, scale) for scale in SCALES]
