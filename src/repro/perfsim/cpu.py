"""CPU execution-time model.

Roofline-style: instruction-issue cycles (with SIMD folded into FP
throughput), branch-misprediction penalties, cache-miss latency stalls,
and a DRAM bandwidth bound, combined as ``max(issue+stall, bandwidth)``
to model overlap.  Amdahl's law provides intra-node scaling: the
critical-path rank executes the serial remainder plus its share of the
parallel work.

All "instruction" quantities are scalar-equivalent operations; machines
with wider SIMD execute them at proportionally higher FP throughput.
This keeps instruction-category counters architecture-independent up to
measurement bias/noise, which matches how the paper's feature derivation
treats similarly-named counters as comparable across systems.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.spec import AppSpec, InstructionMix
from repro.arch.hardware import MachineSpec
from repro.perfsim.cache import hierarchy_miss_ratios

__all__ = ["CPURun", "simulate_cpu"]

#: Sustained shared-filesystem bandwidth (bytes/s) for the I/O term.
FS_BANDWIDTH = 2.0e9
#: Number of FP issue pipes per core.
FP_PIPES = 2.0
#: Store misses are partially hidden by write buffers.
STORE_MISS_FACTOR = 0.7
#: Bytes of DRAM traffic per missing scalar-equivalent access (line
#: granularity is folded into the miss-ratio model).
ACCESS_BYTES = 8.0


@dataclass(frozen=True)
class CPURun:
    """Outcome of the CPU model (times in seconds, counts per-rank means)."""

    time: float
    time_issue: float
    time_bandwidth: float
    time_comm: float
    time_io: float
    g1: float
    g2: float
    g3: float
    loads_rank: float
    stores_rank: float
    stall_cycles_rank: float


def _fp_ops_per_cycle(machine: MachineSpec, vectorizable: float) -> float:
    """Effective scalar-equivalent FP ops/cycle/core for a given app."""
    cpu = machine.cpu
    fma_mul = 2.0 if cpu.fma else 1.0
    per_instr = vectorizable * cpu.vector_width_dp * fma_mul + (1.0 - vectorizable)
    return FP_PIPES * per_instr


def _mem_ops_per_cycle(machine: MachineSpec, vectorizable: float) -> float:
    """Effective load/store/int ops/cycle/core: vector loads and stores
    move ``vector_width`` elements per instruction in vectorized code."""
    cpu = machine.cpu
    per_instr = vectorizable * cpu.vector_width_dp + (1.0 - vectorizable)
    return cpu.ipc_scalar * per_instr


def _prefetch_factor(irregularity: float) -> float:
    """Fraction of cache-miss latency left exposed after prefetching.

    Regular streaming access patterns are almost fully covered by
    hardware prefetchers; data-dependent access is not."""
    return float(min(1.0, max(0.06, (irregularity - 0.5) / 1.5)))


def simulate_cpu(
    app: AppSpec,
    mix: InstructionMix,
    machine: MachineSpec,
    instructions: float,
    working_set: float,
    nodes: int,
    cores: int,
    ranks: int,
    io_bytes: float,
    comm_active: bool,
) -> CPURun:
    """Model a CPU-side execution of *instructions* scalar-equivalent ops.

    Parameters mirror the run configuration; ``comm_active`` enables the
    communication term (off for the offload-host part of GPU runs, which
    accounts for communication separately).
    """
    if instructions < 0 or working_set <= 0:
        raise ValueError("instructions must be >= 0 and working_set > 0")
    cpu = machine.cpu
    clock = cpu.clock_ghz * 1e9

    # Amdahl critical path: serial remainder + parallel share.
    pf = app.parallel_fraction
    instr_cp = instructions * ((1.0 - pf) + pf / ranks)
    cores_per_node = max(1, cores // nodes)

    # --- issue cycles -------------------------------------------------
    f_fp = mix.fp_sp + mix.fp_dp
    f_mem_int = mix.load + mix.store + mix.int_arith
    f_scalar = max(0.0, 1.0 - f_fp - f_mem_int)
    fp_rate = _fp_ops_per_cycle(machine, app.vectorizable)
    mem_rate = _mem_ops_per_cycle(machine, app.vectorizable)
    cycles_fp = instr_cp * f_fp / fp_rate
    cycles_other = instr_cp * (
        f_mem_int / mem_rate + f_scalar / cpu.ipc_scalar
    )
    cycles_branch = (
        instr_cp
        * mix.branch
        * cpu.branch_mispredict_rate
        * app.irregularity
        * cpu.branch_mispredict_penalty_cycles
    )

    # --- cache and memory stalls ---------------------------------------
    ws_rank = working_set / ranks
    ws_node = working_set / nodes
    g1, g2, g3 = hierarchy_miss_ratios(
        ws_rank, ws_node,
        cpu.l1.size_bytes, cpu.l2.size_bytes, cpu.l3.size_bytes,
        app.irregularity,
    )
    accesses_cp = instr_cp * (mix.load + mix.store)
    mem_lat_cycles = cpu.mem_latency_ns * 1e-9 * clock
    prefetch = _prefetch_factor(app.irregularity)
    stall_cycles = (
        accesses_cp * g1 * cpu.l2.latency_cycles
        + accesses_cp * g2 * cpu.l3.latency_cycles
        + accesses_cp * g3 * mem_lat_cycles
    ) * prefetch / app.mlp

    time_issue = (cycles_fp + cycles_other + cycles_branch + stall_cycles) / clock

    # --- DRAM bandwidth bound ------------------------------------------
    # g3 already reflects line reuse, so traffic counts 8 bytes/access.
    accesses_node = instructions * (mix.load + mix.store) / nodes
    dram_bytes_node = accesses_node * g3 * ACCESS_BYTES
    # A single core cannot saturate node bandwidth; scale achievable
    # bandwidth with the used-core fraction.
    used_frac = cores_per_node / cpu.cores
    bw_frac = min(1.0, 0.10 + 0.90 * used_frac**0.7)
    time_bandwidth = dram_bytes_node / (cpu.mem_bw_gbs * 1e9 * bw_frac)

    t_work = max(time_issue, time_bandwidth)

    # --- communication and I/O -----------------------------------------
    time_comm = 0.0
    if comm_active and ranks > 1:
        bw_ratio = 12.5 / machine.interconnect_bw_gbs
        if nodes > 1:
            time_comm = app.comm_cost * t_work * bw_ratio
        else:
            # Shared-memory transport: much cheaper than the network.
            time_comm = 0.15 * app.comm_cost * t_work
    time_io = io_bytes / FS_BANDWIDTH

    # Per-rank mean event counts (the paper records the mean over ranks).
    instr_rank = instructions / ranks
    loads_rank = instr_rank * mix.load
    stores_rank = instr_rank * mix.store
    accesses_rank = loads_rank + stores_rank
    stall_rank = (
        accesses_rank * g1 * cpu.l2.latency_cycles
        + accesses_rank * g2 * cpu.l3.latency_cycles
        + accesses_rank * g3 * mem_lat_cycles
    ) * prefetch / app.mlp

    return CPURun(
        time=t_work + time_comm + time_io,
        time_issue=time_issue,
        time_bandwidth=time_bandwidth,
        time_comm=time_comm,
        time_io=time_io,
        g1=g1, g2=g2, g3=g3,
        loads_rank=loads_rank,
        stores_rank=stores_rank,
        stall_cycles_rank=stall_rank,
    )
