"""Top-level run simulation: (app, input, machine, config) -> time + events.

:func:`simulate_run` is the substitute for "run the application under
HPCToolkit on the cluster".  It returns the wall time (with reproducible
run-to-run noise) and the *true* raw event counts; the profiler layer
(:mod:`repro.profiler`) adds counter measurement noise and
architecture-specific naming on top.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.inputs import InputConfig
from repro.apps.spec import AppSpec
from repro.arch.hardware import MachineSpec
from repro.perfsim.config import RunConfig
from repro.perfsim.cpu import STORE_MISS_FACTOR, simulate_cpu
from repro.perfsim.gpu import simulate_gpu
from repro.perfsim.noise import NoiseModel

__all__ = ["RawCounts", "ExecutionResult", "simulate_run"]

#: Interpreter and framework overhead multiplier for Python-stack apps.
PYTHON_INSTR_OVERHEAD = 1.12
#: Fixed framework startup time (imports, JIT warmup) for Python stacks.
#: Kept proportionate to the globally scaled-down work (see
#: repro.apps.catalog._WORK_SCALE) so ML runs are not startup-dominated.
PYTHON_STARTUP_SECONDS = 3.0
#: Page size for the extended-page-table model.
PAGE_BYTES = 4096.0
#: Bytes of page-table entry per mapped page.
PTE_BYTES = 8.0
#: Resident library/interpreter footprint for Python-stack apps.
PYTHON_LIB_FOOTPRINT = 4.0e9
#: Baseline resident footprint for compiled apps.
NATIVE_LIB_FOOTPRINT = 2.0e8
#: Spread (log-normal sigma) of the per-(app, machine) software-stack
#: efficiency factor: compilers, math libraries, and GPU runtimes mature
#: differently per platform, so the same code sustains platform-dependent
#: fractions of the analytical-model rate.  Deterministic per pair — a
#: property of the software, not measurement noise.
STACK_EFFICIENCY_SIGMA = 0.40
#: Extra spread multiplier for Python/ML stacks: framework backends
#: (cuDNN vs MIOpen vs CPU BLAS, XLA availability, ...) differ far more
#: across platforms than compiled HPC codes do.  This is the mechanism
#: behind the paper's Fig. 5 observation that the ML/Python applications
#: are the hardest to generalize to.
PYTHON_STACK_SIGMA_SCALE = 1.7
#: Smaller additional spread per (app, machine, scale): scaling behavior
#: (thread runtimes, MPI stacks) also differs per platform.
STACK_SCALE_SIGMA = 0.10


def _stack_efficiency(app_name: str, machine_name: str, scale: str,
                      python_stack: bool = False) -> float:
    """Deterministic software-stack time multiplier for (app, machine)."""
    from repro.perfsim.noise import stable_hash

    sigma = STACK_EFFICIENCY_SIGMA
    if python_stack:
        sigma *= PYTHON_STACK_SIGMA_SCALE
    rng = np.random.default_rng(
        np.random.SeedSequence(
            [stable_hash(app_name), stable_hash(machine_name), 1009]
        )
    )
    base = float(np.exp(rng.normal(0.0, sigma)))
    rng2 = np.random.default_rng(
        np.random.SeedSequence(
            [stable_hash(app_name), stable_hash(machine_name),
             stable_hash(scale), 2003]
        )
    )
    return base * float(np.exp(rng2.normal(0.0, STACK_SCALE_SIGMA)))


@dataclass(frozen=True)
class RawCounts:
    """True (noise-free) per-rank mean event counts for one run.

    On GPU runs these are device-side counts ("If an application does
    support running on a GPU, then only GPU counters are collected",
    Section V-B), except I/O and page-table size which are host/OS-level.
    """

    total_instructions: float
    branch: float
    load: float
    store: float
    fp_sp: float
    fp_dp: float
    int_arith: float
    l1_load_miss: float
    l1_store_miss: float
    l2_load_miss: float
    l2_store_miss: float
    io_read_bytes: float
    io_write_bytes: float
    ept_bytes: float
    mem_stall_cycles: float
    from_gpu: bool

    def as_dict(self) -> dict[str, float]:
        d = self.__dict__.copy()
        d["from_gpu"] = float(self.from_gpu)
        return d


@dataclass(frozen=True)
class ExecutionResult:
    """One simulated run: identity, wall time, and raw events."""

    app_name: str
    input_label: str
    machine_name: str
    config: RunConfig
    time_seconds: float
    counts: RawCounts

    def __post_init__(self) -> None:
        if self.time_seconds <= 0:
            raise ValueError("time must be positive")


def simulate_run(
    app: AppSpec,
    inp: InputConfig,
    machine: MachineSpec,
    config: RunConfig,
    seed: int = 0,
    trial: int = 0,
    stack_effects: bool = True,
) -> ExecutionResult:
    """Simulate one execution and return time plus true event counts.

    The run is fully determined by (app, input, machine, config, seed,
    trial): repeated calls return identical results; different ``trial``
    values model repeated noisy executions of the same configuration.
    ``stack_effects=False`` disables the per-(app, machine) software
    stack efficiency factor, exposing the pure hardware model (used in
    physics tests and the ablation benchmarks).
    """
    if inp.app_name != app.name:
        raise ValueError(
            f"input {inp.label!r} belongs to {inp.app_name}, not {app.name}"
        )
    mix = inp.mix
    instructions = app.instructions(inp.size_scale)
    if app.python_stack:
        instructions *= PYTHON_INSTR_OVERHEAD
    working_set = app.working_set(inp.size_scale)
    io_read = app.io_read_base * inp.io_scale
    io_write = app.io_write_base * inp.io_scale
    io_bytes = io_read + io_write

    noise = NoiseModel(
        app.name, inp.label, machine.name, config.scale, trial, seed=seed
    )

    if config.uses_gpu:
        offloaded = instructions * app.gpu_offload
        host_instr = instructions - offloaded
        gpu_run = simulate_gpu(
            app, mix, machine, offloaded, working_set,
            gpus=config.gpus, size_scale=inp.size_scale,
        )
        host = simulate_cpu(
            app, mix, machine, host_instr, working_set,
            nodes=config.nodes, cores=config.cores, ranks=config.ranks,
            io_bytes=io_bytes, comm_active=False,
        )
        # Communication between ranks (one per GPU) plus host orchestration.
        time_comm = 0.0
        if config.ranks > 1:
            bw_ratio = 12.5 / machine.interconnect_bw_gbs
            base = gpu_run.time
            time_comm = (
                app.comm_cost * base * bw_ratio
                if config.nodes > 1
                else 0.15 * app.comm_cost * base
            )
        time = gpu_run.time + host.time + time_comm
        counts = _gpu_counts(app, mix, machine, config, gpu_run,
                             offloaded, working_set, io_read, io_write)
    else:
        cpu_run = simulate_cpu(
            app, mix, machine, instructions, working_set,
            nodes=config.nodes, cores=config.cores, ranks=config.ranks,
            io_bytes=io_bytes, comm_active=True,
        )
        time = cpu_run.time
        counts = _cpu_counts(app, mix, config, cpu_run,
                             instructions, working_set, io_read, io_write)

    if app.python_stack:
        time += PYTHON_STARTUP_SECONDS

    if stack_effects:
        time *= _stack_efficiency(app.name, machine.name, config.scale,
                                  python_stack=app.python_stack)
    time *= noise.runtime_factor(app.runtime_noise_sigma)
    return ExecutionResult(
        app_name=app.name,
        input_label=inp.label,
        machine_name=machine.name,
        config=config,
        time_seconds=float(time),
        counts=counts,
    )


def _ept_bytes(app: AppSpec, working_set: float, ranks: int) -> float:
    footprint = working_set / ranks + (
        PYTHON_LIB_FOOTPRINT if app.python_stack else NATIVE_LIB_FOOTPRINT
    )
    return footprint / PAGE_BYTES * PTE_BYTES


def _cpu_counts(app, mix, config, cpu_run, instructions, working_set,
                io_read, io_write) -> RawCounts:
    instr_rank = instructions / config.ranks
    return RawCounts(
        total_instructions=instr_rank,
        branch=instr_rank * mix.branch,
        load=instr_rank * mix.load,
        store=instr_rank * mix.store,
        fp_sp=instr_rank * mix.fp_sp,
        fp_dp=instr_rank * mix.fp_dp,
        int_arith=instr_rank * mix.int_arith,
        l1_load_miss=cpu_run.loads_rank * cpu_run.g1,
        l1_store_miss=cpu_run.stores_rank * cpu_run.g1 * STORE_MISS_FACTOR,
        l2_load_miss=cpu_run.loads_rank * cpu_run.g2,
        l2_store_miss=cpu_run.stores_rank * cpu_run.g2 * STORE_MISS_FACTOR,
        io_read_bytes=io_read / config.ranks,
        io_write_bytes=io_write / config.ranks,
        ept_bytes=_ept_bytes(app, working_set, config.ranks),
        mem_stall_cycles=cpu_run.stall_cycles_rank,
        from_gpu=False,
    )


def _gpu_counts(app, mix, machine, config, gpu_run, offloaded, working_set,
                io_read, io_write) -> RawCounts:
    instr_gpu = offloaded / config.gpus
    return RawCounts(
        total_instructions=instr_gpu,
        branch=instr_gpu * mix.branch,
        load=instr_gpu * mix.load,
        store=instr_gpu * mix.store,
        fp_sp=instr_gpu * mix.fp_sp,
        fp_dp=instr_gpu * mix.fp_dp,
        int_arith=instr_gpu * mix.int_arith,
        l1_load_miss=gpu_run.loads_gpu * gpu_run.g_l1,
        l1_store_miss=gpu_run.stores_gpu * gpu_run.g_l1 * STORE_MISS_FACTOR,
        l2_load_miss=gpu_run.loads_gpu * gpu_run.g_l2,
        l2_store_miss=gpu_run.stores_gpu * gpu_run.g_l2 * STORE_MISS_FACTOR,
        io_read_bytes=io_read / config.ranks,
        io_write_bytes=io_write / config.ranks,
        ept_bytes=_ept_bytes(app, working_set, config.ranks),
        mem_stall_cycles=gpu_run.stall_cycles_gpu,
        from_gpu=True,
    )
