"""Measurement and run-to-run noise models.

Two noise sources mirror reality:

* **Runtime noise** — log-normal multiplicative jitter on execution time
  (OS interference, network contention, nondeterministic library
  kernels).  The sigma is application-specific: ML/Python stacks are the
  noisiest (the paper attributes their worse leave-one-app-out accuracy
  to exactly this).
* **Counter noise** — log-normal multiplicative jitter on every recorded
  counter, with a machine-specific sigma: mature CPU PAPI counters are
  less noisy than GPU profiling, and rocprof (Corona) is the newest
  (Section VIII-B discusses this asymmetry).  Each (machine, counter)
  pair additionally carries a small deterministic bias factor modelling
  the paper's observation that "counter names are not consistent across
  different architectures and they may also represent slightly different
  data".
"""

from __future__ import annotations

import numpy as np

from repro.parallel.seeding import stable_hash, substream

__all__ = ["NoiseModel", "stable_hash"]


class NoiseModel:
    """Deterministic noise generator for one run.

    Seeded by the (app, input, machine, scale, trial) identity through
    :func:`repro.parallel.seeding.substream`, so every run in the
    dataset is reproducible yet independently jittered — and any worker
    process can regenerate the exact stream from the run identity alone.
    """

    def __init__(self, *identity: str | int, seed: int = 0):
        self._rng = substream(seed, *identity)

    def runtime_factor(self, sigma: float) -> float:
        """Multiplicative log-normal runtime jitter (mean approximately 1)."""
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if sigma == 0:
            return 1.0
        return float(np.exp(self._rng.normal(-0.5 * sigma**2, sigma)))

    def counter_factor(self, counter: str, machine: str, sigma: float) -> float:
        """Multiplicative jitter for one counter on one machine.

        Combines a random log-normal term with a deterministic per
        (machine, counter) bias in [0.85, 1.18] modelling systematic
        semantic differences between similarly-named counters.
        """
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        bias_rng = np.random.default_rng(
            np.random.SeedSequence(
                [stable_hash(machine), stable_hash(counter), 77]
            )
        )
        bias = float(np.exp(bias_rng.uniform(np.log(0.85), np.log(1.18))))
        if sigma == 0:
            return bias
        return bias * float(np.exp(self._rng.normal(-0.5 * sigma**2, sigma)))
