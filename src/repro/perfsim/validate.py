"""Model-consistency audits for the simulator's inputs.

Analytical models fail silently when their parameters drift out of
physical ranges.  :func:`audit_machines` and :func:`audit_applications`
check every machine and application model against invariants (positive
rates, sane ridge points, mix fractions, kernel weights, GPU balance)
and return the violations as a frame — empty means clean.  The test
suite runs these audits so any future catalog edit that breaks an
invariant fails loudly.
"""

from __future__ import annotations

from repro.apps.catalog import APPLICATIONS
from repro.arch.machines import MACHINES
from repro.frame import Frame

__all__ = ["audit_machines", "audit_applications", "audit_all"]


def _violation(kind: str, subject: str, check: str, detail: str) -> dict:
    return {"kind": kind, "subject": subject, "check": check,
            "detail": detail}


def audit_machines() -> Frame:
    """Invariant checks over every machine model."""
    rows: list[dict] = []
    for name, machine in MACHINES.items():
        cpu = machine.cpu
        if not 0.5 <= cpu.clock_ghz <= 6.0:
            rows.append(_violation("machine", name, "clock_range",
                                   f"{cpu.clock_ghz} GHz"))
        if not 1 <= cpu.cores <= 512:
            rows.append(_violation("machine", name, "core_range",
                                   str(cpu.cores)))
        if cpu.l1.size_bytes >= cpu.l2.size_bytes >= cpu.l3.size_bytes:
            rows.append(_violation("machine", name, "cache_hierarchy",
                                   "sizes must strictly grow"))
        ridge = cpu.peak_dp_gflops / cpu.mem_bw_gbs
        if not 0.5 <= ridge <= 64:
            rows.append(_violation("machine", name, "cpu_ridge_point",
                                   f"{ridge:.1f} flops/byte"))
        if machine.has_gpu:
            gpu = machine.gpu
            if gpu.peak_dp_tflops > gpu.peak_sp_tflops:
                rows.append(_violation("machine", name, "gpu_precision",
                                       "DP peak exceeds SP peak"))
            node_gpu = machine.node_peak_gpu_dp_gflops
            if node_gpu < 5 * cpu.peak_dp_gflops:
                rows.append(_violation(
                    "machine", name, "gpu_dominance",
                    "node GPU peak should dwarf CPU peak"))
        if not 0 < machine.counter_noise_sigma < 1:
            rows.append(_violation("machine", name, "counter_noise",
                                   str(machine.counter_noise_sigma)))
    return Frame.from_records(rows) if rows else Frame(
        {"kind": [], "subject": [], "check": [], "detail": []}
    )


def audit_applications() -> Frame:
    """Invariant checks over every application model."""
    rows: list[dict] = []
    for name, app in APPLICATIONS.items():
        mix_sum = float(app.mix.as_array().sum())
        if not 0.3 <= mix_sum <= 1.0:
            rows.append(_violation("app", name, "mix_coverage",
                                   f"named mix covers {mix_sum:.2f}"))
        if not 1e9 <= app.base_instructions <= 1e14:
            rows.append(_violation("app", name, "work_range",
                                   f"{app.base_instructions:.2g} instr"))
        if not 1e7 <= app.working_set_base <= 1e12:
            rows.append(_violation("app", name, "working_set_range",
                                   f"{app.working_set_base:.2g} B"))
        if not 0.2 <= app.irregularity <= 4.0:
            rows.append(_violation("app", name, "irregularity_range",
                                   str(app.irregularity)))
        if not 0 <= app.vectorizable <= 1:
            rows.append(_violation("app", name, "vectorizable_range",
                                   str(app.vectorizable)))
        if app.gpu_support and app.gpu_offload < 0.5:
            rows.append(_violation("app", name, "offload_fraction",
                                   "GPU port offloading under half the work"))
        if app.python_stack and app.runtime_noise_sigma <= 0.02:
            rows.append(_violation("app", name, "ml_noise",
                                   "Python stacks should be noisier"))
    return Frame.from_records(rows) if rows else Frame(
        {"kind": [], "subject": [], "check": [], "detail": []}
    )


def audit_all() -> Frame:
    """All audits; empty frame means every model is consistent."""
    from repro.frame import concat

    machines = audit_machines()
    apps = audit_applications()
    parts = [f for f in (machines, apps) if f.num_rows]
    if not parts:
        return machines
    return concat(parts)
