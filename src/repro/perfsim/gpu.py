"""GPU execution-time model.

The offloaded fraction of the application's work runs at device rates
under a roofline ``max(compute, memory)`` with three GPU-specific
penalties:

* **Divergence** — branchy, irregular control flow serializes SIMT
  execution; the penalty grows with the app's branch fraction and
  irregularity, scaled by the device's ``divergence_penalty_scale``.
  This is the physical mechanism behind the paper's top feature (branch
  intensity separates CPU-friendly from GPU-friendly codes).
* **Utilization** — small working sets cannot fill a large device, so
  achievable rates scale sublinearly below a saturation size.
* **Launch overhead** — per-kernel launch latency, significant for
  frameworks that launch hundreds of thousands of small kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.spec import AppSpec, InstructionMix
from repro.arch.hardware import MachineSpec
from repro.perfsim.cache import miss_ratio

__all__ = ["GPURun", "simulate_gpu"]

#: Fraction of peak a well-tuned kernel sustains.
ACHIEVABLE = 0.55
#: Working-set size (bytes/GPU) at which a device saturates.
SATURATION_WS = 1.5e9
#: Nominal device clock for converting stall time to cycles.
GPU_CLOCK = 1.4e9
#: Bytes per scalar-equivalent memory access.
ACCESS_BYTES = 8.0


@dataclass(frozen=True)
class GPURun:
    """Outcome of the device model (times in seconds, counts per-GPU means)."""

    time: float
    time_compute: float
    time_memory: float
    time_launch: float
    utilization: float
    divergence_factor: float
    g_l1: float
    g_l2: float
    loads_gpu: float
    stores_gpu: float
    stall_cycles_gpu: float


def simulate_gpu(
    app: AppSpec,
    mix: InstructionMix,
    machine: MachineSpec,
    instructions_offloaded: float,
    working_set: float,
    gpus: int,
    size_scale: float,
) -> GPURun:
    """Model the offloaded portion of a run on *gpus* devices."""
    if machine.gpu is None:
        raise ValueError(f"{machine.name} has no GPU")
    if gpus < 1:
        raise ValueError("gpus must be >= 1")
    gpu = machine.gpu

    ws_per_gpu = working_set / gpus
    utilization = float(min(1.0, max(0.15, (ws_per_gpu / SATURATION_WS) ** 0.35)))
    divergence = 1.0 + gpu.divergence_penalty_scale * mix.branch * app.irregularity

    # --- compute roofline ----------------------------------------------
    sp_ops = instructions_offloaded * mix.fp_sp
    dp_ops = instructions_offloaded * mix.fp_dp
    int_ops = instructions_offloaded * mix.int_arith
    eff = ACHIEVABLE * utilization * gpus
    peak_sp = gpu.peak_sp_tflops * 1e12 * eff
    peak_dp = gpu.peak_dp_tflops * 1e12 * eff
    time_compute = (
        sp_ops / peak_sp + dp_ops / peak_dp + int_ops / peak_sp
    ) * divergence

    # --- memory roofline -------------------------------------------------
    accesses = instructions_offloaded * (mix.load + mix.store)
    l1_equiv = max(1.0, gpu.l2_bytes / 4.0)
    g_l1 = miss_ratio(ws_per_gpu, l1_equiv, app.irregularity)
    g_l2 = min(g_l1, miss_ratio(ws_per_gpu, gpu.l2_bytes, app.irregularity))
    # Uncoalesced access wastes bandwidth on irregular apps.
    coalesce_waste = 1.0 + 0.6 * max(0.0, app.irregularity - 0.5)
    hbm_bytes = accesses * ACCESS_BYTES * g_l2 * coalesce_waste
    time_memory = hbm_bytes / (gpu.mem_bw_gbs * 1e9 * gpus * utilization)

    # --- launch overhead -------------------------------------------------
    launches = app.gpu_kernel_launches * max(1.0, size_scale) ** 0.5
    time_launch = launches * gpu.kernel_launch_us * 1e-6

    time_kernel = max(time_compute, time_memory)

    # Per-GPU mean event counts.
    instr_gpu = instructions_offloaded / gpus
    loads_gpu = instr_gpu * mix.load
    stores_gpu = instr_gpu * mix.store
    stall_cycles_gpu = (time_memory / gpus) * GPU_CLOCK

    return GPURun(
        time=time_kernel + time_launch,
        time_compute=time_compute,
        time_memory=time_memory,
        time_launch=time_launch,
        utilization=utilization,
        divergence_factor=divergence,
        g_l1=g_l1,
        g_l2=g_l2,
        loads_gpu=loads_gpu,
        stores_gpu=stores_gpu,
        stall_cycles_gpu=stall_cycles_gpu,
    )
