"""Analytical cross-architecture performance simulator.

This package substitutes for the paper's physical application runs: given
an application model (:mod:`repro.apps`), an input configuration, a
machine model (:mod:`repro.arch`), and a run configuration (1 core /
1 node / 2 nodes, Section V-B), it produces an execution time and the raw
hardware event counts a profiler would observe.

The model is roofline-style and intentionally analytical rather than
cycle-accurate:

* CPU: instruction-mix-weighted issue cycles (with SIMD width and FMA
  folded into FP throughput), branch misprediction penalties, a
  three-level cache model driving latency stalls, a DRAM bandwidth bound,
  communication and I/O terms, and Amdahl intra-node scaling.
* GPU: offloaded work at device compute/bandwidth rates with branch
  divergence and utilization penalties, kernel-launch overheads, and the
  non-offloaded remainder on the host.

What matters downstream is that (a) relative performance across the four
Table I machines depends on application character in the physically
expected directions, and (b) the event counts a profiler sees correlate
with that character — exactly the structure the paper's ML model learns.
"""

from repro.perfsim.config import RunConfig, SCALES, run_configs_for
from repro.perfsim.cache import hierarchy_miss_ratios, miss_ratio
from repro.perfsim.execution import ExecutionResult, RawCounts, simulate_run
from repro.perfsim.noise import NoiseModel
from repro.perfsim.roofline import (
    BoundClassification,
    Roofline,
    app_operational_intensity,
    attainable_gflops,
    classify_bound,
    cpu_roofline,
    gpu_roofline,
)

__all__ = [
    "RunConfig",
    "SCALES",
    "run_configs_for",
    "miss_ratio",
    "hierarchy_miss_ratios",
    "ExecutionResult",
    "RawCounts",
    "simulate_run",
    "NoiseModel",
    "Roofline",
    "cpu_roofline",
    "gpu_roofline",
    "app_operational_intensity",
    "attainable_gflops",
    "BoundClassification",
    "classify_bound",
]
