"""Fast binary persistence for the MP-HPC dataset.

CSV round-trips (``MPHPCDataset.save``/``load``) are portable but slow
at paper scale; this module adds an ``.npz`` format: numeric columns as
float arrays, string columns as object arrays, the normalizer as an
embedded JSON sidecar so reloaded datasets can featurize *new* raw runs
consistently.  Round-trips are exact.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.dataset.features import FeatureNormalizer
from repro.dataset.generate import MPHPCDataset
from repro.frame import Frame

__all__ = ["save_npz", "load_npz"]

_META_KEY = "__repro_meta__"


def save_npz(dataset: MPHPCDataset, path: str | Path) -> None:
    """Write the dataset (columns + normalizer) as a compressed npz."""
    frame = dataset.frame
    arrays: dict[str, np.ndarray] = {}
    column_types: dict[str, str] = {}
    for name in frame.columns:
        col = frame[name]
        if col.dtype == object:
            arrays[f"col_{name}"] = np.array([str(v) for v in col])
            column_types[name] = "str"
        else:
            arrays[f"col_{name}"] = np.asarray(col)
            column_types[name] = str(col.dtype)
    try:
        normalizer = dataset.normalizer.to_dict()
    except RuntimeError:
        normalizer = None
    meta = {
        "columns": frame.columns,
        "column_types": column_types,
        "normalizer": normalizer,
        "feature_columns": list(dataset.feature_columns),
        "target_columns": list(dataset.target_columns),
    }
    arrays[_META_KEY] = np.array(json.dumps(meta))
    np.savez_compressed(Path(path), **arrays)


def load_npz(path: str | Path) -> MPHPCDataset:
    """Read a dataset written by :func:`save_npz`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} is not a repro dataset archive")
        meta = json.loads(str(archive[_META_KEY]))
        data: dict[str, np.ndarray] = {}
        for name in meta["columns"]:
            arr = archive[f"col_{name}"]
            if meta["column_types"][name] == "str":
                data[name] = arr.astype(object)
            else:
                data[name] = arr
    frame = Frame(data)
    if meta["normalizer"] is not None:
        normalizer = FeatureNormalizer.from_dict(meta["normalizer"])
    else:
        normalizer = FeatureNormalizer.identity()
    return MPHPCDataset(
        frame=frame,
        normalizer=normalizer,
        feature_columns=tuple(meta["feature_columns"]),
        target_columns=tuple(meta["target_columns"]),
    )
