"""On-disk persistence for the MP-HPC dataset.

Two layers live here:

* **Archives** — ``save_npz``/``load_npz``: one file per finished
  dataset (numeric columns as float arrays, string columns as object
  arrays, the fitted normalizer as an embedded JSON sidecar).  CSV
  round-trips (``MPHPCDataset.save``/``load``) stay as the portable
  format; npz is the fast one.  Round-trips are exact.

* **Shard cache** — :class:`ShardCache`: a content-addressed store of
  *raw run-record shards* keyed by :func:`shard_cache_key`, a stable
  SHA-256 over the full app spec, machine spec, scale, seed, input
  count, and :data:`~repro.dataset.schema.DATASET_SCHEMA_VERSION`.
  ``generate_dataset(cache=...)`` consults it before profiling a shard,
  so a warm rerun skips the simulator entirely.  Entries embed a
  payload checksum; a corrupt or truncated entry is detected, evicted,
  and regenerated rather than served.  Because the key is
  content-derived (never "latest"), a cache can be shared between
  branches or machines without coordination: either the bytes are the
  right ones or the key does not match.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.config import canonical_json
from repro.dataset.features import FeatureNormalizer
from repro.dataset.generate import MPHPCDataset
from repro.dataset.schema import DATASET_SCHEMA_VERSION
from repro.errors import DatasetError
from repro.frame import Frame
from repro.ioutils import atomic_write_json

__all__ = [
    "save_npz",
    "load_npz",
    "CacheStats",
    "ShardCache",
    "shard_cache_key",
]

_META_KEY = "__repro_meta__"


def save_npz(dataset: MPHPCDataset, path: str | Path) -> None:
    """Write the dataset (columns + normalizer) as a compressed npz."""
    frame = dataset.frame
    arrays: dict[str, np.ndarray] = {}
    column_types: dict[str, str] = {}
    for name in frame.columns:
        col = frame[name]
        if col.dtype == object:
            arrays[f"col_{name}"] = np.array([str(v) for v in col])
            column_types[name] = "str"
        else:
            arrays[f"col_{name}"] = np.asarray(col)
            column_types[name] = str(col.dtype)
    try:
        normalizer = dataset.normalizer.to_dict()
    except RuntimeError:
        normalizer = None
    meta = {
        "columns": frame.columns,
        "column_types": column_types,
        "normalizer": normalizer,
        "feature_columns": list(dataset.feature_columns),
        "target_columns": list(dataset.target_columns),
    }
    arrays[_META_KEY] = np.array(json.dumps(meta))
    np.savez_compressed(Path(path), **arrays)


def load_npz(path: str | Path) -> MPHPCDataset:
    """Read a dataset written by :func:`save_npz`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        if _META_KEY not in archive:
            raise DatasetError(f"{path} is not a repro dataset archive")
        meta = json.loads(str(archive[_META_KEY]))
        data: dict[str, np.ndarray] = {}
        for name in meta["columns"]:
            arr = archive[f"col_{name}"]
            if meta["column_types"][name] == "str":
                data[name] = arr.astype(object)
            else:
                data[name] = arr
    frame = Frame(data)
    if meta["normalizer"] is not None:
        normalizer = FeatureNormalizer.from_dict(meta["normalizer"])
    else:
        normalizer = FeatureNormalizer.identity()
    return MPHPCDataset(
        frame=frame,
        normalizer=normalizer,
        feature_columns=tuple(meta["feature_columns"]),
        target_columns=tuple(meta["target_columns"]),
    )


# ---------------------------------------------------------------------------
# Content-addressed shard cache
# ---------------------------------------------------------------------------
#: Deterministic JSON encoding — shared with config hashing and run
#: manifests so every content address in the package agrees on bytes.
_canonical_json = canonical_json


def shard_cache_key(app_spec, machine_spec, scale: str, seed: int,
                    inputs_per_app: int) -> str:
    """SHA-256 content address of one generation shard.

    The digest covers everything the shard's records are a function of:
    the complete application and machine dataclasses (so editing any
    model parameter invalidates exactly the affected entries), the run
    scale, the root seed, the input count, and the dataset schema
    version.
    """
    material = {
        "schema_version": DATASET_SCHEMA_VERSION,
        "app": asdict(app_spec),
        "machine": asdict(machine_spec),
        "scale": scale,
        "seed": int(seed),
        "inputs_per_app": int(inputs_per_app),
    }
    return hashlib.sha256(_canonical_json(material).encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one :class:`ShardCache`.

    The same typed object flows everywhere cache behaviour is observed:
    the cache accrues into its own instance, ``generate_dataset``
    returns the per-generation delta on the dataset, telemetry counters
    are fed from it, and the CLI prints it — so tests, telemetry, and
    output can never disagree about what a "hit" is.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Fold *other*'s counts into this instance; returns self."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        return self

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """The delta accrued after the *earlier* snapshot was taken."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
        )

    def copy(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.evictions)


@dataclass
class ShardCache:
    """Content-addressed on-disk cache of raw run-record shards.

    One JSON file per shard, named by its :func:`shard_cache_key`
    digest.  The payload embeds a SHA-256 checksum of the record list;
    :meth:`get` verifies it (plus the key echo) before serving, and a
    failed check deletes the entry and reports a miss — corruption can
    cost a regeneration, never a wrong dataset.

    Parameters
    ----------
    cache_dir:
        Directory for entries (created on first write).
    max_entries:
        Optional size cap; exceeding it evicts the oldest entries
        (by modification time) after each write.
    """

    cache_dir: str | Path
    max_entries: int | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.cache_dir = Path(self.cache_dir)
        if self.max_entries is not None and self.max_entries < 1:
            raise ValueError("max_entries must be >= 1")

    def _path(self, digest: str) -> Path:
        return Path(self.cache_dir) / f"{digest}.json"

    def get(self, digest: str) -> list[dict] | None:
        """Records for *digest*, or None on miss/corruption (counted)."""
        path = self._path(digest)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            self._evict(path)
            self.stats.misses += 1
            return None
        if not self._valid(payload, digest):
            self._evict(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload["records"]

    def put(self, digest: str, records: list[dict]) -> None:
        """Store *records* under *digest* (atomic write-then-rename)."""
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": digest,
            "schema_version": DATASET_SCHEMA_VERSION,
            "checksum": self._checksum(records),
            "records": records,
        }
        atomic_write_json(path, payload, indent=None, sort_keys=False)
        if self.max_entries is not None:
            self._prune()

    def __len__(self) -> int:
        return len(list(Path(self.cache_dir).glob("*.json")))

    @staticmethod
    def _checksum(records: list[dict]) -> str:
        return hashlib.sha256(_canonical_json(records).encode()).hexdigest()

    def _valid(self, payload, digest: str) -> bool:
        if not isinstance(payload, dict):
            return False
        if payload.get("key") != digest:
            return False
        if payload.get("schema_version") != DATASET_SCHEMA_VERSION:
            return False
        records = payload.get("records")
        if not isinstance(records, list):
            return False
        return payload.get("checksum") == self._checksum(records)

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        self.stats.evictions += 1

    def _prune(self) -> None:
        entries = sorted(
            Path(self.cache_dir).glob("*.json"),
            key=lambda p: (p.stat().st_mtime, p.name),
        )
        while len(entries) > self.max_entries:
            self._evict(entries.pop(0))
