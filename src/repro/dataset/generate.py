"""End-to-end MP-HPC dataset generation.

Drives the full pipeline the paper describes in Figure 1's first phase:
for every application and input, profile the run on every system at
every scale, parse each profile into a flat record, derive Table III
features, and attach RPV targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.apps.catalog import APPLICATIONS
from repro.apps.inputs import generate_inputs
from repro.arch.machines import MACHINES, SYSTEM_ORDER
from repro.dataset.features import FeatureNormalizer, derive_feature_frame
from repro.dataset.schema import (
    FEATURE_COLUMNS,
    META_COLUMNS,
    TARGET_COLUMNS,
)
from repro.frame import Frame, read_csv, write_csv
from repro.hatchet_lite import run_record
from repro.perfsim.config import SCALES, make_run_config
from repro.profiler import profile_run

__all__ = ["MPHPCDataset", "generate_dataset"]

#: Inputs per application chosen so the dataset lands at the paper's
#: size: 20 apps x 47 inputs x 3 scales x 4 systems = 11,280 rows
#: (paper: 11,312).
DEFAULT_INPUTS_PER_APP = 47


@dataclass
class MPHPCDataset:
    """The MP-HPC dataset: one frame with meta, feature, and target columns.

    Attributes
    ----------
    frame:
        Full table (meta + 21 features + 4 targets per row).
    normalizer:
        The fitted magnitude-feature normalizer (needed to featurize new
        runs consistently at prediction time).
    """

    frame: Frame
    normalizer: FeatureNormalizer
    feature_columns: tuple[str, ...] = field(default=FEATURE_COLUMNS)
    target_columns: tuple[str, ...] = field(default=TARGET_COLUMNS)

    @property
    def num_rows(self) -> int:
        return self.frame.num_rows

    def X(self) -> np.ndarray:
        """Feature matrix, shape ``(rows, 21)``."""
        return self.frame.to_matrix(list(self.feature_columns))

    def Y(self) -> np.ndarray:
        """RPV target matrix, shape ``(rows, 4)``."""
        return self.frame.to_matrix(list(self.target_columns))

    def column(self, name: str) -> np.ndarray:
        return self.frame[name]

    def apps(self) -> np.ndarray:
        return self.frame.unique("app")

    def subset(self, mask: np.ndarray) -> "MPHPCDataset":
        """Row-filtered copy sharing the fitted normalizer."""
        return MPHPCDataset(
            frame=self.frame.filter(mask),
            normalizer=self.normalizer,
            feature_columns=self.feature_columns,
            target_columns=self.target_columns,
        )

    def group_labels(self) -> np.ndarray:
        """(app, input, scale) group label per row — rows of the same
        group describe the same execution on different systems."""
        apps = self.frame["app"]
        inputs = self.frame["input"]
        scales = self.frame["scale"]
        return np.array(
            [f"{a}|{i}|{s}" for a, i, s in zip(apps, inputs, scales)],
            dtype=object,
        )

    def save(self, path: str | Path) -> None:
        write_csv(self.frame, path)

    @classmethod
    def load(cls, path: str | Path) -> "MPHPCDataset":
        frame = read_csv(path)
        # The saved table is already normalized, so the reloaded dataset
        # carries an identity normalizer; re-featurizing *new* raw runs
        # requires the original dataset's fitted normalizer.
        return cls(frame=frame, normalizer=FeatureNormalizer.identity())


def generate_dataset(
    inputs_per_app: int = DEFAULT_INPUTS_PER_APP,
    seed: int = 0,
    apps: list[str] | None = None,
    scales: tuple[str, ...] = SCALES,
    systems: tuple[str, ...] = SYSTEM_ORDER,
) -> MPHPCDataset:
    """Generate the MP-HPC dataset.

    Parameters
    ----------
    inputs_per_app:
        Input configurations per application (paper-scale default 47).
    seed:
        Master seed; the dataset is a pure function of its arguments.
    apps:
        Application subset (default: all 20).
    scales, systems:
        Run scales and systems to include.

    Returns
    -------
    MPHPCDataset
        With ``len(apps) * inputs_per_app * len(scales) * len(systems)``
        rows.
    """
    if inputs_per_app < 1:
        raise ValueError("inputs_per_app must be >= 1")
    app_names = list(apps) if apps is not None else sorted(APPLICATIONS)
    unknown = [a for a in app_names if a not in APPLICATIONS]
    if unknown:
        raise KeyError(f"unknown applications: {unknown}")

    records: list[dict] = []
    targets: list[np.ndarray] = []
    for app_name in app_names:
        app = APPLICATIONS[app_name]
        for inp in generate_inputs(app, inputs_per_app, seed=seed):
            for scale in scales:
                group: list[dict] = []
                times = np.empty(len(systems))
                for j, system in enumerate(systems):
                    machine = MACHINES[system]
                    config = make_run_config(app, machine, scale)
                    profile = profile_run(app, inp, machine, config, seed=seed)
                    rec = run_record(profile)
                    group.append(rec)
                    times[j] = rec["time_seconds"]
                # RPV relative to the slowest system: t_s / max_s t_s.
                rpv = times / times.max()
                for rec in group:
                    records.append(rec)
                    targets.append(rpv)

    raw = Frame.from_records(records)
    featured, normalizer = derive_feature_frame(raw)
    target_matrix = np.array(targets)
    for j, column in enumerate(TARGET_COLUMNS):
        featured = featured.with_column(column, target_matrix[:, j])

    keep = list(META_COLUMNS) + list(FEATURE_COLUMNS) + list(TARGET_COLUMNS)
    return MPHPCDataset(frame=featured.select(keep), normalizer=normalizer)
