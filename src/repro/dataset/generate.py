"""End-to-end MP-HPC dataset generation.

Drives the full pipeline the paper describes in Figure 1's first phase:
for every application and input, profile the run on every system at
every scale, parse each profile into a flat record, derive Table III
features, and attach RPV targets.

Generation is sharded: one shard profiles every input of one
application on one system at one scale, and shards are independent
because every random quantity is a :mod:`repro.parallel.seeding`
substream of the root seed and the shard's identity.  That buys two
things with zero effect on the output bytes:

* ``jobs=N`` fans shards out over a process pool
  (:func:`repro.parallel.run_tasks`), reassembling records in canonical
  (app, input, scale, system) order;
* ``cache``/``cache_dir`` consult a content-addressed
  :class:`~repro.dataset.store.ShardCache` before profiling, so a warm
  rerun skips the simulator entirely.

``tests/test_parallel_determinism.py`` pins the invariant that
sequential, parallel, and cached runs produce byte-identical datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, NamedTuple

import numpy as np

from repro import telemetry
from repro.apps.catalog import APPLICATIONS
from repro.apps.inputs import generate_inputs
from repro.arch.machines import MACHINES, SYSTEM_ORDER
from repro.dataset.features import FeatureNormalizer, derive_feature_frame
from repro.dataset.schema import (
    FEATURE_COLUMNS,
    META_COLUMNS,
    TARGET_COLUMNS,
)
from repro.errors import DatasetError
from repro.frame import Frame, read_csv, write_csv
from repro.hatchet_lite import run_record
from repro.parallel import run_tasks
from repro.perfsim.config import SCALES, make_run_config
from repro.profiler import profile_run

if TYPE_CHECKING:  # pragma: no cover - store imports generate at runtime
    from repro.dataset.store import CacheStats

__all__ = ["MPHPCDataset", "generate_dataset", "ShardTask"]

#: Inputs per application chosen so the dataset lands at the paper's
#: size: 20 apps x 47 inputs x 3 scales x 4 systems = 11,280 rows
#: (paper: 11,312).
DEFAULT_INPUTS_PER_APP = 47


@dataclass
class MPHPCDataset:
    """The MP-HPC dataset: one frame with meta, feature, and target columns.

    Attributes
    ----------
    frame:
        Full table (meta + 21 features + 4 targets per row).
    normalizer:
        The fitted magnitude-feature normalizer (needed to featurize new
        runs consistently at prediction time).
    cache_stats:
        Shard-cache hit/miss/eviction counts accrued while generating
        *this* dataset (None when generated without a cache, or loaded
        from disk).  Excluded from equality: two byte-identical datasets
        compare equal regardless of how the cache behaved.
    """

    frame: Frame
    normalizer: FeatureNormalizer
    feature_columns: tuple[str, ...] = field(default=FEATURE_COLUMNS)
    target_columns: tuple[str, ...] = field(default=TARGET_COLUMNS)
    cache_stats: "CacheStats | None" = field(
        default=None, compare=False, repr=False
    )

    @property
    def num_rows(self) -> int:
        return self.frame.num_rows

    def X(self) -> np.ndarray:
        """Feature matrix, shape ``(rows, 21)``."""
        return self.frame.to_matrix(list(self.feature_columns))

    def Y(self) -> np.ndarray:
        """RPV target matrix, shape ``(rows, 4)``."""
        return self.frame.to_matrix(list(self.target_columns))

    def column(self, name: str) -> np.ndarray:
        return self.frame[name]

    def apps(self) -> np.ndarray:
        return self.frame.unique("app")

    def subset(self, mask: np.ndarray) -> "MPHPCDataset":
        """Row-filtered copy sharing the fitted normalizer."""
        return MPHPCDataset(
            frame=self.frame.filter(mask),
            normalizer=self.normalizer,
            feature_columns=self.feature_columns,
            target_columns=self.target_columns,
        )

    def group_labels(self) -> np.ndarray:
        """(app, input, scale) group label per row — rows of the same
        group describe the same execution on different systems."""
        apps = self.frame["app"]
        inputs = self.frame["input"]
        scales = self.frame["scale"]
        return np.array(
            [f"{a}|{i}|{s}" for a, i, s in zip(apps, inputs, scales)],
            dtype=object,
        )

    def save(self, path: str | Path) -> None:
        write_csv(self.frame, path)

    @classmethod
    def load(cls, path: str | Path) -> "MPHPCDataset":
        """Load a dataset CSV, validating it against the MP-HPC schema.

        Raises
        ------
        DatasetError
            If the table's columns have drifted from the expected
            meta + feature + target layout; the message names the path
            and the missing/extra columns, instead of deferring to a
            bare ``KeyError`` at first column access.
        """
        frame = read_csv(path)
        if "target_machine" in frame and "rel_time" in frame:
            raise DatasetError(
                f"{path}: this is a schema-v2 long-format dataset; "
                "load it with repro.dataset.LongformDataset.load "
                "(or fold it back with LongformDataset.to_wide())"
            )
        expected = list(META_COLUMNS) + list(FEATURE_COLUMNS) + list(TARGET_COLUMNS)
        missing = [c for c in expected if c not in frame]
        extra = [c for c in frame.columns if c not in set(expected)]
        if missing or extra:
            raise DatasetError(
                f"{path}: dataset schema drift — "
                f"missing columns {missing}, unexpected columns {extra}"
            )
        # The saved table is already normalized, so the reloaded dataset
        # carries an identity normalizer; re-featurizing *new* raw runs
        # requires the original dataset's fitted normalizer.
        return cls(frame=frame, normalizer=FeatureNormalizer.identity())


class ShardTask(NamedTuple):
    """One generation shard: every input of one app on one system at one
    scale.  Plain strings/ints only, so tasks pickle cheaply to worker
    processes, which rebuild the heavyweight specs from the catalogs."""

    app_name: str
    scale: str
    system: str
    inputs_per_app: int
    seed: int


def _generate_shard(task: ShardTask) -> list[dict]:
    """Profile one shard and return its run records, in input order.

    Pure function of the task description: inputs are re-derived from
    the root seed (``generate_inputs`` is itself substream-seeded) and
    every profile's noise comes from the run's identity substream, so a
    worker produces exactly the records the sequential loop would.
    """
    with telemetry.span("dataset.shard", app=task.app_name,
                        system=task.system, scale=task.scale):
        app = APPLICATIONS[task.app_name]
        machine = MACHINES[task.system]
        config = make_run_config(app, machine, task.scale)
        inputs = generate_inputs(app, task.inputs_per_app, seed=task.seed)
        records = [
            run_record(profile_run(app, inp, machine, config, seed=task.seed))
            for inp in inputs
        ]
    telemetry.counter("dataset.shards.generated").inc()
    telemetry.counter("dataset.records.generated").inc(len(records))
    return records


def _gather_shards(
    tasks: list[ShardTask], jobs: int, cache
) -> dict[tuple[str, str, str], list[dict]]:
    """Resolve every task to its record list, via cache then executor."""
    from repro.dataset.store import shard_cache_key  # avoid import cycle

    shards: dict[tuple[str, str, str], list[dict]] = {}
    pending: list[ShardTask] = []
    digests: dict[ShardTask, str] = {}
    for task in tasks:
        if cache is not None:
            digests[task] = shard_cache_key(
                APPLICATIONS[task.app_name], MACHINES[task.system],
                task.scale, task.seed, task.inputs_per_app,
            )
            hit = cache.get(digests[task])
            if hit is not None:
                shards[task[:3]] = hit
                continue
        pending.append(task)
    for task, records in zip(pending, run_tasks(_generate_shard, pending,
                                                jobs=jobs)):
        if cache is not None:
            cache.put(digests[task], records)
        shards[task[:3]] = records
    return shards


def generate_dataset(
    inputs_per_app: int = DEFAULT_INPUTS_PER_APP,
    seed: int = 0,
    apps: list[str] | None = None,
    scales: tuple[str, ...] = SCALES,
    systems: tuple[str, ...] = SYSTEM_ORDER,
    jobs: int = 1,
    cache=None,
    cache_dir: str | Path | None = None,
) -> MPHPCDataset:
    """Generate the MP-HPC dataset.

    Parameters
    ----------
    inputs_per_app:
        Input configurations per application (paper-scale default 47).
    seed:
        Master seed; the dataset is a pure function of its arguments —
        ``jobs``, ``cache`` and ``cache_dir`` never change the output.
    apps:
        Application subset (default: all 20).
    scales, systems:
        Run scales and systems to include.
    jobs:
        Worker processes for shard generation (1 = inline; 0/None = all
        cores).
    cache:
        A :class:`~repro.dataset.store.ShardCache` to consult/populate
        (pass your own to read its hit/miss stats afterwards).
    cache_dir:
        Shorthand: directory for an internally-constructed cache.

    Returns
    -------
    MPHPCDataset
        With ``len(apps) * inputs_per_app * len(scales) * len(systems)``
        rows in canonical (app, input, scale, system) order.
    """
    if inputs_per_app < 1:
        raise ValueError("inputs_per_app must be >= 1")
    app_names = list(apps) if apps is not None else sorted(APPLICATIONS)
    unknown = [a for a in app_names if a not in APPLICATIONS]
    if unknown:
        raise KeyError(f"unknown applications: {unknown}")
    if cache is None and cache_dir is not None:
        from repro.dataset.store import ShardCache  # avoid import cycle

        cache = ShardCache(cache_dir)

    tasks = [
        ShardTask(app_name, scale, system, inputs_per_app, seed)
        for app_name in app_names
        for scale in scales
        for system in systems
    ]
    stats_before = cache.stats.copy() if cache is not None else None

    with telemetry.span("dataset.generate", shards=len(tasks),
                        apps=len(app_names), jobs=jobs):
        shards = _gather_shards(tasks, jobs, cache)

        # Reassemble in the canonical row order regardless of which
        # shards came from the cache, the pool, or the inline path.
        records: list[dict] = []
        for app_name in app_names:
            for i in range(inputs_per_app):
                for scale in scales:
                    for system in systems:
                        records.append(shards[(app_name, scale, system)][i])

        # RPV relative to the slowest system, t_s / max_s t_s, computed
        # for all (app, input, scale) groups at once: rows arrive
        # grouped with one row per system, so times reshape to
        # (groups, systems).
        times = np.array([rec["time_seconds"] for rec in records])
        rpv = times.reshape(-1, len(systems))
        rpv = rpv / rpv.max(axis=1, keepdims=True)
        target_matrix = np.repeat(rpv, len(systems), axis=0)

        with telemetry.span("dataset.featurize", rows=len(records)):
            raw = Frame.from_records(records)
            featured, normalizer = derive_feature_frame(raw)
        featured = featured.with_columns({
            column: target_matrix[:, j]
            for j, column in enumerate(TARGET_COLUMNS)
        })

    cache_delta = (cache.stats.since(stats_before)
                   if cache is not None else None)
    if cache_delta is not None:
        telemetry.counter("dataset.cache.hits").inc(cache_delta.hits)
        telemetry.counter("dataset.cache.misses").inc(cache_delta.misses)
        telemetry.counter("dataset.cache.evictions").inc(
            cache_delta.evictions
        )
    telemetry.gauge("dataset.rows").set(len(records))

    keep = list(META_COLUMNS) + list(FEATURE_COLUMNS) + list(TARGET_COLUMNS)
    return MPHPCDataset(frame=featured.select(keep), normalizer=normalizer,
                        cache_stats=cache_delta)
