"""MP-HPC dataset construction (Section V).

Builds the paper's Multi-Platform HPC dataset out of simulated profiled
runs: every (application, input, scale, system) tuple contributes one
row of derived Table III features, and every (application, input,
scale) group contributes a relative-performance-vector target over the
four systems.

Feature layout (21 columns, matching the paper's "21 columns" /
Table III):

* six instruction-ratio features (branch/store/load/single-FP/double-FP/
  integer intensity), each the category count over total instructions;
* eight magnitude features (L1/L2 load/store misses, IO bytes
  read/written, extended-page-table size, memory stalls), z-scored over
  the dataset;
* ``nodes``, ``cores``, ``uses_gpu``;
* a four-way one-hot architecture encoding.

Targets: the RPV relative to the slowest system, ``t_s / max_s t_s``
for each system ``s`` — see DESIGN.md for why this reading of the
paper's RPV (its ``rpv(.,.,min)`` form) is the one consistent with the
reported error magnitudes.
"""

from repro.dataset.features import (
    FeatureNormalizer,
    derive_feature_frame,
)
from repro.dataset.generate import MPHPCDataset, ShardTask, generate_dataset
from repro.dataset.longform import (
    LongformDataset,
    build_longform,
    frame_digest,
)
from repro.dataset.schema import (
    ARCH_COLUMNS,
    DATASET_SCHEMA_VERSION,
    FEATURE_COLUMNS,
    LONG_FEATURE_COLUMNS,
    LONG_META_COLUMNS,
    LONG_SCHEMA_VERSION,
    LONG_TARGET_COLUMN,
    MAGNITUDE_FEATURES,
    META_COLUMNS,
    RATIO_FEATURES,
    TARGET_COLUMNS,
)
from repro.dataset.store import (
    CacheStats,
    ShardCache,
    load_npz,
    save_npz,
    shard_cache_key,
)

__all__ = [
    "DATASET_SCHEMA_VERSION",
    "LONG_SCHEMA_VERSION",
    "LONG_FEATURE_COLUMNS",
    "LONG_META_COLUMNS",
    "LONG_TARGET_COLUMN",
    "FEATURE_COLUMNS",
    "RATIO_FEATURES",
    "MAGNITUDE_FEATURES",
    "ARCH_COLUMNS",
    "META_COLUMNS",
    "TARGET_COLUMNS",
    "FeatureNormalizer",
    "derive_feature_frame",
    "MPHPCDataset",
    "LongformDataset",
    "build_longform",
    "frame_digest",
    "ShardTask",
    "generate_dataset",
    "ShardCache",
    "CacheStats",
    "shard_cache_key",
    "save_npz",
    "load_npz",
]
