"""Schema-v2 long-format dataset: one row per (profile, target machine).

The v1 table is *wide*: each profiled run carries a 4-slot RPV target
indexed by the frozen ``SYSTEM_ORDER`` list, so the model can only rank
the machines it was trained on.  This module reshapes the same
measurements into the *long* format the descriptor-conditioned
predictor consumes: every (profile, target-machine) pair becomes one
row whose features are the profile's counters plus the **source** and
**target** machine descriptors, and whose target is the scalar
``rel_time = t_target / t_source``.  Because ``rel_time`` never
references "the slowest of the four", a model trained on these rows can
score a machine it has never seen from its descriptor alone.

The paper's figures must keep reproducing bit-identically, so the
transform is reversible: every long row carries both endpoint times and
:meth:`LongformDataset.to_wide` recomputes the wide RPV table with the
exact arithmetic :func:`repro.dataset.generate.generate_dataset` uses
(``times / times.max`` per group).  ``tests/test_longform.py`` pins the
round trip with a golden frame digest.

Loading is typed in both directions: handing a v1 wide CSV to
:meth:`LongformDataset.load` (or a v2 long CSV to
:meth:`~repro.dataset.generate.MPHPCDataset.load`) raises a
:class:`~repro.errors.DatasetError` that names the schema mismatch and
the upgrade path instead of failing on a missing column downstream.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.arch.descriptor import (
    DESCRIPTOR_FEATURES,
    MachineDescriptor,
    descriptor_from_spec,
)
from repro.arch.machines import MACHINES, SYSTEM_ORDER
from repro.dataset.features import FeatureNormalizer
from repro.dataset.generate import MPHPCDataset
from repro.dataset.schema import (
    ARCH_COLUMNS,
    COUNTER_FEATURES,
    FEATURE_COLUMNS,
    LONG_FEATURE_COLUMNS,
    LONG_META_COLUMNS,
    LONG_SCHEMA_VERSION,
    LONG_TARGET_COLUMN,
    META_COLUMNS,
    SOURCE_DESCRIPTOR_COLUMNS,
    TARGET_COLUMNS,
    TARGET_DESCRIPTOR_COLUMNS,
)
from repro.errors import DatasetError
from repro.frame import Frame, read_csv, write_csv

__all__ = [
    "LongformDataset",
    "build_longform",
    "frame_digest",
]


def frame_digest(frame: Frame) -> str:
    """SHA-256 over a frame's exact contents (names, dtypes, bytes).

    Two frames digest equal iff every column name, dtype, and value is
    identical — the "bit-identical" witness used by the v1→v2→v1
    golden round-trip test.
    """
    h = hashlib.sha256()
    for name in frame.columns:
        col = frame[name]
        h.update(name.encode())
        h.update(b"\x00")
        h.update(str(col.dtype).encode())
        h.update(b"\x00")
        if col.dtype == object:
            for value in col.tolist():
                h.update(repr(value).encode())
                h.update(b"\x1f")
        else:
            h.update(np.ascontiguousarray(col).tobytes())
    return h.hexdigest()


def _default_descriptors() -> dict[str, MachineDescriptor]:
    return {name: descriptor_from_spec(spec)
            for name, spec in MACHINES.items()}


@dataclass
class LongformDataset:
    """The descriptor-conditioned (schema-v2) dataset.

    Attributes
    ----------
    frame:
        Long table: :data:`~repro.dataset.schema.LONG_META_COLUMNS` +
        :data:`~repro.dataset.schema.LONG_FEATURE_COLUMNS` +
        ``rel_time``, in (source row, target machine) order.
    normalizer:
        The wide dataset's fitted magnitude normalizer, carried through
        so new raw profiles featurize consistently at prediction time.
    targets:
        Target-machine names, in the column order each source row was
        expanded with.
    """

    frame: Frame
    normalizer: FeatureNormalizer
    targets: tuple[str, ...] = field(default=SYSTEM_ORDER)
    feature_columns: tuple[str, ...] = field(default=LONG_FEATURE_COLUMNS)
    target_column: str = LONG_TARGET_COLUMN

    schema_version: int = LONG_SCHEMA_VERSION

    @property
    def num_rows(self) -> int:
        return self.frame.num_rows

    def X(self) -> np.ndarray:
        """Feature matrix, shape ``(rows, len(LONG_FEATURE_COLUMNS))``."""
        return self.frame.to_matrix(list(self.feature_columns))

    def y(self) -> np.ndarray:
        """``rel_time`` target vector, shape ``(rows,)``."""
        return np.asarray(self.frame[self.target_column], dtype=np.float64)

    def group_labels(self) -> np.ndarray:
        """(app, input, scale) label per long row, for grouped splits."""
        apps = self.frame["app"]
        inputs = self.frame["input"]
        scales = self.frame["scale"]
        return np.array(
            [f"{a}|{i}|{s}" for a, i, s in zip(apps, inputs, scales)],
            dtype=object,
        )

    def subset(self, mask: np.ndarray) -> "LongformDataset":
        """Row-filtered copy sharing the fitted normalizer."""
        return LongformDataset(
            frame=self.frame.filter(mask),
            normalizer=self.normalizer,
            targets=self.targets,
            feature_columns=self.feature_columns,
            target_column=self.target_column,
        )

    def exclude_machine(self, name: str) -> "LongformDataset":
        """Leave-one-machine-out view: drop every row that *touches*
        machine *name*, as source or as target.

        This is the training-side half of the holdout protocol in
        docs/GENERALIZATION.md: the returned dataset contains no
        measurement from the held-out machine, yet the trained model
        can still score it from its descriptor.
        """
        sources = self.frame["machine"].astype(str)
        targets = self.frame["target_machine"].astype(str)
        mask = (sources != name) & (targets != name)
        if not mask.any():
            raise DatasetError(
                f"excluding machine {name!r} leaves no rows"
            )
        out = self.subset(mask)
        out.targets = tuple(t for t in self.targets if t != name)
        return out

    def target_descriptors(self) -> dict[str, MachineDescriptor]:
        """Reconstruct each target machine's descriptor from its rows."""
        machines = self.frame["target_machine"].astype(str)
        out: dict[str, MachineDescriptor] = {}
        for name in self.targets:
            rows = np.flatnonzero(machines == name)
            if rows.size == 0:  # pragma: no cover - targets match frame
                continue
            row = int(rows[0])
            values = {
                feat: float(self.frame[f"tgt_{feat}"][row])
                for feat in DESCRIPTOR_FEATURES
            }
            out[name] = MachineDescriptor(name=name, **values)
        return out

    def to_wide(self) -> MPHPCDataset:
        """Reconstruct the schema-v1 wide RPV dataset, bit-identically.

        Only defined for a longform built over the paper's full frozen
        machine set (``targets == SYSTEM_ORDER``): the wide schema's
        arch one-hot and RPV slots have nowhere to put any other set.
        The RPV is recomputed with the same expression
        ``generate_dataset`` uses — identical operands, identical IEEE
        results — so figures rendered from either table match bit for
        bit.
        """
        if self.targets != tuple(SYSTEM_ORDER):
            raise DatasetError(
                "to_wide needs the full frozen machine set "
                f"{tuple(SYSTEM_ORDER)}, got targets={self.targets}"
            )
        n_targets = len(SYSTEM_ORDER)
        n_long = self.frame.num_rows
        if n_long == 0 or n_long % n_targets:
            raise DatasetError(
                f"longform row count {n_long} is not a multiple of "
                f"{n_targets} target machines"
            )
        tgt_names = self.frame["target_machine"].astype(str)
        expected = np.tile(np.array(SYSTEM_ORDER, dtype=object),
                           n_long // n_targets).astype(str)
        if not (tgt_names == expected).all():
            raise DatasetError(
                "longform target_machine column is not the canonical "
                "SYSTEM_ORDER tiling; cannot rebuild the wide view"
            )

        base = np.arange(0, n_long, n_targets)
        columns: dict[str, np.ndarray] = {}
        for name in META_COLUMNS:
            columns[name] = self.frame[name][base]
        for name in COUNTER_FEATURES:
            columns[name] = self.frame[name][base]
        machines = self.frame["machine"].astype(str)[base]
        for system, column in zip(SYSTEM_ORDER, ARCH_COLUMNS):
            columns[column] = (machines == system).astype(np.float64)

        times = np.asarray(
            self.frame["target_time_seconds"], dtype=np.float64
        ).reshape(-1, n_targets)
        rpv = times / times.max(axis=1, keepdims=True)
        for j, column in enumerate(TARGET_COLUMNS):
            columns[column] = rpv[:, j]

        order = list(META_COLUMNS) + list(FEATURE_COLUMNS) + list(
            TARGET_COLUMNS
        )
        frame = Frame({name: columns[name] for name in order})
        return MPHPCDataset(frame=frame, normalizer=self.normalizer)

    def save(self, path: str | Path) -> None:
        write_csv(self.frame, path)

    @classmethod
    def load(cls, path: str | Path) -> "LongformDataset":
        """Load a schema-v2 CSV; typed errors on drift or a v1 file.

        Raises
        ------
        DatasetError
            With an explicit upgrade hint when handed a schema-v1 wide
            dataset, or with the missing/extra columns on any other
            schema drift.
        """
        frame = read_csv(path)
        if ("rpv_quartz" in frame and "arch_quartz" in frame
                and "target_machine" not in frame):
            raise DatasetError(
                f"{path}: this is a schema-v1 wide-RPV dataset "
                f"(schema v{LONG_SCHEMA_VERSION} expected); upgrade it "
                "with build_longform(MPHPCDataset.load(path))"
            )
        expected = (list(LONG_META_COLUMNS) + list(LONG_FEATURE_COLUMNS)
                    + [LONG_TARGET_COLUMN])
        missing = [c for c in expected if c not in frame]
        extra = [c for c in frame.columns if c not in set(expected)]
        if missing or extra:
            raise DatasetError(
                f"{path}: longform schema drift — missing columns "
                f"{missing}, unexpected columns {extra}"
            )
        tgt_names = frame["target_machine"].astype(str)
        targets = tuple(dict.fromkeys(tgt_names.tolist()))
        return cls(frame=frame, normalizer=FeatureNormalizer.identity(),
                   targets=targets)


def build_longform(
    dataset: MPHPCDataset,
    descriptors: Mapping[str, MachineDescriptor] | None = None,
    targets: tuple[str, ...] | None = None,
) -> LongformDataset:
    """Reshape a wide (schema-v1) dataset into the long v2 format.

    Parameters
    ----------
    dataset:
        The wide MP-HPC dataset (any row subset, as long as every
        (app, input, scale) group retains one row per target machine).
    descriptors:
        Machine name → descriptor.  Defaults to descriptors extracted
        from every registered :data:`~repro.arch.machines.MACHINES`
        spec; pass your own to include machines registered post-hoc.
    targets:
        Target machines each profile is expanded against, in column
        order.  Defaults to the frozen ``SYSTEM_ORDER``.

    Every source row becomes ``len(targets)`` long rows, in source-row
    major order, so ``to_wide`` can fold them back losslessly.
    """
    if descriptors is None:
        descriptors = _default_descriptors()
    if targets is None:
        targets = tuple(SYSTEM_ORDER)
    if not targets:
        raise DatasetError("build_longform needs at least one target")
    unknown = [t for t in targets if t not in descriptors]
    if unknown:
        raise DatasetError(
            f"no descriptor for target machine(s) {unknown}; pass one "
            "via the descriptors mapping"
        )

    frame = dataset.frame
    n = frame.num_rows
    n_targets = len(targets)
    sources = frame["machine"].astype(str)
    unknown_src = sorted(set(sources.tolist()) - set(descriptors))
    if unknown_src:
        raise DatasetError(
            f"no descriptor for source machine(s) {unknown_src}"
        )
    labels = np.array(
        [f"{a}|{i}|{s}" for a, i, s in zip(
            frame["app"], frame["input"], frame["scale"])],
        dtype=object,
    )
    times = np.asarray(frame["time_seconds"], dtype=np.float64)

    # Time of each (group, machine) pair, for the target-time lookup.
    group_time: dict[tuple[str, str], float] = {}
    for label, machine, t in zip(labels, sources, times):
        group_time[(label, machine)] = t

    target_times = np.empty((n, n_targets), dtype=np.float64)
    for j, target in enumerate(targets):
        for i, label in enumerate(labels):
            try:
                target_times[i, j] = group_time[(label, target)]
            except KeyError:
                raise DatasetError(
                    f"group {label!r} has no row on target machine "
                    f"{target!r}; every group must be profiled on every "
                    "target"
                ) from None

    columns: dict[str, np.ndarray] = {
        "app": np.repeat(frame["app"], n_targets),
        "input": np.repeat(frame["input"], n_targets),
        "scale": np.repeat(frame["scale"], n_targets),
        "machine": np.repeat(frame["machine"], n_targets),
        "target_machine": np.tile(
            np.array(targets, dtype=object), n
        ),
        "time_seconds": np.repeat(times, n_targets),
        "target_time_seconds": target_times.reshape(-1),
    }
    for name in COUNTER_FEATURES:
        # np.repeat preserves dtype, so to_wide() recovers each counter
        # column exactly as the wide table stored it.
        columns[name] = np.repeat(frame[name], n_targets)

    # Source descriptor: one vector per source row, repeated per target.
    vec_by_name = {m: descriptors[m].vector()
                   for m in set(sources.tolist())}
    src_matrix = np.vstack([vec_by_name[m] for m in sources])
    src_long = np.repeat(src_matrix, n_targets, axis=0)
    for k, column in enumerate(SOURCE_DESCRIPTOR_COLUMNS):
        columns[column] = src_long[:, k]

    # Target descriptor: the targets' matrix tiled across source rows.
    tgt_matrix = np.vstack([descriptors[t].vector() for t in targets])
    tgt_long = np.tile(tgt_matrix, (n, 1))
    for k, column in enumerate(TARGET_DESCRIPTOR_COLUMNS):
        columns[column] = tgt_long[:, k]

    columns[LONG_TARGET_COLUMN] = (
        columns["target_time_seconds"] / columns["time_seconds"]
    )

    order = (list(LONG_META_COLUMNS) + list(LONG_FEATURE_COLUMNS)
             + [LONG_TARGET_COLUMN])
    long_frame = Frame({name: columns[name] for name in order})
    return LongformDataset(
        frame=long_frame,
        normalizer=dataset.normalizer,
        targets=tuple(targets),
    )
