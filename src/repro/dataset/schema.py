"""Column-name schema of the MP-HPC dataset."""

from __future__ import annotations

from repro.arch.machines import SYSTEM_ORDER

__all__ = [
    "DATASET_SCHEMA_VERSION",
    "RATIO_FEATURES",
    "MAGNITUDE_FEATURES",
    "CONFIG_FEATURES",
    "ARCH_COLUMNS",
    "FEATURE_COLUMNS",
    "TARGET_COLUMNS",
    "META_COLUMNS",
    "FEATURE_LABELS",
]

#: Version of the raw-record/feature schema.  Part of every shard-cache
#: key: bump it whenever the meaning or layout of generated records
#: changes, and every stale cache entry becomes a clean miss instead of
#: silently-served wrong data.
DATASET_SCHEMA_VERSION = 1

#: Instruction-ratio features (Table III, top block): category counts
#: divided by total instructions.  "Arithmetic Intensity" in the paper
#: "refers to the ratio of arithmetic instructions, not the conventional
#: flop-to-bandwidth ratio".
RATIO_FEATURES: tuple[str, ...] = (
    "branch_intensity",
    "store_intensity",
    "load_intensity",
    "fp_sp_intensity",
    "fp_dp_intensity",
    "int_intensity",
)

#: Magnitude features, z-scored over the dataset (Table III middle block).
MAGNITUDE_FEATURES: tuple[str, ...] = (
    "l1_load_misses",
    "l1_store_misses",
    "l2_load_misses",
    "l2_store_misses",
    "io_bytes_read",
    "io_bytes_written",
    "ept_size",
    "mem_stalls",
)

#: Run-configuration features.
CONFIG_FEATURES: tuple[str, ...] = ("nodes", "cores", "uses_gpu")

#: One-hot architecture encoding, in canonical system order.
ARCH_COLUMNS: tuple[str, ...] = tuple(
    f"arch_{name.lower()}" for name in SYSTEM_ORDER
)

#: All 21 model features, in canonical order.
FEATURE_COLUMNS: tuple[str, ...] = (
    RATIO_FEATURES + MAGNITUDE_FEATURES + CONFIG_FEATURES + ARCH_COLUMNS
)

#: Regression targets: RPV component per system (relative to slowest).
TARGET_COLUMNS: tuple[str, ...] = tuple(
    f"rpv_{name.lower()}" for name in SYSTEM_ORDER
)

#: Identity columns kept alongside features for grouping and analysis.
META_COLUMNS: tuple[str, ...] = (
    "app", "input", "machine", "scale", "time_seconds",
)

#: Human-readable labels for reports (Fig. 6 axis labels).
FEATURE_LABELS: dict[str, str] = {
    "branch_intensity": "Branch Intensity",
    "store_intensity": "Store Intensity",
    "load_intensity": "Load Intensity",
    "fp_sp_intensity": "Single FP Intensity",
    "fp_dp_intensity": "Double FP Intensity",
    "int_intensity": "Arithmetic Intensity",
    "l1_load_misses": "L1 Load Misses",
    "l1_store_misses": "L1 Store Misses",
    "l2_load_misses": "L2 Load Misses",
    "l2_store_misses": "L2 Store Misses",
    "io_bytes_read": "IO Bytes Read",
    "io_bytes_written": "IO Bytes Written",
    "ept_size": "Extended Page Table",
    "mem_stalls": "Memory Stalls",
    "nodes": "Nodes",
    "cores": "Cores",
    "uses_gpu": "Uses GPU",
    "arch_quartz": "Quartz",
    "arch_ruby": "Ruby",
    "arch_lassen": "Lassen",
    "arch_corona": "Corona",
}

assert len(FEATURE_COLUMNS) == 21, "paper: 21 feature columns"
