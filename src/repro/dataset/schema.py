"""Column-name schema of the MP-HPC dataset."""

from __future__ import annotations

from repro.arch.descriptor import DESCRIPTOR_FEATURES
from repro.arch.machines import SYSTEM_ORDER

__all__ = [
    "DATASET_SCHEMA_VERSION",
    "LONG_SCHEMA_VERSION",
    "RATIO_FEATURES",
    "MAGNITUDE_FEATURES",
    "CONFIG_FEATURES",
    "COUNTER_FEATURES",
    "ARCH_COLUMNS",
    "FEATURE_COLUMNS",
    "TARGET_COLUMNS",
    "META_COLUMNS",
    "FEATURE_LABELS",
    "SOURCE_DESCRIPTOR_COLUMNS",
    "TARGET_DESCRIPTOR_COLUMNS",
    "LONG_FEATURE_COLUMNS",
    "LONG_TARGET_COLUMN",
    "LONG_META_COLUMNS",
]

#: Version of the raw-record/feature schema.  Part of every shard-cache
#: key: bump it whenever the meaning or layout of generated records
#: changes, and every stale cache entry becomes a clean miss instead of
#: silently-served wrong data.
DATASET_SCHEMA_VERSION = 1

#: Instruction-ratio features (Table III, top block): category counts
#: divided by total instructions.  "Arithmetic Intensity" in the paper
#: "refers to the ratio of arithmetic instructions, not the conventional
#: flop-to-bandwidth ratio".
RATIO_FEATURES: tuple[str, ...] = (
    "branch_intensity",
    "store_intensity",
    "load_intensity",
    "fp_sp_intensity",
    "fp_dp_intensity",
    "int_intensity",
)

#: Magnitude features, z-scored over the dataset (Table III middle block).
MAGNITUDE_FEATURES: tuple[str, ...] = (
    "l1_load_misses",
    "l1_store_misses",
    "l2_load_misses",
    "l2_store_misses",
    "io_bytes_read",
    "io_bytes_written",
    "ept_size",
    "mem_stalls",
)

#: Run-configuration features.
CONFIG_FEATURES: tuple[str, ...] = ("nodes", "cores", "uses_gpu")

#: One-hot architecture encoding, in canonical system order.
ARCH_COLUMNS: tuple[str, ...] = tuple(
    f"arch_{name.lower()}" for name in SYSTEM_ORDER
)

#: All 21 model features, in canonical order.
FEATURE_COLUMNS: tuple[str, ...] = (
    RATIO_FEATURES + MAGNITUDE_FEATURES + CONFIG_FEATURES + ARCH_COLUMNS
)

#: Regression targets: RPV component per system (relative to slowest).
TARGET_COLUMNS: tuple[str, ...] = tuple(
    f"rpv_{name.lower()}" for name in SYSTEM_ORDER
)

#: Identity columns kept alongside features for grouping and analysis.
META_COLUMNS: tuple[str, ...] = (
    "app", "input", "machine", "scale", "time_seconds",
)

#: Human-readable labels for reports (Fig. 6 axis labels).
FEATURE_LABELS: dict[str, str] = {
    "branch_intensity": "Branch Intensity",
    "store_intensity": "Store Intensity",
    "load_intensity": "Load Intensity",
    "fp_sp_intensity": "Single FP Intensity",
    "fp_dp_intensity": "Double FP Intensity",
    "int_intensity": "Arithmetic Intensity",
    "l1_load_misses": "L1 Load Misses",
    "l1_store_misses": "L1 Store Misses",
    "l2_load_misses": "L2 Load Misses",
    "l2_store_misses": "L2 Store Misses",
    "io_bytes_read": "IO Bytes Read",
    "io_bytes_written": "IO Bytes Written",
    "ept_size": "Extended Page Table",
    "mem_stalls": "Memory Stalls",
    "nodes": "Nodes",
    "cores": "Cores",
    "uses_gpu": "Uses GPU",
    "arch_quartz": "Quartz",
    "arch_ruby": "Ruby",
    "arch_lassen": "Lassen",
    "arch_corona": "Corona",
}

assert len(FEATURE_COLUMNS) == 21, "paper: 21 feature columns"


# ---------------------------------------------------------------------------
# Schema v2: the descriptor-conditioned long format
# ---------------------------------------------------------------------------
# v1 is "wide": one row per profiled run, with a 4-slot RPV target
# indexed by the frozen machine list.  v2 is "long": one row per
# (profile, target machine), the profile's counters plus *explicit
# machine descriptors* for the source and target, and a scalar
# machine-set-independent target (the target/source time ratio).  A
# model trained on v2 rows can score a machine it never saw from its
# descriptor alone.  See docs/GENERALIZATION.md.

#: Version of the long-format table schema (v1 is the wide RPV table).
LONG_SCHEMA_VERSION = 2

#: The machine-independent counter features shared by both schemas
#: (v1's 21 columns minus the arch one-hot, which v2 replaces with the
#: source machine's descriptor).
COUNTER_FEATURES: tuple[str, ...] = (
    RATIO_FEATURES + MAGNITUDE_FEATURES + CONFIG_FEATURES
)

#: Descriptor columns for the machine the profile was collected on.
SOURCE_DESCRIPTOR_COLUMNS: tuple[str, ...] = tuple(
    f"src_{name}" for name in DESCRIPTOR_FEATURES
)

#: Descriptor columns for the machine whose performance is predicted.
TARGET_DESCRIPTOR_COLUMNS: tuple[str, ...] = tuple(
    f"tgt_{name}" for name in DESCRIPTOR_FEATURES
)

#: All v2 model features, in canonical order.
LONG_FEATURE_COLUMNS: tuple[str, ...] = (
    COUNTER_FEATURES + SOURCE_DESCRIPTOR_COLUMNS + TARGET_DESCRIPTOR_COLUMNS
)

#: v2 regression target: ``t_target / t_source`` for the profiled run.
#: Unlike the RPV (normalized by the slowest of a *fixed* machine set),
#: this ratio is well-defined for any machine pair, so rankings over an
#: arbitrary candidate set fall out of one argsort.
LONG_TARGET_COLUMN = "rel_time"

#: v2 identity columns: the v1 meta plus the target machine and both
#: endpoint times (kept exact so the wide view can be reconstructed
#: bit-identically).
LONG_META_COLUMNS: tuple[str, ...] = (
    "app", "input", "scale", "machine", "target_machine",
    "time_seconds", "target_time_seconds",
)
