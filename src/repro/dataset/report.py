"""Dataset summary reporting.

A generated dataset should be inspected before modeling: row coverage
per application/system/scale, target distribution, orderability, and
who wins where.  :func:`dataset_report` collects those views; the CLI
and examples print them.  All views are plain frames so they compose
with the rest of the analysis tooling.
"""

from __future__ import annotations

import numpy as np

from repro.arch.machines import SYSTEM_ORDER
from repro.dataset.generate import MPHPCDataset
from repro.frame import Frame

__all__ = ["coverage_table", "target_summary", "winner_table",
           "dataset_report"]


def coverage_table(dataset: MPHPCDataset) -> Frame:
    """Rows per (application, system) — the dataset's coverage grid."""
    frame = dataset.frame
    counts = frame.groupby(
        ["app", "machine"], {"rows": ("time_seconds", len)}
    )
    return counts.pivot("app", "machine", "rows")


def target_summary(dataset: MPHPCDataset) -> dict[str, float]:
    """Distributional summary of the RPV targets."""
    Y = dataset.Y()
    from repro.core.calibration import gap_statistics

    stats = gap_statistics(Y)
    return {
        "rows": float(Y.shape[0]),
        "rpv_mean": float(Y.mean()),
        "rpv_std": float(Y.std()),
        "rpv_min": float(Y.min()),
        "min_gap_median": stats["median"],
        "near_tied_fraction": stats["near_tied_fraction"],
    }


def winner_table(dataset: MPHPCDataset) -> Frame:
    """How often each system is fastest, overall and per scale."""
    Y = dataset.Y()
    scales = np.array([str(s) for s in dataset.frame["scale"]])
    winners = Y.argmin(axis=1)
    rows = []
    for j, system in enumerate(SYSTEM_ORDER):
        row: dict = {"system": system,
                     "overall": float((winners == j).mean())}
        for scale in sorted(set(scales)):
            mask = scales == scale
            row[scale] = float((winners[mask] == j).mean())
        rows.append(row)
    return Frame.from_records(rows)


def dataset_report(dataset: MPHPCDataset) -> str:
    """Human-readable multi-section dataset report."""
    lines = ["=== MP-HPC dataset report ==="]
    summary = target_summary(dataset)
    lines.append(
        f"rows: {int(summary['rows'])}  "
        f"apps: {len(dataset.apps())}  "
        f"features: {len(dataset.feature_columns)}"
    )
    lines.append(
        f"RPV targets: mean {summary['rpv_mean']:.3f}  "
        f"std {summary['rpv_std']:.3f}  min {summary['rpv_min']:.3f}"
    )
    lines.append(
        f"orderability: median adjacent gap {summary['min_gap_median']:.3f}, "
        f"{summary['near_tied_fraction']:.0%} of rows near-tied (<0.05)"
    )
    lines.append("")
    lines.append("fastest-system share (overall):")
    winners = winner_table(dataset)
    for system, share in zip(winners["system"], winners["overall"]):
        bar = "#" * int(round(40 * share))
        lines.append(f"  {system:8s} {share:6.1%} {bar}")
    return "\n".join(lines)
