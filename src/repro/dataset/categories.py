"""Counter-category taxonomy (Section V-C).

"Most of these counters fit into one of three categories: control flow,
data intensity, or I/O.  These categories capture the main performance
characteristics of applications across different architectures."

This module assigns every feature to the paper's taxonomy (plus the
run-configuration and architecture-indicator groups the model also
sees) and aggregates feature importances to category level — the view
behind the paper's qualitative claim that branchy control flow favors
CPUs while data intensity favors GPUs.
"""

from __future__ import annotations

from repro.dataset.schema import FEATURE_COLUMNS

__all__ = ["FEATURE_CATEGORIES", "CATEGORY_OF", "category_importances"]

#: The paper's three counter categories plus the two non-counter groups.
FEATURE_CATEGORIES: dict[str, tuple[str, ...]] = {
    "control_flow": ("branch_intensity",),
    "data_intensity": (
        "load_intensity",
        "store_intensity",
        "fp_sp_intensity",
        "fp_dp_intensity",
        "int_intensity",
        "l1_load_misses",
        "l1_store_misses",
        "l2_load_misses",
        "l2_store_misses",
        "mem_stalls",
        "ept_size",
    ),
    "io": ("io_bytes_read", "io_bytes_written"),
    "run_configuration": ("nodes", "cores", "uses_gpu"),
    "architecture": (
        "arch_quartz", "arch_ruby", "arch_lassen", "arch_corona",
    ),
}

#: Inverse mapping: feature name -> category name.
CATEGORY_OF: dict[str, str] = {
    feature: category
    for category, features in FEATURE_CATEGORIES.items()
    for feature in features
}

# Every schema feature must be categorized exactly once.
_missing = set(FEATURE_COLUMNS) - set(CATEGORY_OF)
assert not _missing, f"uncategorized features: {_missing}"


def category_importances(
    importances: dict[str, float]
) -> dict[str, float]:
    """Aggregate per-feature importances into Section V-C categories.

    *importances* maps feature name to importance (e.g. the output of
    :meth:`repro.core.CrossArchPredictor.feature_importances`); the
    result maps category name to summed importance, sorted descending.
    Unknown feature names raise.
    """
    unknown = set(importances) - set(CATEGORY_OF)
    if unknown:
        raise KeyError(f"unknown features: {sorted(unknown)}")
    totals: dict[str, float] = {name: 0.0 for name in FEATURE_CATEGORIES}
    for feature, value in importances.items():
        totals[CATEGORY_OF[feature]] += value
    return dict(sorted(totals.items(), key=lambda kv: -kv[1]))
