"""Feature derivation from run records (Section V-D).

"The instruction related counters ... are all computed to be ratios of
the total number of instructions ...  The remaining eight features are
normalized by subtracting that feature's mean to center its values and
dividing them by its standard deviation."
"""

from __future__ import annotations

import numpy as np

from repro.arch.machines import SYSTEM_ORDER
from repro.dataset.schema import (
    ARCH_COLUMNS,
    CONFIG_FEATURES,
    MAGNITUDE_FEATURES,
    RATIO_FEATURES,
)
from repro.frame import Frame

__all__ = [
    "FeatureNormalizer",
    "derive_feature_frame",
    "RAW_FOR_MAGNITUDE",
    "REQUIRED_RECORD_FIELDS",
]

#: Canonical raw-event field feeding each magnitude feature.
RAW_FOR_MAGNITUDE: dict[str, str] = {
    "l1_load_misses": "l1_load_miss",
    "l1_store_misses": "l1_store_miss",
    "l2_load_misses": "l2_load_miss",
    "l2_store_misses": "l2_store_miss",
    "io_bytes_read": "io_read_bytes",
    "io_bytes_written": "io_write_bytes",
    "ept_size": "ept_bytes",
    "mem_stalls": "mem_stall_cycles",
}

#: Canonical raw-event field feeding each ratio feature's numerator.
_RAW_FOR_RATIO: dict[str, str] = {
    "branch_intensity": "branch",
    "store_intensity": "store",
    "load_intensity": "load",
    "fp_sp_intensity": "fp_sp",
    "fp_dp_intensity": "fp_dp",
    "int_intensity": "int_arith",
}


#: Numeric fields a raw run record must carry (finite) for feature
#: derivation; ``machine`` is additionally required as a string field.
REQUIRED_RECORD_FIELDS: tuple[str, ...] = (
    "total_instructions",
    *_RAW_FOR_RATIO.values(),
    *RAW_FOR_MAGNITUDE.values(),
    *CONFIG_FEATURES,
)


class FeatureNormalizer:
    """Z-score normalizer for the eight magnitude features.

    Magnitude counters span many orders of magnitude, so they are
    log1p-transformed before centering/scaling (the paper does not
    specify a transform; without one a single large-IO run dominates
    the scale, which no reasonable pipeline would keep).
    """

    def __init__(self) -> None:
        self.means_: dict[str, float] | None = None
        self.stds_: dict[str, float] | None = None
        self._identity = False

    @classmethod
    def identity(cls) -> "FeatureNormalizer":
        """A fitted no-op normalizer (for already-normalized tables)."""
        norm = cls()
        norm.means_ = {f: 0.0 for f in MAGNITUDE_FEATURES}
        norm.stds_ = {f: 1.0 for f in MAGNITUDE_FEATURES}
        norm._identity = True
        return norm

    def fit(self, frame: Frame) -> "FeatureNormalizer":
        self.means_ = {}
        self.stds_ = {}
        for feature in MAGNITUDE_FEATURES:
            values = np.log1p(np.asarray(frame[feature], dtype=np.float64))
            self.means_[feature] = float(values.mean())
            std = float(values.std())
            self.stds_[feature] = std if std > 0 else 1.0
        return self

    def transform(self, frame: Frame) -> Frame:
        if self.means_ is None or self.stds_ is None:
            raise RuntimeError("transform called before fit")
        if self._identity:
            return frame
        # One batched copy for all eight columns instead of a full-frame
        # copy per column.
        return frame.with_columns({
            feature: (np.log1p(np.asarray(frame[feature], dtype=np.float64))
                      - self.means_[feature]) / self.stds_[feature]
            for feature in MAGNITUDE_FEATURES
        })

    def to_dict(self) -> dict:
        if self.means_ is None or self.stds_ is None:
            raise RuntimeError("normalizer not fitted")
        return {"means": dict(self.means_), "stds": dict(self.stds_)}

    @classmethod
    def from_dict(cls, data: dict) -> "FeatureNormalizer":
        norm = cls()
        norm.means_ = {k: float(v) for k, v in data["means"].items()}
        norm.stds_ = {k: float(v) for k, v in data["stds"].items()}
        return norm


def derive_feature_frame(
    records: Frame,
    normalizer: FeatureNormalizer | None = None,
) -> tuple[Frame, FeatureNormalizer]:
    """Turn a frame of raw run records into the 21 model features.

    *records* must contain the canonical event columns produced by
    :func:`repro.hatchet_lite.run_record` plus ``machine``, ``nodes``,
    ``cores``, ``uses_gpu``.  When *normalizer* is None a new one is
    fitted on these records (the paper normalizes over the dataset).

    Returns the augmented frame and the normalizer used.
    """
    total = np.asarray(records["total_instructions"], dtype=np.float64)
    if (total <= 0).any():
        raise ValueError("total_instructions must be positive")
    # All derived columns are computed as whole-column numpy expressions
    # and attached in one batched copy (with_columns), so feature
    # derivation is frame-level work rather than a per-column (or worse,
    # per-row) Python loop.
    derived: dict[str, np.ndarray] = {}
    for feature, raw in _RAW_FOR_RATIO.items():
        derived[feature] = np.asarray(records[raw], dtype=np.float64) / total
    for feature, raw in RAW_FOR_MAGNITUDE.items():
        derived[feature] = np.asarray(records[raw], dtype=np.float64)
    machines = records["machine"].astype(str)
    for system, column in zip(SYSTEM_ORDER, ARCH_COLUMNS):
        derived[column] = (machines == system).astype(np.float64)
    out = records.with_columns(derived)
    if normalizer is None:
        normalizer = FeatureNormalizer().fit(out)
    return normalizer.transform(out), normalizer


# Re-exported for schema completeness checks in tests.
RATIO_SOURCES = dict(_RAW_FOR_RATIO)
