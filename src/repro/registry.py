"""Generic named-plugin registry — the lookup spine of the package.

Every family of named things the CLI and library look up by string —
applications, machines, model factories, scheduling strategies, queue
policies, fault profiles — used to live in its own hand-rolled dict
with its own lookup helper and its own flavor of ``KeyError``.  This
module replaces them all with one :class:`Registry`:

* ``Mapping`` semantics, so existing ``REG[name]`` / ``name in REG`` /
  ``sorted(REG)`` call sites keep working unchanged;
* case-insensitive lookup (``REG["xsbench"]`` finds ``"XSBench"``),
  preserving the canonical spelling on iteration;
* a typed :class:`~repro.errors.UnknownNameError` on misses that names
  the registry kind, lists the valid names, and offers did-you-mean
  suggestions — no raw ``KeyError`` ever escapes to the CLI;
* ``@register`` decorator registration for classes and factories, plus
  plain ``register(name, obj)`` calls for constants.

Layering: this module may import nothing from :mod:`repro` except
:mod:`repro.errors` (enforced by ``tools/check_layering.py`` and
``tests/test_layering.py``).
"""

from __future__ import annotations

import difflib
from collections.abc import Iterator, Mapping
from typing import Callable, Generic, TypeVar

from repro.errors import UnknownNameError

__all__ = ["Registry", "UnknownNameError"]

T = TypeVar("T")


class Registry(Mapping, Generic[T]):
    """An ordered, case-insensitive mapping of canonical names to plugins.

    Parameters
    ----------
    kind:
        Human-readable singular noun for error messages
        (``"application"``, ``"machine"``, ``"strategy"``, ...).
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._items: dict[str, T] = {}          # canonical name -> object
        self._by_folded: dict[str, str] = {}    # casefolded -> canonical

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str | None = None, obj: T | None = None,
                 *, aliases: tuple[str, ...] = ()) -> T | Callable[[T], T]:
        """Register *obj* under *name*; usable directly or as a decorator.

        Direct: ``REG.register("Quartz", QUARTZ)``.
        Decorator: ``@REG.register("model")`` on a class or factory; with
        no name, the object's ``name`` attribute (or ``__name__``) is
        used.  Aliases resolve to the same object but do not appear in
        ``names()`` or iteration.
        """
        if obj is not None:
            if name is None:
                raise ValueError("register(obj=...) requires a name")
            self._add(name, obj, aliases)
            return obj

        def decorator(target: T) -> T:
            key = name
            if key is None:
                key = getattr(target, "name", None)
                if not isinstance(key, str):
                    key = getattr(target, "__name__", None)
            if not isinstance(key, str):
                raise ValueError(
                    f"cannot infer a registry name for {target!r}"
                )
            self._add(key, target, aliases)
            return target

        return decorator

    def _add(self, name: str, obj: T, aliases: tuple[str, ...]) -> None:
        folded = name.casefold()
        if folded in self._by_folded:
            raise ValueError(
                f"duplicate {self.kind} {name!r} "
                f"(already registered as {self._by_folded[folded]!r})"
            )
        self._items[name] = obj
        self._by_folded[folded] = name
        for alias in aliases:
            alias_folded = alias.casefold()
            if alias_folded in self._by_folded:
                raise ValueError(f"duplicate {self.kind} alias {alias!r}")
            self._by_folded[alias_folded] = name

    def __setitem__(self, name: str, obj: T) -> None:
        """Explicit override hatch: replace an existing entry in place
        (keeping its canonical spelling and position) or register a new
        one.  Used by calibration studies and test fixtures that swap a
        spec temporarily; ``register`` stays the duplicate-checked front
        door."""
        folded = name.casefold()
        canonical = self._by_folded.get(folded)
        if canonical is None:
            self._add(name, obj, ())
        else:
            self._items[canonical] = obj

    def __delitem__(self, name: str) -> None:
        canonical = self.canonical(name)
        del self._items[canonical]
        self._by_folded = {
            folded: kept for folded, kept in self._by_folded.items()
            if kept != canonical
        }

    # ------------------------------------------------------------------
    # Lookup (Mapping protocol)
    # ------------------------------------------------------------------
    def canonical(self, name: str) -> str:
        """The canonical spelling for *name*, or raise UnknownNameError."""
        try:
            return self._by_folded[name.casefold()]
        except (KeyError, AttributeError):
            raise self.unknown(name) from None

    def __getitem__(self, name: str) -> T:
        return self._items[self.canonical(name)]

    def __iter__(self) -> Iterator[str]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, name: object) -> bool:
        return (isinstance(name, str)
                and name.casefold() in self._by_folded)

    def names(self) -> tuple[str, ...]:
        """Canonical names in registration order."""
        return tuple(self._items)

    def unknown(self, name: object) -> UnknownNameError:
        """The typed lookup error for *name*, with suggestions attached."""
        known = sorted(self._items)
        suggestions: tuple[str, ...] = ()
        if isinstance(name, str):
            folded = {k.casefold(): k for k in self._by_folded}
            close = difflib.get_close_matches(
                str(name).casefold(), list(folded), n=3, cutoff=0.6
            )
            seen: list[str] = []
            for match in close:
                canonical = self._by_folded[match]
                if canonical not in seen:
                    seen.append(canonical)
            suggestions = tuple(seen)
        return UnknownNameError(self.kind, name, known=known,
                                suggestions=suggestions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {list(self._items)})"
