"""repro — reproduction of *Predicting Cross-Architecture Performance of
Parallel Programs* (Nichols et al., IPPS 2024).

Public API tour
---------------

Generate the MP-HPC dataset (simulated profiled runs on the four Table I
systems):

>>> from repro import generate_dataset
>>> dataset = generate_dataset(inputs_per_app=5, seed=0)  # small demo
>>> dataset.num_rows
1200

Train the cross-architecture RPV predictor and inspect it:

>>> from repro import CrossArchPredictor
>>> predictor = CrossArchPredictor.train(dataset)
>>> top = next(iter(predictor.feature_importances()))

Use it for multi-resource scheduling:

>>> from repro import Scheduler, build_workload, strategy_by_name, makespan
>>> jobs = build_workload(dataset, n_jobs=200, predictor=predictor)
>>> result = Scheduler(strategy_by_name("model")).run(jobs)
>>> makespan(result) > 0
True

Subpackages
-----------
``repro.core``     RPV math, predictor, training pipeline, evaluations
``repro.dataset``  MP-HPC dataset generation and Table III features
``repro.ml``       from-scratch boosting/forest/linear models + metrics
``repro.arch``     Table I machine models
``repro.apps``     Table II application workload models
``repro.perfsim``  analytical performance simulator
``repro.cct``      calling-context-tree substrate (HPCToolkit)
``repro.profiler`` simulated profiling + per-arch counter schemas
``repro.hatchet_lite`` profile parsing (Hatchet substitute)
``repro.sched``    FCFS+EASY multi-resource scheduling simulation
``repro.workloads`` job-trace sampling
``repro.frame``    columnar dataframe substrate (pandas substitute)
"""

from repro.core import (
    CrossArchPredictor,
    rpv,
    rpv_relative_to_fastest,
    rpv_relative_to_slowest,
    train_all_models,
    train_model,
)
from repro.dataset import MPHPCDataset, generate_dataset
from repro.sched import (
    Scheduler,
    average_bounded_slowdown,
    makespan,
    strategy_by_name,
)
from repro.workloads import build_workload

__version__ = "1.0.0"

__all__ = [
    "CrossArchPredictor",
    "rpv",
    "rpv_relative_to_slowest",
    "rpv_relative_to_fastest",
    "train_model",
    "train_all_models",
    "MPHPCDataset",
    "generate_dataset",
    "Scheduler",
    "strategy_by_name",
    "makespan",
    "average_bounded_slowdown",
    "build_workload",
    "__version__",
]
