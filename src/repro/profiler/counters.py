"""Per-architecture counter schemas (Table III "Source Counters").

A :class:`CounterSchema` maps between the simulator's canonical event
fields (:class:`repro.perfsim.RawCounts`) and the named counters a real
profiler would report on that architecture.  Three rule kinds cover the
mappings the paper describes:

* ``SumRule`` — one canonical field split across one or more named
  counters with fixed shares (e.g. CUPTI separates local and global
  loads; the reader sums them back).
* ``RateMissRule`` — the NVIDIA idiom: a request counter plus a hit-rate
  counter; misses are reconstructed as ``requests * (1 - hit_rate)``.
* ``TccSplitRule`` — the AMD idiom: one total L2 miss counter
  (``TCC_MISS_sum``) apportioned into load/store misses by the DRAM
  read/write request counters (``TCC_EA_RDREQ`` / ``TCC_EA_WRREQ``).

``encode`` produces noisy named-counter values for a run; ``decode``
recovers canonical fields from named counters (noise and per-machine
bias included, exactly as the paper's features inherit measurement
error).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.hardware import MachineSpec
from repro.perfsim.execution import RawCounts
from repro.perfsim.noise import NoiseModel, stable_hash

__all__ = [
    "SumRule",
    "RateMissRule",
    "TccSplitRule",
    "CounterSchema",
    "schema_for",
    "CANONICAL_FIELDS",
]

#: Canonical event fields every schema must cover.
CANONICAL_FIELDS: tuple[str, ...] = (
    "total_instructions",
    "branch",
    "load",
    "store",
    "fp_sp",
    "fp_dp",
    "int_arith",
    "l1_load_miss",
    "l1_store_miss",
    "l2_load_miss",
    "l2_store_miss",
    "io_read_bytes",
    "io_write_bytes",
    "ept_bytes",
    "mem_stall_cycles",
)


@dataclass(frozen=True)
class SumRule:
    """Canonical value = sum of the named counters (written with shares)."""

    field: str
    names: tuple[str, ...]
    shares: tuple[float, ...] = (1.0,)

    def __post_init__(self) -> None:
        if len(self.names) != len(self.shares):
            raise ValueError(f"{self.field}: names/shares length mismatch")
        if abs(sum(self.shares) - 1.0) > 1e-9:
            raise ValueError(f"{self.field}: shares must sum to 1")

    def encode(self, value: float, noisy) -> dict[str, float]:
        return {n: noisy(n, value * s) for n, s in zip(self.names, self.shares)}

    def decode(self, counters: dict[str, float]) -> float:
        return sum(counters[n] for n in self.names)

    def counter_names(self) -> tuple[str, ...]:
        return self.names


@dataclass(frozen=True)
class RateMissRule:
    """NVIDIA-style: requests counter + hit-rate counter.

    ``misses = requests * (1 - hit_rate)``.  The hit rate is a
    deterministic function of the machine/counter identity (a device
    property), so encode/decode round-trips.
    """

    field: str
    requests_name: str
    rate_name: str

    def _hit_rate(self) -> float:
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [stable_hash(self.requests_name), stable_hash(self.rate_name)]
            )
        )
        return float(rng.uniform(0.55, 0.85))

    def encode(self, value: float, noisy) -> dict[str, float]:
        hr = self._hit_rate()
        return {
            self.requests_name: noisy(self.requests_name, value / (1.0 - hr)),
            self.rate_name: hr,
        }

    def decode(self, counters: dict[str, float]) -> float:
        return counters[self.requests_name] * (1.0 - counters[self.rate_name])

    def counter_names(self) -> tuple[str, ...]:
        return (self.requests_name, self.rate_name)


@dataclass(frozen=True)
class TccSplitRule:
    """AMD-style: one total-miss counter apportioned by request counters.

    Handles *two* canonical fields at once (``l2_load_miss`` and
    ``l2_store_miss``) because they share the ``TCC_MISS_sum`` total.
    """

    total_name: str = "TCC_MISS_sum"
    read_req_name: str = "TCC_EA_RDREQ"
    write_req_name: str = "TCC_EA_WRREQ"

    def encode(self, load_miss: float, store_miss: float, noisy) -> dict[str, float]:
        return {
            self.total_name: noisy(self.total_name, load_miss + store_miss),
            self.read_req_name: noisy(self.read_req_name, load_miss),
            self.write_req_name: noisy(self.write_req_name, store_miss),
        }

    def decode(self, counters: dict[str, float]) -> tuple[float, float]:
        total = counters[self.total_name]
        rd = counters[self.read_req_name]
        wr = counters[self.write_req_name]
        denom = rd + wr
        if denom <= 0:
            return 0.0, 0.0
        return total * rd / denom, total * wr / denom

    def counter_names(self) -> tuple[str, ...]:
        return (self.total_name, self.read_req_name, self.write_req_name)


class CounterSchema:
    """All rules for one (machine, CPU-or-GPU) measurement context."""

    def __init__(
        self,
        machine_name: str,
        gpu: bool,
        rules: dict[str, SumRule | RateMissRule],
        tcc: TccSplitRule | None = None,
    ):
        self.machine_name = machine_name
        self.gpu = gpu
        self.rules = rules
        self.tcc = tcc
        covered = set(rules)
        if tcc is not None:
            covered |= {"l2_load_miss", "l2_store_miss"}
        missing = set(CANONICAL_FIELDS) - covered
        if missing:
            raise ValueError(
                f"schema {machine_name}/gpu={gpu} missing fields: {sorted(missing)}"
            )

    def counter_names(self) -> list[str]:
        names: list[str] = []
        for rule in self.rules.values():
            names.extend(rule.counter_names())
        if self.tcc is not None:
            names.extend(self.tcc.counter_names())
        return sorted(set(names))

    def encode(self, raw: RawCounts, noise: NoiseModel, sigma: float) -> dict[str, float]:
        """Named, noisy counter values for one run's raw events."""

        def noisy(counter: str, value: float) -> float:
            return value * noise.counter_factor(counter, self.machine_name, sigma)

        out: dict[str, float] = {}
        for field, rule in self.rules.items():
            out.update(rule.encode(getattr(raw, field), noisy))
        if self.tcc is not None:
            out.update(self.tcc.encode(raw.l2_load_miss, raw.l2_store_miss, noisy))
        return out

    def decode(self, counters: dict[str, float]) -> dict[str, float]:
        """Canonical field values from named counters (noise included)."""
        out = {field: rule.decode(counters) for field, rule in self.rules.items()}
        if self.tcc is not None:
            ld, st = self.tcc.decode(counters)
            out["l2_load_miss"] = ld
            out["l2_store_miss"] = st
        return out


def _papi_schema(machine_name: str, arith_prefix: str) -> CounterSchema:
    rules: dict[str, SumRule | RateMissRule] = {
        "total_instructions": SumRule("total_instructions", ("PAPI_TOT_INS",)),
        "branch": SumRule("branch", ("PAPI_BR_INS",)),
        "load": SumRule("load", ("PAPI_LD_INS",)),
        "store": SumRule("store", ("PAPI_SR_INS",)),
        "fp_sp": SumRule("fp_sp", ("PAPI_SP_OPS",)),
        "fp_dp": SumRule("fp_dp", ("PAPI_DP_OPS",)),
        "int_arith": SumRule("int_arith", (f"{arith_prefix}::ARITH",)),
        "l1_load_miss": SumRule("l1_load_miss", ("PAPI_L1_LDM",)),
        "l1_store_miss": SumRule("l1_store_miss", ("PAPI_L1_STM",)),
        "l2_load_miss": SumRule("l2_load_miss", ("PAPI_L2_LDM",)),
        "l2_store_miss": SumRule("l2_store_miss", ("PAPI_L2_STM",)),
        "io_read_bytes": SumRule("io_read_bytes", ("IO_BYTES_READ",)),
        "io_write_bytes": SumRule("io_write_bytes", ("IO_BYTES_WRITTEN",)),
        "ept_bytes": SumRule("ept_bytes", ("EPT_SIZE",)),
        "mem_stall_cycles": SumRule("mem_stall_cycles", ("PAPI_MEM_SCY",)),
    }
    return CounterSchema(machine_name, gpu=False, rules=rules)


def _cupti_schema(machine_name: str) -> CounterSchema:
    rules: dict[str, SumRule | RateMissRule] = {
        "total_instructions": SumRule("total_instructions", ("inst_executed",)),
        "branch": SumRule("branch", ("cf_executed",)),
        "load": SumRule(
            "load",
            ("inst_executed_global_loads", "inst_executed_local_loads"),
            (0.75, 0.25),
        ),
        "store": SumRule(
            "store",
            ("inst_executed_global_stores", "inst_executed_local_stores"),
            (0.75, 0.25),
        ),
        "fp_sp": SumRule("fp_sp", ("flop_count_sp",)),
        "fp_dp": SumRule("fp_dp", ("flop_count_dp",)),
        "int_arith": SumRule("int_arith", ("inst_integer",)),
        "l1_load_miss": RateMissRule(
            "l1_load_miss", "local_load_requests", "local_load_hit_rate"
        ),
        "l1_store_miss": RateMissRule(
            "l1_store_miss", "local_store_requests", "local_store_hit_rate"
        ),
        "l2_load_miss": SumRule("l2_load_miss", ("l2_tex_read_transactions_miss",)),
        "l2_store_miss": SumRule("l2_store_miss", ("l2_tex_write_transactions_miss",)),
        "io_read_bytes": SumRule("io_read_bytes", ("IO_BYTES_READ",)),
        "io_write_bytes": SumRule("io_write_bytes", ("IO_BYTES_WRITTEN",)),
        "ept_bytes": SumRule("ept_bytes", ("EPT_SIZE",)),
        "mem_stall_cycles": SumRule("mem_stall_cycles", ("GINST_STL_ANY",)),
    }
    return CounterSchema(machine_name, gpu=True, rules=rules)


def _rocprof_schema(machine_name: str) -> CounterSchema:
    rules: dict[str, SumRule | RateMissRule] = {
        "total_instructions": SumRule("total_instructions", ("SQ_INSTS",)),
        "branch": SumRule("branch", ("SQ_INSTS_BRANCH",)),
        "load": SumRule("load", ("SQ_INSTS_VMEM_RD",)),
        "store": SumRule("store", ("SQ_INSTS_VMEM_WR",)),
        "fp_sp": SumRule("fp_sp", ("SQ_INSTS_VALU_FP32",)),
        "fp_dp": SumRule("fp_dp", ("SQ_INSTS_VALU_FP64",)),
        "int_arith": SumRule("int_arith", ("SQ_INSTS_VALU_INT32",)),
        "l1_load_miss": SumRule("l1_load_miss", ("TCP_MISS_RD_sum",)),
        "l1_store_miss": SumRule("l1_store_miss", ("TCP_MISS_WR_sum",)),
        "io_read_bytes": SumRule("io_read_bytes", ("IO_BYTES_READ",)),
        "io_write_bytes": SumRule("io_write_bytes", ("IO_BYTES_WRITTEN",)),
        "ept_bytes": SumRule("ept_bytes", ("EPT_SIZE",)),
        "mem_stall_cycles": SumRule("mem_stall_cycles", ("MemUnitStalled",)),
    }
    return CounterSchema(machine_name, gpu=True, rules=rules, tcc=TccSplitRule())


#: PAPI integer-arithmetic event prefixes per CPU microarchitecture.
_ARITH_PREFIX = {
    "Quartz": "bdw",
    "Ruby": "clx",
    "Lassen": "pwr9",
    "Corona": "zen2",
}


def schema_for(machine: MachineSpec, from_gpu: bool) -> CounterSchema:
    """The counter schema used when profiling on *machine*.

    ``from_gpu`` selects GPU counters (GPU-capable app on a GPU system)
    versus CPU PAPI counters (everything else), per Section V-B.
    """
    if from_gpu:
        if not machine.has_gpu:
            raise ValueError(f"{machine.name} has no GPU to profile")
        assert machine.gpu is not None
        if machine.gpu.model.startswith("NVIDIA"):
            return _cupti_schema(machine.name)
        return _rocprof_schema(machine.name)
    prefix = _ARITH_PREFIX.get(machine.name, "cpu")
    return _papi_schema(machine.name, prefix)
