"""Profile objects: one simulated HPCToolkit database per run.

:func:`profile_run` executes (app, input, machine, config) on the
performance simulator, encodes the raw events through the machine's
counter schema, and attributes the named counters across the
application's calling context tree.  The resulting :class:`Profile`
serializes to a JSON document, the stand-in for an HPCToolkit measurement
directory; :mod:`repro.hatchet_lite` reads it back.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.apps.inputs import InputConfig
from repro.apps.spec import AppSpec
from repro.arch.hardware import MachineSpec
from repro.cct.tree import CCTNode, build_app_cct
from repro.errors import ProfileError
from repro.perfsim.config import RunConfig
from repro.perfsim.execution import simulate_run
from repro.perfsim.noise import NoiseModel, stable_hash

__all__ = ["Profile", "profile_run", "save_profile", "load_profile",
           "ProfileError"]

#: Fraction of every counter attributed to init/teardown frames.
_OVERHEAD_SHARE = 0.04


@dataclass
class Profile:
    """One profiled run: metadata plus a CCT annotated with counters.

    ``meta`` carries run identity (app, input, machine, scale, ranks,
    nodes, cores, gpus, uses_gpu) and the measured wall time; every CCT
    node's ``metrics`` holds that node's exclusive share of each named
    counter.  Root-inclusive sums therefore recover run totals.
    """

    meta: dict
    root: CCTNode

    @property
    def counter_names(self) -> list[str]:
        names = set()
        for node in self.root.walk():
            names.update(node.metrics)
        names.discard("weight")
        return sorted(names)

    def run_totals(self) -> dict[str, float]:
        """Run-level counter values.

        Count-type counters are root-inclusive sums; rate-type counters
        (names ending in ``hit_rate``) are device properties identical
        on every node, so they aggregate by mean rather than sum.
        """
        totals: dict[str, float] = {}
        rate_counts: dict[str, int] = {}
        for node in self.root.walk():
            for k, v in node.metrics.items():
                if k == "weight":
                    continue
                totals[k] = totals.get(k, 0.0) + v
                if k.endswith("hit_rate"):
                    rate_counts[k] = rate_counts.get(k, 0) + 1
        for k, n in rate_counts.items():
            totals[k] /= n
        return totals

    def to_dict(self) -> dict:
        nodes = []
        index: dict[int, int] = {}
        for i, node in enumerate(self.root.walk()):
            index[id(node)] = i
            nodes.append(
                {
                    "id": i,
                    "parent": index[id(node.parent)] if node.parent else None,
                    "name": node.name,
                    "metrics": dict(node.metrics),
                }
            )
        return {"meta": dict(self.meta), "nodes": nodes}

    @classmethod
    def from_dict(cls, data: dict) -> "Profile":
        nodes = data["nodes"]
        if not nodes or nodes[0]["parent"] is not None:
            raise ValueError("profile must start with a parentless root node")
        built: list[CCTNode] = []
        for spec in nodes:
            parent = built[spec["parent"]] if spec["parent"] is not None else None
            node = CCTNode(spec["name"], parent=parent)
            node.metrics = {k: float(v) for k, v in spec["metrics"].items()}
            built.append(node)
        return cls(meta=dict(data["meta"]), root=built[0])


def profile_run(
    app: AppSpec,
    inp: InputConfig,
    machine: MachineSpec,
    config: RunConfig,
    seed: int = 0,
    trial: int = 0,
) -> Profile:
    """Simulate one run under the profiler and return its Profile.

    Counter noise uses the machine's ``counter_noise_sigma``; every
    counter is then distributed across the app's kernels proportionally
    to kernel weight with small per-kernel attribution jitter (sampling
    attribution is never exact), with a small share landing in the
    ``initialize``/``finalize`` frames.
    """
    from repro.profiler.counters import schema_for

    result = simulate_run(app, inp, machine, config, seed=seed, trial=trial)
    schema = schema_for(machine, result.counts.from_gpu)
    noise = NoiseModel(
        "profiler", app.name, inp.label, machine.name, config.scale, trial,
        seed=seed,
    )
    # The machine's counter_noise_sigma characterizes its *GPU* profiling
    # stack; CPU PAPI counters are mature everywhere, so CPU-counter runs
    # on GPU machines still measure at CPU-grade noise.
    sigma = machine.counter_noise_sigma
    if not result.counts.from_gpu:
        sigma = min(sigma, 0.035)
    counters = schema.encode(result.counts, noise, sigma)

    root = build_app_cct(app)
    leaves = [n for n in root.walk() if "weight" in n.metrics]
    init = next(n for n in root.walk() if n.name == "initialize")
    fini = next(n for n in root.walk() if n.name == "finalize")

    # Deterministic attribution jitter per (run, kernel).
    jitter_rng = np.random.default_rng(
        np.random.SeedSequence(
            [seed, stable_hash(app.name), stable_hash(inp.label),
             stable_hash(machine.name), stable_hash(config.scale), trial, 13]
        )
    )
    weights = np.array([n.metrics["weight"] for n in leaves])
    jitter = np.exp(jitter_rng.normal(0.0, 0.05, size=len(leaves)))
    shares = weights * jitter
    shares = shares / shares.sum() * (1.0 - _OVERHEAD_SHARE)

    for name, value in counters.items():
        if name.endswith("hit_rate"):
            # Rates are properties, not distributable counts: every node
            # observes the same rate.
            for node in leaves + [init, fini]:
                node.metrics[name] = value
            continue
        for node, share in zip(leaves, shares):
            node.metrics[name] = value * float(share)
        init.metrics[name] = value * _OVERHEAD_SHARE * 0.6
        fini.metrics[name] = value * _OVERHEAD_SHARE * 0.4

    meta = {
        "app": app.name,
        "input": inp.label,
        "machine": machine.name,
        "scale": config.scale,
        "nodes": config.nodes,
        "cores": config.cores,
        "ranks": config.ranks,
        "gpus": config.gpus,
        "uses_gpu": config.uses_gpu,
        "time_seconds": result.time_seconds,
        "profiler": "cupti" if result.counts.from_gpu and
                    machine.gpu and machine.gpu.model.startswith("NVIDIA")
                    else ("rocprof" if result.counts.from_gpu else "papi"),
    }
    return Profile(meta=meta, root=root)


def save_profile(profile: Profile, path: str | Path) -> None:
    """Write a profile as JSON (the 'HPCToolkit database' of this repo)."""
    Path(path).write_text(json.dumps(profile.to_dict(), indent=1))


def load_profile(path: str | Path) -> Profile:
    """Read a profile written by :func:`save_profile`.

    Any corruption — invalid JSON, a structurally broken document —
    surfaces as one :class:`repro.errors.ProfileError` carrying the
    file path and, for JSON syntax errors, the offending line, instead
    of whichever decoder exception happened to fire first.  A missing
    file still raises ``FileNotFoundError`` (absence is not
    corruption).
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ProfileError(
            f"{path}: line {exc.lineno}: invalid profile JSON ({exc.msg})"
        ) from exc
    try:
        return Profile.from_dict(data)
    except (KeyError, ValueError, TypeError, IndexError) as exc:
        raise ProfileError(f"{path}: malformed profile document: {exc}") from exc
