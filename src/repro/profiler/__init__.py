"""Simulated profiling layer (HPCToolkit + CUPTI + rocprof substitute).

Wraps the performance simulator with what the paper's measurement stack
adds on top of an execution:

* **Architecture-specific counter names** (Table III): PAPI names on the
  CPU systems, CUPTI names on Lassen's NVIDIA GPUs, rocprof names on
  Corona's AMD GPUs — including the paper's cross-counter derivations
  (e.g. AMD L2 load misses come from ``TCC_MISS_sum`` apportioned by the
  ``TCC_EA_RDREQ``/``TCC_EA_WRREQ`` request counters, and NVIDIA L1
  misses from ``local_load_requests`` x (1 - ``local_hit_rate``)).
* **Attribution to a calling context tree**, one metric set per node.
* **Measurement noise and per-architecture counter bias** (mature CPU
  PAPI counters are cleaner than GPU profiling; rocprof is noisiest).

The output :class:`Profile` is this reproduction's "HPCToolkit
database"; :mod:`repro.hatchet_lite` parses it back into tabular form.
"""

from repro.profiler.counters import CounterSchema, schema_for
from repro.profiler.profile import Profile, load_profile, profile_run, save_profile

__all__ = [
    "CounterSchema",
    "schema_for",
    "Profile",
    "profile_run",
    "save_profile",
    "load_profile",
]
