"""Canonical machine descriptors for zero-shot architecture scoring.

The paper's model only ranks the four machines it was trained on: the
RPV target is *indexed* by the frozen ``SYSTEM_ORDER`` list, so a fifth
machine has no slot to land in.  Following the cross-machine modeling
line of work (Li et al.'s generalizable program/architecture
representations; Stevens & Klöckner's black-box GPU transfer), this
module turns every :class:`~repro.arch.hardware.MachineSpec` into an
explicit numeric **descriptor vector** — clock, cores, vector width,
cache geometry, memory/GPU bandwidth, peak flops, interconnect — that a
model can condition on, so a machine registered *after* training can be
scored from its spec sheet alone.

Three things live here:

* :class:`MachineDescriptor` — the frozen feature record, with a
  canonical column order (:data:`DESCRIPTOR_FEATURES`) shared by the
  schema-v2 dataset builder, the zero-shot predictor, and the serve
  wire format;
* :func:`descriptor_from_spec` / :func:`spec_from_descriptor` — the
  (lossy-but-sufficient) round trip between the analytical-model-grade
  ``MachineSpec`` and the descriptor, so a machine can be *registered*
  from a descriptor received over the wire;
* :func:`machine_digest` — a SHA-256 content digest built
  programmatically from every dataclass field of a spec (recursively),
  so two machines differing in *any* descriptor-feeding field can never
  collide to one config hash.  Hand-written subsets (``describe()``)
  go stale when fields are added; walking ``dataclasses.fields`` cannot.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass

import numpy as np

from repro.arch.hardware import CacheLevel, CPUSpec, GPUSpec, MachineSpec
from repro.config import canonical_json, content_digest
from repro.errors import ConfigError

__all__ = [
    "DESCRIPTOR_SCHEMA_VERSION",
    "DESCRIPTOR_FEATURES",
    "MachineDescriptor",
    "descriptor_from_spec",
    "spec_from_descriptor",
    "descriptor_matrix",
    "spec_canonical_dict",
    "machine_digest",
]

#: Bumped whenever descriptor fields or their meaning change; stamped
#: into :func:`machine_digest` so digests from different schema
#: generations never compare equal.
DESCRIPTOR_SCHEMA_VERSION = 1

#: Canonical numeric feature order.  This tuple IS the wire/dataset
#: contract: schema-v2 descriptor columns, the zero-shot model's input
#: layout, and the serve ``machines`` payload all follow it.
DESCRIPTOR_FEATURES: tuple[str, ...] = (
    "cores",
    "clock_ghz",
    "ipc_scalar",
    "vector_width_dp",
    "fma",
    "l1_kib",
    "l2_kib",
    "l3_mib",
    "mem_bw_gbs",
    "mem_latency_ns",
    "peak_dp_gflops",
    "peak_sp_gflops",
    "gpus_per_node",
    "gpu_sp_gflops",
    "gpu_dp_gflops",
    "gpu_mem_bw_gbs",
    "gpu_mem_gib",
    "interconnect_bw_gbs",
    "interconnect_latency_us",
    "nodes",
)


@dataclass(frozen=True)
class MachineDescriptor:
    """One machine as the model sees it: a named numeric feature record.

    All rates are node-level aggregates (GPU figures sum over
    ``gpus_per_node``); sizes use the unit in the field name.  CPU-only
    machines carry zeros in every ``gpu_*`` field — "no device" is a
    value the model conditions on, not a missing feature.
    """

    name: str
    cores: float
    clock_ghz: float
    ipc_scalar: float
    vector_width_dp: float
    fma: float
    l1_kib: float
    l2_kib: float
    l3_mib: float
    mem_bw_gbs: float
    mem_latency_ns: float
    peak_dp_gflops: float
    peak_sp_gflops: float
    gpus_per_node: float
    gpu_sp_gflops: float
    gpu_dp_gflops: float
    gpu_mem_bw_gbs: float
    gpu_mem_gib: float
    interconnect_bw_gbs: float
    interconnect_latency_us: float
    nodes: float

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name.strip():
            raise ConfigError("descriptor name must be a non-empty string")
        for feature in DESCRIPTOR_FEATURES:
            value = getattr(self, feature)
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ) or not np.isfinite(value):
                raise ConfigError(
                    f"descriptor field {feature!r} must be a finite "
                    f"number, got {value!r}"
                )

    def vector(self) -> np.ndarray:
        """The feature vector in :data:`DESCRIPTOR_FEATURES` order."""
        return np.array(
            [float(getattr(self, f)) for f in DESCRIPTOR_FEATURES],
            dtype=np.float64,
        )

    def to_dict(self) -> dict:
        """JSON-ready mapping (name + every descriptor feature)."""
        out: dict = {"name": self.name}
        for feature in DESCRIPTOR_FEATURES:
            out[feature] = float(getattr(self, feature))
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "MachineDescriptor":
        """Parse a descriptor mapping; typed :class:`ConfigError` on any
        defect (missing field, unknown field, non-numeric value)."""
        if not isinstance(data, dict):
            raise ConfigError(
                f"machine descriptor must be an object, got "
                f"{type(data).__name__}"
            )
        expected = {"name", *DESCRIPTOR_FEATURES}
        unknown = sorted(set(data) - expected)
        if unknown:
            raise ConfigError(
                f"unknown descriptor field(s): {', '.join(unknown)}"
            )
        missing = sorted(expected - set(data))
        if missing:
            raise ConfigError(
                f"descriptor is missing field(s): {', '.join(missing)}"
            )
        values = {}
        for feature in DESCRIPTOR_FEATURES:
            v = data[feature]
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                raise ConfigError(
                    f"descriptor field {feature!r} must be a number, "
                    f"got {v!r}"
                )
            values[feature] = float(v)
        return cls(name=str(data["name"]), **values)

    def digest(self) -> str:
        """Content digest of the descriptor itself (schema-stamped)."""
        return content_digest({
            "descriptor_schema_version": DESCRIPTOR_SCHEMA_VERSION,
            **self.to_dict(),
        })


def descriptor_from_spec(spec: MachineSpec) -> MachineDescriptor:
    """Extract the canonical descriptor from a registered machine spec."""
    cpu = spec.cpu
    return MachineDescriptor(
        name=spec.name,
        cores=float(cpu.cores),
        clock_ghz=float(cpu.clock_ghz),
        ipc_scalar=float(cpu.ipc_scalar),
        vector_width_dp=float(cpu.vector_width_dp),
        fma=1.0 if cpu.fma else 0.0,
        l1_kib=cpu.l1.size_bytes / 1024.0,
        l2_kib=cpu.l2.size_bytes / 1024.0,
        l3_mib=cpu.l3.size_bytes / (1024.0 * 1024.0),
        mem_bw_gbs=float(cpu.mem_bw_gbs),
        mem_latency_ns=float(cpu.mem_latency_ns),
        peak_dp_gflops=float(cpu.peak_dp_gflops),
        peak_sp_gflops=float(cpu.peak_sp_gflops),
        gpus_per_node=float(spec.gpus_per_node),
        gpu_sp_gflops=float(spec.node_peak_gpu_sp_gflops),
        gpu_dp_gflops=float(spec.node_peak_gpu_dp_gflops),
        gpu_mem_bw_gbs=float(spec.node_gpu_mem_bw_gbs),
        gpu_mem_gib=(
            spec.gpu.mem_bytes * spec.gpus_per_node / (1024.0 ** 3)
            if spec.gpu is not None else 0.0
        ),
        interconnect_bw_gbs=float(spec.interconnect_bw_gbs),
        interconnect_latency_us=float(spec.interconnect_latency_us),
        nodes=float(spec.nodes),
    )


def spec_from_descriptor(desc: MachineDescriptor) -> MachineSpec:
    """Build a registerable :class:`MachineSpec` from a descriptor.

    The inverse of :func:`descriptor_from_spec` up to the fields the
    descriptor carries; quantities the descriptor does not describe
    (cache latencies, noise sigma, launch overheads) take the hardware
    dataclasses' defaults.  Good enough to register a machine post-hoc
    for scheduling and serving — per-node counts, bandwidths, and peaks
    round-trip exactly.
    """
    cores = max(1, int(round(desc.cores)))
    gpus = max(0, int(round(desc.gpus_per_node)))
    cpu = CPUSpec(
        model=f"{desc.name} (from descriptor)",
        cores=cores,
        clock_ghz=desc.clock_ghz,
        ipc_scalar=desc.ipc_scalar,
        vector_width_dp=max(1, int(round(desc.vector_width_dp))),
        fma=desc.fma >= 0.5,
        l1=CacheLevel(max(1, int(round(desc.l1_kib * 1024))), 4.0),
        l2=CacheLevel(max(1, int(round(desc.l2_kib * 1024))), 14.0),
        l3=CacheLevel(max(1, int(round(desc.l3_mib * 1024 * 1024))),
                      40.0, shared=True),
        mem_bw_gbs=desc.mem_bw_gbs,
        mem_latency_ns=desc.mem_latency_ns,
    )
    gpu = None
    if gpus > 0:
        gpu = GPUSpec(
            model=f"{desc.name} GPU (from descriptor)",
            peak_sp_tflops=desc.gpu_sp_gflops / 1000.0 / gpus,
            peak_dp_tflops=desc.gpu_dp_gflops / 1000.0 / gpus,
            mem_bw_gbs=desc.gpu_mem_bw_gbs / gpus,
            mem_bytes=max(1, int(round(
                desc.gpu_mem_gib * (1024 ** 3) / gpus
            ))),
        )
    return MachineSpec(
        name=desc.name,
        cpu=cpu,
        gpu=gpu,
        gpus_per_node=gpus,
        nodes=max(1, int(round(desc.nodes))),
        interconnect_bw_gbs=desc.interconnect_bw_gbs,
        interconnect_latency_us=desc.interconnect_latency_us,
    )


def descriptor_matrix(
    descriptors: "list[MachineDescriptor] | tuple[MachineDescriptor, ...]",
) -> np.ndarray:
    """Stack descriptor vectors, shape ``(n, len(DESCRIPTOR_FEATURES))``."""
    if not descriptors:
        raise ValueError("need at least one descriptor")
    return np.vstack([d.vector() for d in descriptors])


def spec_canonical_dict(spec) -> dict:
    """Every field of a (possibly nested) spec dataclass, recursively.

    Unlike ``describe()``-style hand-picked summaries, this walks
    ``dataclasses.fields`` so a newly added field is covered by
    construction — the digest below can never silently ignore one.
    """
    if is_dataclass(spec) and not isinstance(spec, type):
        return {
            f.name: spec_canonical_dict(getattr(spec, f.name))
            for f in fields(spec)
        }
    if isinstance(spec, dict):
        return {str(k): spec_canonical_dict(v) for k, v in spec.items()}
    if isinstance(spec, (list, tuple)):
        return [spec_canonical_dict(v) for v in spec]
    if spec is None or isinstance(spec, (bool, int, float, str)):
        return spec
    raise ConfigError(
        f"cannot canonicalize spec field of type {type(spec).__name__}"
    )


def machine_digest(spec: MachineSpec) -> str:
    """SHA-256 content digest covering EVERY field of *spec*.

    Two machines that differ in any descriptor-feeding field — a cache
    size, a GPU bandwidth, the noise sigma, an ``extra`` entry — get
    different digests, so config hashes that embed this digest can
    never collide across distinct hardware.  Stamped with the
    descriptor schema version so the digest space is versioned too.
    """
    material = {
        "descriptor_schema_version": DESCRIPTOR_SCHEMA_VERSION,
        "machine": spec_canonical_dict(spec),
    }
    # canonical_json is the same encoder config digests use everywhere
    # (sorted keys, compact separators), so this digest is stable across
    # processes and platforms.
    assert canonical_json(material)  # fails loudly on non-JSON leakage
    return content_digest(material)
