"""The four Table I systems with public-spec-sheet parameters.

Table I gives CPU/GPU types, core counts, and clocks; the remaining
parameters (vector widths, caches, bandwidths, cluster sizes) come from
the public specifications of the named parts and LLNL system pages.
They feed the analytical simulator, so only their *relative* structure
matters: Ruby is a wider, higher-bandwidth CPU node than Quartz; Lassen
and Corona add high-throughput, high-bandwidth GPUs with different
SP/DP balances.
"""

from __future__ import annotations

from repro.arch.hardware import CacheLevel, CPUSpec, GPUSpec, MachineSpec
from repro.config import set_machine_digest_resolver
from repro.registry import Registry

__all__ = [
    "QUARTZ",
    "RUBY",
    "LASSEN",
    "CORONA",
    "MACHINES",
    "SYSTEM_ORDER",
    "get_machine",
]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

QUARTZ = MachineSpec(
    name="Quartz",
    cpu=CPUSpec(
        model="Intel Xeon E5-2695 v4",
        cores=36,
        clock_ghz=2.1,
        ipc_scalar=2.2,
        vector_width_dp=4,  # AVX2
        fma=True,
        l1=CacheLevel(32 * KiB, 4),
        l2=CacheLevel(256 * KiB, 12),
        l3=CacheLevel(45 * MiB, 38, shared=True),
        mem_bw_gbs=77.0,  # 4ch DDR4-2400 x 2 sockets, STREAM-sustained
        mem_latency_ns=90.0,
        branch_mispredict_penalty_cycles=16.0,
    ),
    nodes=3004,
    interconnect_bw_gbs=12.5,  # Omni-Path 100
    interconnect_latency_us=1.5,
    counter_noise_sigma=0.035,
)

RUBY = MachineSpec(
    name="Ruby",
    cpu=CPUSpec(
        model="Intel Xeon CLX-8276",
        cores=56,
        clock_ghz=2.2,
        ipc_scalar=2.4,
        vector_width_dp=8,  # AVX-512
        fma=True,
        l1=CacheLevel(32 * KiB, 4),
        l2=CacheLevel(1 * MiB, 14),
        l3=CacheLevel(2 * 38 * MiB + 1 * MiB, 40, shared=True),
        mem_bw_gbs=140.0,  # 6ch DDR4-2933 x 2 sockets
        mem_latency_ns=85.0,
        branch_mispredict_penalty_cycles=16.0,
    ),
    nodes=1512,
    interconnect_bw_gbs=12.5,
    interconnect_latency_us=1.4,
    counter_noise_sigma=0.03,
)

LASSEN = MachineSpec(
    name="Lassen",
    cpu=CPUSpec(
        model="IBM Power9",
        cores=44,
        clock_ghz=3.5,
        ipc_scalar=2.0,
        vector_width_dp=2,  # VSX 128-bit
        fma=True,
        l1=CacheLevel(32 * KiB, 3),
        l2=CacheLevel(512 * KiB, 12),
        l3=CacheLevel(120 * MiB, 36, shared=True),
        mem_bw_gbs=270.0,  # 8ch DDR4 x 2 sockets
        mem_latency_ns=80.0,
        branch_mispredict_penalty_cycles=18.0,
    ),
    gpu=GPUSpec(
        model="NVIDIA V100",
        peak_sp_tflops=15.7,
        peak_dp_tflops=7.8,
        mem_bw_gbs=900.0,
        mem_bytes=16 * GiB,
        kernel_launch_us=7.0,
        divergence_penalty_scale=4.0,
        l2_bytes=6 * MiB,
    ),
    gpus_per_node=4,
    nodes=795,
    interconnect_bw_gbs=25.0,  # dual-rail EDR InfiniBand
    interconnect_latency_us=1.0,
    counter_noise_sigma=0.12,  # CUPTI-in-HPCToolkit GPU profiling is noisier than CPU PAPI
)

CORONA = MachineSpec(
    name="Corona",
    cpu=CPUSpec(
        model="AMD Rome",
        cores=48,
        clock_ghz=2.8,
        ipc_scalar=2.3,
        vector_width_dp=4,  # AVX2
        fma=True,
        l1=CacheLevel(32 * KiB, 4),
        l2=CacheLevel(512 * KiB, 13),
        l3=CacheLevel(192 * MiB, 42, shared=True),
        mem_bw_gbs=190.0,  # 8ch DDR4-3200 x 2 sockets
        mem_latency_ns=95.0,
        branch_mispredict_penalty_cycles=17.0,
    ),
    gpu=GPUSpec(
        model="AMD MI50",
        peak_sp_tflops=13.3,
        peak_dp_tflops=6.6,
        mem_bw_gbs=1024.0,
        mem_bytes=32 * GiB,
        kernel_launch_us=10.0,
        divergence_penalty_scale=4.5,
        l2_bytes=4 * MiB,
    ),
    gpus_per_node=8,
    nodes=121,
    interconnect_bw_gbs=12.5,
    interconnect_latency_us=1.6,
    counter_noise_sigma=0.18,  # rocprof support is the newest and least reliable (Sec. VIII-B)
)

#: Canonical system order used for RPVs, one-hot encodings, and reports.
SYSTEM_ORDER: tuple[str, ...] = ("Quartz", "Ruby", "Lassen", "Corona")

#: The machine registry: ``Mapping`` of canonical name -> MachineSpec
#: with case-insensitive lookup and typed UnknownNameError on misses.
MACHINES: Registry[MachineSpec] = Registry("machine")
for _machine in (QUARTZ, RUBY, LASSEN, CORONA):
    MACHINES.register(_machine.name, _machine)
del _machine


def get_machine(name: str) -> MachineSpec:
    """Look up a Table I machine by name (case-insensitive).

    Raises :class:`repro.errors.UnknownNameError` (a ``KeyError``) with
    did-you-mean suggestions on a miss.
    """
    return MACHINES[name]


def _machine_digest_for_config(name: str) -> str:
    """Resolver wired into :mod:`repro.config` so experiment hashes pin
    the full spec of every machine they name.

    Reads the registry at call time, so a spec swapped in via
    ``MACHINES.__setitem__`` (calibration studies, test fixtures) is
    reflected in hashes computed afterwards.
    """
    from repro.arch.descriptor import machine_digest

    return machine_digest(MACHINES[name])


# Dependency inversion: repro.config sits below the arch layer (it may
# import only errors/registry/ioutils), so it cannot look up machine
# specs itself — this layer pushes the resolver down instead.
set_machine_digest_resolver(_machine_digest_for_config)
