"""Architecture models for the four Table I systems.

The paper collects its dataset on four physical LLNL machines.  Those
machines are unavailable here, so this package models each one as a set
of hardware parameters (cores, clock, vector width, cache hierarchy,
memory bandwidth, GPU compute/bandwidth, interconnect) taken from
Table I plus the public spec sheets of the constituent parts.  The
analytical performance simulator (:mod:`repro.perfsim`) consumes these
parameters to produce execution times and hardware-counter values with
the same cross-architecture structure as real measurements: Quartz/Ruby
are latency-oriented CPU machines (Ruby adds AVX-512 and more cores),
Lassen and Corona are throughput-oriented GPU machines.
"""

from repro.arch.descriptor import (
    DESCRIPTOR_FEATURES,
    DESCRIPTOR_SCHEMA_VERSION,
    MachineDescriptor,
    descriptor_from_spec,
    descriptor_matrix,
    machine_digest,
    spec_from_descriptor,
)
from repro.arch.hardware import CacheLevel, CPUSpec, GPUSpec, MachineSpec
from repro.arch.machines import (
    CORONA,
    LASSEN,
    MACHINES,
    QUARTZ,
    RUBY,
    SYSTEM_ORDER,
    get_machine,
)

__all__ = [
    "CacheLevel",
    "CPUSpec",
    "GPUSpec",
    "MachineSpec",
    "QUARTZ",
    "RUBY",
    "LASSEN",
    "CORONA",
    "MACHINES",
    "SYSTEM_ORDER",
    "get_machine",
    "DESCRIPTOR_SCHEMA_VERSION",
    "DESCRIPTOR_FEATURES",
    "MachineDescriptor",
    "descriptor_from_spec",
    "spec_from_descriptor",
    "descriptor_matrix",
    "machine_digest",
]
