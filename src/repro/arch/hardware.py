"""Hardware parameter dataclasses.

These are deliberately *analytical-model-grade* descriptions: enough
structure for a roofline-style simulator (peak rates, cache capacities,
bandwidths, penalties), not a cycle-accurate microarchitecture.  All
rates are per-node unless suffixed otherwise; sizes are bytes, clocks Hz,
bandwidths bytes/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheLevel", "CPUSpec", "GPUSpec", "MachineSpec"]


@dataclass(frozen=True)
class CacheLevel:
    """A single cache level as seen by one core (private) or node (shared)."""

    size_bytes: int
    latency_cycles: float
    shared: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if self.latency_cycles <= 0:
            raise ValueError("cache latency must be positive")


@dataclass(frozen=True)
class CPUSpec:
    """One CPU socket-pair (node-level aggregate) description.

    Attributes
    ----------
    model:
        Marketing name (matches Table I).
    cores:
        Physical cores per node.
    clock_ghz:
        Nominal clock (Table I).
    ipc_scalar:
        Sustainable scalar instructions/cycle/core for integer-ish code.
    vector_width_dp:
        Double-precision lanes per SIMD instruction (4 = AVX2, 8 = AVX-512,
        2 = Power9 VSX / 4 = AVX2 on Rome).
    fma:
        Whether fused multiply-add doubles the flop rate.
    l1, l2, l3:
        Cache hierarchy (l1/l2 per core, l3 per node).
    mem_bw_gbs:
        Sustained node memory bandwidth (STREAM-like), GB/s.
    mem_latency_ns:
        DRAM access latency.
    branch_mispredict_penalty_cycles:
        Pipeline refill cost on a mispredicted branch.
    branch_mispredict_rate:
        Baseline misprediction probability for branch instructions in
        irregular code (the simulator scales this by app irregularity).
    """

    model: str
    cores: int
    clock_ghz: float
    ipc_scalar: float
    vector_width_dp: int
    fma: bool
    l1: CacheLevel
    l2: CacheLevel
    l3: CacheLevel
    mem_bw_gbs: float
    mem_latency_ns: float = 85.0
    branch_mispredict_penalty_cycles: float = 16.0
    branch_mispredict_rate: float = 0.04

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.clock_ghz <= 0:
            raise ValueError("cores and clock must be positive")

    @property
    def peak_dp_gflops(self) -> float:
        """Node peak double-precision GFLOP/s."""
        mul = 2.0 if self.fma else 1.0
        return self.cores * self.clock_ghz * self.vector_width_dp * mul

    @property
    def peak_sp_gflops(self) -> float:
        """Node peak single-precision GFLOP/s (2x DP lanes)."""
        return 2.0 * self.peak_dp_gflops


@dataclass(frozen=True)
class GPUSpec:
    """A single GPU device description.

    ``divergence_penalty_scale`` captures how strongly branchy control
    flow serializes warps/wavefronts relative to the CPU's branch cost.
    """

    model: str
    peak_sp_tflops: float
    peak_dp_tflops: float
    mem_bw_gbs: float
    mem_bytes: int
    kernel_launch_us: float = 8.0
    divergence_penalty_scale: float = 4.0
    l2_bytes: int = 6 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.peak_sp_tflops <= 0 or self.mem_bw_gbs <= 0:
            raise ValueError("GPU rates must be positive")


@dataclass(frozen=True)
class MachineSpec:
    """One Table I system: a homogeneous cluster of identical nodes.

    Attributes
    ----------
    name:
        System name (Quartz / Ruby / Lassen / Corona).
    cpu:
        Node CPU description.
    gpu:
        Per-device GPU description, or None for CPU-only systems.
    gpus_per_node:
        Device count per node (0 when ``gpu is None``).
    nodes:
        Cluster size, used by the scheduling simulation.
    interconnect_bw_gbs / interconnect_latency_us:
        Inter-node network characteristics for the communication model.
    counter_noise_sigma:
        Log-normal sigma of counter measurement noise on this system.
        GPU profiling (especially rocprof on AMD, Section VIII-B) is
        noisier than mature CPU PAPI counters.
    """

    name: str
    cpu: CPUSpec
    gpu: GPUSpec | None = None
    gpus_per_node: int = 0
    nodes: int = 1
    interconnect_bw_gbs: float = 12.5
    interconnect_latency_us: float = 1.5
    counter_noise_sigma: float = 0.04
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if (self.gpu is None) != (self.gpus_per_node == 0):
            raise ValueError("gpu and gpus_per_node must be consistent")
        if self.nodes <= 0:
            raise ValueError("nodes must be positive")

    @property
    def has_gpu(self) -> bool:
        return self.gpu is not None

    @property
    def node_peak_gpu_sp_gflops(self) -> float:
        """Aggregate single-precision GFLOP/s of all GPUs on a node."""
        if self.gpu is None:
            return 0.0
        return self.gpu.peak_sp_tflops * 1000.0 * self.gpus_per_node

    @property
    def node_peak_gpu_dp_gflops(self) -> float:
        if self.gpu is None:
            return 0.0
        return self.gpu.peak_dp_tflops * 1000.0 * self.gpus_per_node

    @property
    def node_gpu_mem_bw_gbs(self) -> float:
        if self.gpu is None:
            return 0.0
        return self.gpu.mem_bw_gbs * self.gpus_per_node

    def describe(self) -> dict:
        """Row for the Table I reproduction."""
        return {
            "System": self.name,
            "CPU Type": self.cpu.model,
            "CPU cores/node": self.cpu.cores,
            "CPU Clock Rate (GHz)": self.cpu.clock_ghz,
            "GPU Type": self.gpu.model if self.gpu else "--",
            "GPUs/node": self.gpus_per_node if self.gpu else "--",
        }
