"""Fault injection and graceful degradation.

The paper's scheduling result (Section VII) assumes a perfect world:
nodes never die, jobs never crash, counters are never corrupt, and the
model always loads.  This package makes the reproduction's central
claim testable in a hostile one:

* :mod:`repro.resilience.faults` — deterministic, seedable
  :class:`FaultInjector` drawing MTBF-based node failure/recovery
  events, per-attempt job crashes, and counter corruption, with
  ``none``/``light``/``heavy`` presets.
* :mod:`repro.resilience.retry` — :class:`RetryPolicy`: bounded
  attempts, exponential backoff with deterministic jitter, optional
  checkpoint/restart preserving completed work.
* :mod:`repro.resilience.degrade` — :class:`ResilientPredictor`, a
  never-failing wrapper over :class:`repro.core.CrossArchPredictor`
  that degrades tier by tier (model → imputed → mean-RPV baseline →
  User+RR-style heuristic) and records which tier served each job.

The failure-aware simulation itself lives in
:class:`repro.sched.Scheduler` (``faults=``/``retry=`` arguments); see
``docs/RESILIENCE.md`` for the failure model and reproduction recipe.
"""

from repro.resilience.degrade import (
    CorruptingPredictor,
    PredictionOutcome,
    ResilientPredictor,
    TierSnapshot,
)
from repro.resilience.faults import FAULT_PROFILES, FaultInjector, FaultProfile
from repro.resilience.retry import RetryPolicy

__all__ = [
    "FaultProfile",
    "FaultInjector",
    "FAULT_PROFILES",
    "RetryPolicy",
    "ResilientPredictor",
    "PredictionOutcome",
    "CorruptingPredictor",
    "TierSnapshot",
]
