"""Graceful degradation for RPV prediction.

A scheduler that calls :meth:`repro.core.CrossArchPredictor.predict_record`
directly dies the moment one job arrives with a truncated counter file,
a NaN in a PAPI field, or after the model pickle failed to load.
:class:`ResilientPredictor` wraps the model behind a four-tier
degradation chain so prediction *always* returns an RPV, each answer
labeled with the tier that produced it:

1. ``model``     — the wrapped model on clean inputs (full quality).
2. ``imputed``   — corrupt/missing fields repaired with training-set
   feature means, then the model (slightly degraded).
3. ``mean_rpv``  — the training-set mean RPV, the paper's Section VI-A
   baseline (coarse but honest).
4. ``heuristic`` — no model and no training stats at all: a fixed
   RPV mimicking the paper's User+RR placement intuition (GPU-capable
   work is assumed much faster on GPU systems, CPU work mildly faster
   on the CPU systems).

Imputation happens in *feature* space: the record is derived with
placeholder values where counters are broken, then every feature
tainted by a broken counter is overwritten with its training-set mean.
This keeps the intact counters contributing real signal instead of
throwing the whole vector away.

Tier usage is counted in :attr:`ResilientPredictor.tier_counts` so
experiments can report what fraction of decisions ran degraded
(:func:`repro.sched.metrics.degraded_prediction_fraction`).
"""

from __future__ import annotations

import pickle
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.arch.machines import MACHINES, SYSTEM_ORDER
from repro.core.predictor import CrossArchPredictor
from repro.dataset.features import (
    RAW_FOR_MAGNITUDE,
    RATIO_SOURCES,
    REQUIRED_RECORD_FIELDS,
    derive_feature_frame,
)
from repro.dataset.schema import ARCH_COLUMNS, CONFIG_FEATURES, RATIO_FEATURES
from repro.errors import ReproError
from repro.frame import Frame

__all__ = [
    "ResilientPredictor",
    "PredictionOutcome",
    "CorruptingPredictor",
    "TierSnapshot",
]

#: Degradation tiers, best first.
TIERS = ("model", "imputed", "mean_rpv", "heuristic")

#: Heuristic RPVs (time ratios, canonical system order) for the last
#: tier: relative times a GPU-capable vs CPU-only code typically shows
#: across CPU (Quartz, Ruby) and GPU (Lassen, Corona) systems.
_HEURISTIC_GPU = {"Quartz": 1.0, "Ruby": 0.85, "Lassen": 0.25, "Corona": 0.3}
_HEURISTIC_CPU = {"Quartz": 0.8, "Ruby": 0.65, "Lassen": 1.0, "Corona": 0.95}

#: Which derived features a broken raw field taints.
_TAINTS: dict[str, tuple[str, ...]] = {
    **{raw: (feat,) for feat, raw in RATIO_SOURCES.items()},
    **{raw: (feat,) for feat, raw in RAW_FOR_MAGNITUDE.items()},
    **{name: (name,) for name in CONFIG_FEATURES},
    "total_instructions": tuple(RATIO_FEATURES),
    "machine": tuple(ARCH_COLUMNS),
}


@dataclass
class PredictionOutcome:
    """One prediction plus the tier that served it."""

    rpv: np.ndarray
    tier: str
    repaired: tuple[str, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class TierSnapshot:
    """Point-in-time view of the degradation chain's tier usage.

    Unlike the run-dir telemetry counters (merged only when a run
    finalizes), a snapshot is readable at any moment — the admission
    controller in :mod:`repro.serve` polls one per ``/metrics`` scrape,
    and tests can assert tier transitions mid-stream.
    """

    counts: tuple[tuple[str, int], ...]
    total: int
    degraded_fraction: float

    def count(self, tier: str) -> int:
        return dict(self.counts).get(tier, 0)

    def delta(self, earlier: "TierSnapshot") -> "TierSnapshot":
        """Tier usage between *earlier* and this snapshot."""
        before = dict(earlier.counts)
        counts = tuple(
            (tier, n - before.get(tier, 0)) for tier, n in self.counts
        )
        total = sum(n for _, n in counts)
        degraded = total - dict(counts).get("model", 0)
        return TierSnapshot(
            counts=counts,
            total=total,
            degraded_fraction=degraded / total if total else 0.0,
        )

    def to_dict(self) -> dict:
        """JSON-ready form (what ``/metrics`` serves)."""
        return {
            "counts": dict(self.counts),
            "total": self.total,
            "degraded_fraction": self.degraded_fraction,
        }


def _heuristic_rpv(uses_gpu: bool, systems: tuple[str, ...]) -> np.ndarray:
    table = _HEURISTIC_GPU if uses_gpu else _HEURISTIC_CPU
    # Unknown systems (non-Table-I clusters) get a neutral 1.0.
    return np.array([table.get(name, 1.0) for name in systems])


class ResilientPredictor:
    """Never-failing RPV prediction with tier-labeled degradation.

    Parameters
    ----------
    predictor:
        The wrapped :class:`CrossArchPredictor`, or None when the model
        is unavailable (tiers 3-4 only).
    feature_fill:
        Per-feature fill values (training-set column means), aligned
        with ``predictor.feature_columns``, used to impute broken
        entries.
    mean_rpv:
        Training-set mean RPV (the tier-3 answer).
    """

    def __init__(
        self,
        predictor: CrossArchPredictor | None = None,
        feature_fill: np.ndarray | None = None,
        mean_rpv: np.ndarray | None = None,
        systems: tuple[str, ...] = SYSTEM_ORDER,
    ):
        self.predictor = predictor
        self.feature_fill = (
            None if feature_fill is None
            else np.asarray(feature_fill, dtype=np.float64)
        )
        self.mean_rpv = (
            None if mean_rpv is None else np.asarray(mean_rpv, dtype=np.float64)
        )
        self.systems = tuple(predictor.systems if predictor else systems)
        self.tier_counts: Counter[str] = Counter()
        if (
            self.predictor is not None
            and self.feature_fill is not None
            and len(self.feature_fill) != len(self.predictor.feature_columns)
        ):
            raise ValueError(
                "feature_fill length does not match predictor features"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_training(
        cls, predictor: CrossArchPredictor, dataset
    ) -> "ResilientPredictor":
        """Build the full chain from a trained predictor and its dataset.

        Fill values are the training-set means of the predictor's
        feature columns; the baseline tier answers the training-set
        mean RPV.
        """
        fill = dataset.frame.to_matrix(
            list(predictor.feature_columns)
        ).mean(axis=0)
        return cls(
            predictor=predictor,
            feature_fill=fill,
            mean_rpv=dataset.Y().mean(axis=0),
        )

    @classmethod
    def load(cls, path: str | Path, dataset=None) -> "ResilientPredictor":
        """Load a saved predictor, degrading instead of raising.

        A missing or unreadable model file yields a chain whose best
        tier is ``mean_rpv`` (when *dataset* supplies statistics) or
        ``heuristic`` (cold start) — prediction keeps working either
        way.
        """
        try:
            predictor = CrossArchPredictor.load(path)
        except (ReproError, ValueError, TypeError, OSError, EOFError,
                AttributeError, pickle.UnpicklingError):
            # Exactly the decoder failures a missing/garbage/stale model
            # file produces — anything else is a genuine bug and raises.
            predictor = None
        if predictor is not None and dataset is not None:
            return cls.from_training(predictor, dataset)
        if dataset is not None:
            return cls(predictor=None, mean_rpv=dataset.Y().mean(axis=0))
        return cls(predictor=predictor)

    # ------------------------------------------------------------------
    def _count(self, tier: str, n: int = 1) -> None:
        """The single accounting point for tier usage: the local counter
        (experiment summaries) and the telemetry counter (run-dir
        metrics) can never disagree."""
        self.tier_counts[tier] += n
        telemetry.counter(f"resilience.tier.{tier}").inc(n)

    def baseline(self, uses_gpu: bool = False) -> PredictionOutcome:
        """Answer from the model-free tiers (``mean_rpv``/``heuristic``).

        Public entry point for callers that must *not* touch the model:
        the serving layer's admission controller sheds overload here —
        an O(1) answer instead of a queued model prediction — and the
        tier counters record the degradation honestly.
        """
        return self._baseline(uses_gpu)

    def _baseline(self, uses_gpu: bool) -> PredictionOutcome:
        if self.mean_rpv is not None:
            self._count("mean_rpv")
            return PredictionOutcome(self.mean_rpv.copy(), "mean_rpv")
        self._count("heuristic")
        return PredictionOutcome(
            _heuristic_rpv(uses_gpu, self.systems), "heuristic"
        )

    def _repair_and_predict(self, record: dict, bad: list[str]) -> np.ndarray:
        """Tier 2: derive features around the damage, impute the rest.

        Broken raw fields get placeholder values so derivation runs,
        then every feature they taint is overwritten with its
        training-set mean before the model sees it.
        """
        repaired = dict(record)
        for name in bad:
            # The placeholder never reaches the model (the tainted
            # features are overwritten below); it only has to keep the
            # derivation arithmetic finite.
            repaired[name] = SYSTEM_ORDER[0] if name == "machine" else 1.0
        frame = Frame.from_records([repaired])
        featured, _ = derive_feature_frame(
            frame, normalizer=self.predictor.normalizer
        )
        columns = list(self.predictor.feature_columns)
        X = featured.to_matrix(columns)
        tainted = set()
        for name in bad:
            tainted.update(_TAINTS.get(name, ()))
        for i, column in enumerate(columns):
            if column in tainted or not np.isfinite(X[0, i]):
                X[0, i] = self.feature_fill[i]
        return self.predictor.predict(X)[0]

    def predict_record_detailed(self, record: dict) -> PredictionOutcome:
        """Predict one raw run record, reporting the tier used.

        Never raises: any defect in *record* (missing keys, NaN/inf
        counters, unknown machine) or in the model itself drops the
        prediction down the chain instead.
        """
        uses_gpu = bool(record.get("uses_gpu", False))

        def _is_bad(name: str) -> bool:
            if name not in record:
                return True
            try:
                return not bool(
                    np.isfinite(np.asarray(record[name], dtype=np.float64))
                )
            except (TypeError, ValueError):
                return True  # non-numeric garbage in a counter field

        bad = [name for name in REQUIRED_RECORD_FIELDS if _is_bad(name)]
        if str(record.get("machine", "")) not in MACHINES:
            bad.append("machine")

        if self.predictor is not None and not bad:
            try:
                rpv = self.predictor.predict_record(record)
            except (ReproError, ValueError, KeyError):
                # Record defects the _is_bad screen cannot see (e.g. a
                # field the feature pipeline requires but the schema
                # does not list).  Genuine model bugs surface instead of
                # being absorbed as "degraded mode".
                return self._baseline(uses_gpu)
            self._count("model")
            return PredictionOutcome(np.asarray(rpv, dtype=np.float64), "model")

        if self.predictor is not None and self.feature_fill is not None:
            try:
                rpv = self._repair_and_predict(record, bad)
            except (ReproError, ValueError, KeyError):
                return self._baseline(uses_gpu)
            self._count("imputed")
            return PredictionOutcome(
                np.asarray(rpv, dtype=np.float64), "imputed", tuple(sorted(bad))
            )

        return self._baseline(uses_gpu)

    def predict_record(self, record: dict) -> np.ndarray:
        """Drop-in for :meth:`CrossArchPredictor.predict_record`."""
        return self.predict_record_detailed(record).rpv

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Batch predict with per-row degradation (drop-in for
        :meth:`CrossArchPredictor.predict`).

        Rows containing non-finite entries are imputed with the
        training feature means (tier ``imputed``); rows beyond repair —
        or every row, when no model is loaded — get the baseline tier.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        n = X.shape[0]
        if self.predictor is None:
            base = (
                self.mean_rpv if self.mean_rpv is not None
                else _heuristic_rpv(False, self.systems)
            )
            tier = "mean_rpv" if self.mean_rpv is not None else "heuristic"
            self._count(tier, n)
            return np.tile(base, (n, 1))

        finite = np.isfinite(X)
        clean_rows = finite.all(axis=1)
        out = np.empty((n, len(self.systems)))
        if clean_rows.any():
            out[clean_rows] = self.predictor.predict(X[clean_rows])
            self._count("model", int(clean_rows.sum()))
        dirty = ~clean_rows
        if dirty.any():
            if self.feature_fill is not None:
                repaired = X[dirty].copy()
                fill = np.broadcast_to(self.feature_fill, repaired.shape)
                mask = ~np.isfinite(repaired)
                repaired[mask] = fill[mask]
                out[dirty] = self.predictor.predict(repaired)
                self._count("imputed", int(dirty.sum()))
            else:
                base = (
                    self.mean_rpv if self.mean_rpv is not None
                    else _heuristic_rpv(False, self.systems)
                )
                out[dirty] = base
                tier = "mean_rpv" if self.mean_rpv is not None else "heuristic"
                self._count(tier, int(dirty.sum()))
        return out

    # ------------------------------------------------------------------
    def degraded_fraction(self) -> float:
        """Fraction of predictions served below the ``model`` tier."""
        total = sum(self.tier_counts.values())
        if total == 0:
            return 0.0
        return 1.0 - self.tier_counts.get("model", 0) / total

    def summary(self) -> dict[str, int]:
        """Tier usage counts, best tier first."""
        return {tier: self.tier_counts.get(tier, 0) for tier in TIERS}

    def tier_snapshot(self) -> TierSnapshot:
        """A live, immutable :class:`TierSnapshot` of tier usage so far.

        Cheap enough to call per request; two snapshots bracketing a
        window yield the window's transitions via
        :meth:`TierSnapshot.delta`.
        """
        counts = tuple(
            (tier, self.tier_counts.get(tier, 0)) for tier in TIERS
        )
        total = sum(n for _, n in counts)
        degraded = total - self.tier_counts.get("model", 0)
        return TierSnapshot(
            counts=counts,
            total=total,
            degraded_fraction=degraded / total if total else 0.0,
        )


class CorruptingPredictor:
    """Experiment adapter: corrupt features with an injector, then predict.

    Lets :func:`repro.workloads.build_workload` exercise the degradation
    chain without knowing about fault injection — it just sees an object
    with ``predict``.
    """

    def __init__(self, resilient: ResilientPredictor, injector):
        self.resilient = resilient
        self.injector = injector

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.resilient.predict(self.injector.corrupt_features(X))
