"""Retry policy for crashed jobs: bounded attempts, backoff, checkpointing."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perfsim.noise import stable_hash

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How the scheduler resubmits jobs killed by faults.

    Parameters
    ----------
    max_attempts:
        Total attempts (including the first) before a job is abandoned
        as permanently failed.  ``None`` (default) retries forever —
        with any per-attempt crash probability below 1 every job
        eventually completes, which is what production schedulers do
        for infrastructure-caused kills.
    backoff_base, backoff_factor, backoff_cap:
        Resubmission delay for attempt *k* (1-based count of attempts
        already made) is ``min(base * factor**(k-1), cap)`` seconds,
        scaled by jitter.
    jitter:
        Fractional uniform jitter on the delay (0.1 → ±10%), drawn
        deterministically per ``(seed, job_id, attempt)`` so retries
        do not thundering-herd at the same instant yet stay
        reproducible.
    checkpoint:
        When True, a killed job preserves the fraction of work it
        completed (checkpoint/restart); its next attempt only runs the
        remainder, and the killed attempt wastes no node-seconds.
    """

    max_attempts: int | None = None
    backoff_base: float = 30.0
    backoff_factor: float = 2.0
    backoff_cap: float = 3600.0
    jitter: float = 0.1
    checkpoint: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1 (or None)")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def gives_up(self, attempts_made: int) -> bool:
        """True when a job that just failed attempt *attempts_made* is done."""
        return self.max_attempts is not None and attempts_made >= self.max_attempts

    def delay(self, attempts_made: int, job_id: int | str = 0) -> float:
        """Backoff before the next attempt, after *attempts_made* failures.

        *job_id* seeds the jitter stream and may be an int (simulator
        job ids) or a string (sweep cell ids, hashed through the same
        FNV-1a stream as every other named substream); equal ids always
        draw equal jitter, different ids decorrelate so a burst of
        simultaneous failures does not stampede back in lockstep.
        """
        if attempts_made < 1:
            raise ValueError("delay() is for jobs that have failed at least once")
        base = min(
            self.backoff_base * self.backoff_factor ** (attempts_made - 1),
            self.backoff_cap,
        )
        if self.jitter == 0.0 or base == 0.0:
            return base
        job_key = stable_hash(job_id) if isinstance(job_id, str) else int(job_id)
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [self.seed, stable_hash("retry-jitter"), job_key,
                 int(attempts_made)]
            )
        )
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))
