"""Deterministic, seedable fault injection for the scheduling simulation.

Three fault channels, all drawn from independent named RNG streams so a
run is exactly reproducible given ``(profile, seed)`` and no channel's
draws perturb another's:

* **Node failures** — per machine, a Poisson process with mean
  inter-failure gap ``node_mtbf`` seconds takes one node offline; the
  node returns after an exponential repair time with mean
  ``repair_time``.  If no idle node is available the simulator kills a
  running job to free one (that job is then retried).
* **Job crashes** — each job *attempt* independently crashes with
  probability ``crash_prob`` at a uniform point in its runtime
  (segfault, OOM, network partition mid-run).
* **Counter corruption** — each job's profiled feature vector is, with
  probability ``corruption_prob``, corrupted with NaNs before
  prediction, exercising the :class:`~repro.resilience.degrade.\
ResilientPredictor` degradation chain.

The ``none`` preset injects nothing; the simulator takes the fault-free
fast path for it, so a no-fault run is bit-identical to the plain
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perfsim.noise import stable_hash
from repro.registry import Registry

__all__ = ["FaultProfile", "FaultInjector", "FAULT_PROFILES"]


@dataclass(frozen=True)
class FaultProfile:
    """Failure-rate parameters for one simulated hostile world.

    ``node_mtbf`` is the mean time between single-node failures *per
    machine* (partition-level, not per-node), in seconds; ``inf``
    disables node failures.
    """

    name: str = "custom"
    node_mtbf: float = float("inf")
    repair_time: float = 600.0
    crash_prob: float = 0.0
    corruption_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.node_mtbf <= 0:
            raise ValueError("node_mtbf must be positive (use inf to disable)")
        if self.repair_time <= 0:
            raise ValueError("repair_time must be positive")
        if not 0.0 <= self.crash_prob < 1.0:
            raise ValueError("crash_prob must be in [0, 1)")
        if not 0.0 <= self.corruption_prob <= 1.0:
            raise ValueError("corruption_prob must be in [0, 1]")

    @property
    def is_null(self) -> bool:
        """True when this profile can never produce a fault."""
        return (
            np.isinf(self.node_mtbf)
            and self.crash_prob == 0.0
            and self.corruption_prob == 0.0
        )

    @classmethod
    def preset(cls, name: str) -> "FaultProfile":
        """Look up one of the named presets (``none``/``light``/``heavy``).

        Raises :class:`repro.errors.UnknownNameError` with did-you-mean
        suggestions on a miss.
        """
        return FAULT_PROFILES[name]


#: The CLI's ``--fault-profile`` choices, in a typed registry so misses
#: carry suggestions instead of a raw KeyError.
FAULT_PROFILES: Registry[FaultProfile] = Registry("fault profile")
FAULT_PROFILES.register("none", FaultProfile(name="none"))
FAULT_PROFILES.register("light", FaultProfile(
    name="light",
    node_mtbf=4 * 3600.0,
    repair_time=900.0,
    crash_prob=0.02,
    corruption_prob=0.05,
))
FAULT_PROFILES.register("heavy", FaultProfile(
    name="heavy",
    node_mtbf=1200.0,
    repair_time=600.0,
    crash_prob=0.12,
    corruption_prob=0.25,
))


class FaultInjector:
    """Draws failure events for one simulation run.

    Per-machine failure/repair gaps come from a dedicated stream per
    machine (seeded by ``(seed, machine name)``), and each job attempt's
    crash decision from a stream keyed by ``(seed, job_id, attempt)`` —
    so event outcomes do not depend on the order the simulator happens
    to ask for them.
    """

    def __init__(self, profile: FaultProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed
        self._machine_rng: dict[str, np.random.Generator] = {}

    @property
    def is_null(self) -> bool:
        return self.profile.is_null

    # -- node failure channel --------------------------------------------
    def _rng_for(self, machine: str) -> np.random.Generator:
        rng = self._machine_rng.get(machine)
        if rng is None:
            rng = np.random.default_rng(
                np.random.SeedSequence(
                    [self.seed, stable_hash("node-fault"), stable_hash(machine)]
                )
            )
            self._machine_rng[machine] = rng
        return rng

    def next_failure_gap(self, machine: str) -> float | None:
        """Seconds until *machine*'s next node failure (None = never)."""
        if np.isinf(self.profile.node_mtbf):
            return None
        return float(self._rng_for(machine).exponential(self.profile.node_mtbf))

    def repair_duration(self, machine: str) -> float:
        """How long the node that just failed stays offline."""
        return max(
            1.0, float(self._rng_for(machine).exponential(self.profile.repair_time))
        )

    # -- job crash channel -----------------------------------------------
    def crash_offset(self, job_id: int, attempt: int, runtime: float) -> float | None:
        """Crash point (seconds into the attempt), or None if it survives."""
        if self.profile.crash_prob == 0.0 or runtime <= 0:
            return None
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [self.seed, stable_hash("job-crash"), int(job_id), int(attempt)]
            )
        )
        if rng.random() >= self.profile.crash_prob:
            return None
        return float(runtime * rng.uniform(0.05, 0.95))

    # -- counter corruption channel ----------------------------------------
    def corrupt_features(self, X: np.ndarray) -> np.ndarray:
        """NaN-corrupt a ``corruption_prob`` fraction of feature rows.

        Each afflicted row loses 1..n_features/2 entries — a partial
        counter read, the common real-world failure (PAPI multiplexing
        glitches, truncated measurement files).  Returns a copy; the
        input is never modified.
        """
        X = np.asarray(X, dtype=np.float64)
        if self.profile.corruption_prob == 0.0 or X.size == 0:
            return X
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, stable_hash("corruption")])
        )
        out = X.copy()
        n_rows, n_cols = out.shape
        hit = rng.random(n_rows) < self.profile.corruption_prob
        max_lost = max(1, n_cols // 2)
        for row in np.flatnonzero(hit):
            k = int(rng.integers(1, max_lost + 1))
            cols = rng.choice(n_cols, size=k, replace=False)
            out[row, cols] = np.nan
        return out
