"""Command-line interface.

Exposes the reproduction's main workflows as ``repro <subcommand>``:

* ``generate``  — build the MP-HPC dataset and write it as CSV (alias
  ``dataset``; supports ``--jobs N`` parallel generation and a
  ``--cache-dir`` content-addressed shard cache, both output-invariant).
* ``train``     — train a predictor and save it (pickle).
* ``evaluate``  — the Fig. 2 four-model comparison.
* ``importance``— the Fig. 6 feature-importance report.
* ``profile``   — profile one (app, machine, scale) run; print counters.
* ``predict``   — profile a run and predict its RPV with a saved model.
* ``schedule``  — the Section VII scheduling experiment.

Every command is deterministic given ``--seed``.  See ``repro
<subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cross-architecture performance prediction "
                    "(IPPS 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", aliases=["dataset"],
                       help="generate the MP-HPC dataset CSV")
    p.add_argument("--inputs-per-app", type=int, default=12)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", default="mphpc.csv")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for shard generation "
                        "(0 = all cores); never changes the output")
    p.add_argument("--cache-dir",
                   help="content-addressed shard cache directory; warm "
                        "reruns skip profiling entirely")

    p = sub.add_parser("report", help="dataset summary report")
    p.add_argument("--inputs-per-app", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("train", help="train a predictor and save it")
    p.add_argument("--model", default="xgboost",
                   choices=["xgboost", "forest", "linear", "mean"])
    p.add_argument("--inputs-per-app", type=int, default=12)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--split-seed", type=int, default=42)
    p.add_argument("--output", default="predictor.pkl")

    p = sub.add_parser("evaluate", help="four-model comparison (Fig. 2)")
    p.add_argument("--inputs-per-app", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cv", action="store_true",
                   help="also run 5-fold cross-validation")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for dataset generation and "
                        "model training (0 = all cores)")
    p.add_argument("--cache-dir", help="shard cache directory")

    p = sub.add_parser("importance", help="feature importances (Fig. 6)")
    p.add_argument("--inputs-per-app", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--top", type=int, default=21)

    p = sub.add_parser("profile", help="profile one run, print counters")
    p.add_argument("--app", required=True)
    p.add_argument("--machine", required=True)
    p.add_argument("--scale", default="1node",
                   choices=["1core", "1node", "2node"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--save", help="write the profile JSON here")

    p = sub.add_parser("predict", help="profile a run, predict its RPV")
    p.add_argument("--predictor", required=True,
                   help="path from `repro train --output`")
    p.add_argument("--app", required=True)
    p.add_argument("--machine", default="Quartz")
    p.add_argument("--scale", default="1node",
                   choices=["1core", "1node", "2node"])
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("whatif", help="porting shortlist from one system's "
                                      "profiles (Section VIII-B use case)")
    p.add_argument("--predictor", required=True)
    p.add_argument("--apps", nargs="+", required=True)
    p.add_argument("--source", default="Quartz")
    p.add_argument("--scale", default="1node",
                   choices=["1core", "1node", "2node"])
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("calibrate", help="measurement noise floor and "
                                         "orderability diagnostics")
    p.add_argument("--inputs-per-app", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("schedule", help="scheduling experiment (Figs. 7-8)")
    p.add_argument("--jobs", type=int, default=5000)
    p.add_argument("--inputs-per-app", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--strategies", nargs="+",
                   default=["random", "round_robin", "user_rr", "model"],
                   choices=["random", "round_robin", "user_rr", "model",
                            "oracle"])
    p.add_argument("--swf-output", help="write the model-strategy "
                                        "schedule as an SWF trace")
    p.add_argument("--fault-profile", default="none",
                   choices=["none", "light", "heavy"],
                   help="inject node failures, job crashes, and counter "
                        "corruption (none = the paper's perfect world)")
    p.add_argument("--checkpoint", action="store_true",
                   help="killed jobs restart from their completed "
                        "fraction instead of from scratch")
    p.add_argument("--max-attempts", type=int, default=None,
                   help="abandon a job after this many attempts "
                        "(default: retry forever)")

    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations (each takes parsed args, returns exit code)
# ---------------------------------------------------------------------------
def _make_cache(args):
    """A ShardCache from ``--cache-dir``, or None when the flag is off."""
    if getattr(args, "cache_dir", None) is None:
        return None
    from repro.dataset.store import ShardCache

    return ShardCache(args.cache_dir)


def _print_cache_stats(cache) -> None:
    if cache is not None:
        s = cache.stats
        print(f"cache {cache.cache_dir}: {s.hits} hits, {s.misses} misses, "
              f"{s.evictions} evicted")


def _cmd_generate(args) -> int:
    from repro.dataset import generate_dataset

    cache = _make_cache(args)
    dataset = generate_dataset(inputs_per_app=args.inputs_per_app,
                               seed=args.seed, jobs=args.jobs, cache=cache)
    dataset.save(args.output)
    print(f"wrote {dataset.num_rows} rows x "
          f"{dataset.frame.num_columns} columns to {args.output}")
    _print_cache_stats(cache)
    return 0


def _cmd_report(args) -> int:
    from repro.dataset import generate_dataset
    from repro.dataset.report import dataset_report

    dataset = generate_dataset(inputs_per_app=args.inputs_per_app,
                               seed=args.seed)
    print(dataset_report(dataset))
    return 0


def _cmd_train(args) -> int:
    from repro.core import CrossArchPredictor
    from repro.dataset import generate_dataset
    from repro.ml import mean_absolute_error, same_order_score, train_test_split

    dataset = generate_dataset(inputs_per_app=args.inputs_per_app,
                               seed=args.seed)
    train_rows, test_rows = train_test_split(
        dataset.num_rows, 0.1, random_state=args.split_seed
    )
    predictor = CrossArchPredictor.train(dataset, model=args.model,
                                         rows=train_rows)
    pred = predictor.predict(dataset.X()[test_rows])
    truth = dataset.Y()[test_rows]
    print(f"{args.model}: test MAE {mean_absolute_error(truth, pred):.4f} "
          f"SOS {same_order_score(truth, pred):.3f}")
    predictor.save(args.output)
    print(f"saved predictor to {args.output}")
    return 0


def _cmd_evaluate(args) -> int:
    from repro.core.evaluation import model_comparison_study
    from repro.dataset import generate_dataset

    cache = _make_cache(args)
    dataset = generate_dataset(inputs_per_app=args.inputs_per_app,
                               seed=args.seed, jobs=args.jobs, cache=cache)
    frame = model_comparison_study(dataset, seed=42, run_cv=args.cv,
                                   jobs=args.jobs)
    print(f"{'model':>10s} {'MAE':>8s} {'SOS':>8s}")
    for model, mae, sos in zip(frame["model"], frame["mae"], frame["sos"]):
        print(f"{model:>10s} {mae:8.4f} {sos:8.3f}")
    _print_cache_stats(cache)
    return 0


def _cmd_importance(args) -> int:
    from repro.core.evaluation import feature_importance_study
    from repro.dataset import generate_dataset

    dataset = generate_dataset(inputs_per_app=args.inputs_per_app,
                               seed=args.seed)
    frame = feature_importance_study(dataset, seed=42)
    for label, value in list(zip(frame["label"], frame["importance"]))[: args.top]:
        bar = "#" * int(round(50 * value))
        print(f"{label:>22s} {value:7.4f} {bar}")
    return 0


def _lookup_app(name: str):
    """``get_app`` with a CLI-grade error: list the valid choices."""
    from repro.apps import APPLICATIONS, get_app

    try:
        return get_app(name)
    except KeyError:
        raise ValueError(
            f"unknown application {name!r}\n"
            f"valid --app choices: {', '.join(sorted(APPLICATIONS))}"
        ) from None


def _lookup_machine(name: str):
    """``get_machine`` with a CLI-grade error: list the valid choices."""
    from repro.arch import MACHINES, get_machine

    try:
        return get_machine(name)
    except KeyError:
        raise ValueError(
            f"unknown machine {name!r}\n"
            f"valid --machine choices: {', '.join(MACHINES)}"
        ) from None


def _profile(args):
    from repro.apps import generate_inputs
    from repro.perfsim.config import make_run_config
    from repro.profiler import profile_run

    app = _lookup_app(args.app)
    machine = _lookup_machine(args.machine)
    inp = generate_inputs(app, 1, seed=args.seed)[0]
    config = make_run_config(app, machine, args.scale)
    return profile_run(app, inp, machine, config, seed=args.seed)


def _cmd_profile(args) -> int:
    from repro.hatchet_lite import run_record
    from repro.profiler import save_profile

    profile = _profile(args)
    print(f"{profile.meta['app']} on {profile.meta['machine']} "
          f"({profile.meta['scale']}, {profile.meta['profiler']}): "
          f"{profile.meta['time_seconds']:.2f}s")
    record = run_record(profile)
    for key in ("total_instructions", "branch", "load", "store", "fp_sp",
                "fp_dp", "int_arith", "l1_load_miss", "l2_load_miss",
                "mem_stall_cycles"):
        print(f"  {key:20s} {record[key]:.4g}")
    if args.save:
        save_profile(profile, args.save)
        print(f"profile written to {args.save}")
    return 0


def _cmd_predict(args) -> int:
    from repro.core import CrossArchPredictor
    from repro.hatchet_lite import run_record

    predictor = CrossArchPredictor.load(args.predictor)
    profile = _profile(args)
    record = run_record(profile)
    rpv = predictor.predict_record(record)
    print(f"predicted RPV for {args.app} (counters from {args.machine}, "
          f"{args.scale}):")
    for system, value in zip(predictor.systems, rpv):
        print(f"  {system:8s} {value:.3f}")
    order = [predictor.systems[i] for i in np.argsort(rpv)]
    print("fastest first: " + ", ".join(order))
    return 0


def _cmd_whatif(args) -> int:
    from repro.apps import generate_inputs
    from repro.core import CrossArchPredictor, porting_value
    from repro.hatchet_lite import run_record
    from repro.perfsim.config import make_run_config
    from repro.profiler import profile_run

    predictor = CrossArchPredictor.load(args.predictor)
    machine = _lookup_machine(args.source)
    records = []
    for app_name in args.apps:
        app = _lookup_app(app_name)
        inp = generate_inputs(app, 1, seed=args.seed)[0]
        config = make_run_config(app, machine, args.scale)
        records.append(
            run_record(profile_run(app, inp, machine, config,
                                   seed=args.seed))
        )
    ranked = porting_value(predictor, records, source_system=args.source)
    print(f"porting shortlist (profiled on {args.source}, {args.scale}):")
    for app_name, system, speedup in zip(
        ranked["app"], ranked["best_gpu_system"],
        ranked["speedup_vs_source"],
    ):
        print(f"  {app_name:14s} -> {system:8s} {speedup:5.1f}x")
    return 0


def _cmd_calibrate(args) -> int:
    from repro.core import estimate_noise_floor, gap_statistics
    from repro.dataset import generate_dataset

    floor = estimate_noise_floor(inputs_per_app=args.inputs_per_app,
                                 seed=args.seed)
    print(f"test-retest SOS ceiling: {floor.sos_ceiling:.3f} "
          f"({floor.groups} groups)")
    print(f"RPV MAE noise floor:     {floor.rpv_mae_floor:.4f}")
    dataset = generate_dataset(inputs_per_app=args.inputs_per_app,
                               seed=args.seed)
    stats = gap_statistics(dataset.Y())
    print(f"median adjacent RPV gap: {stats['median']:.3f}")
    print(f"near-tied rows (<0.05):  {stats['near_tied_fraction']:.0%}")
    return 0


def _cmd_schedule(args) -> int:
    from repro.core import CrossArchPredictor
    from repro.dataset import generate_dataset
    from repro.ml import train_test_split
    from repro.sched import (
        Scheduler,
        average_bounded_slowdown,
        makespan,
        strategy_by_name,
    )
    from repro.sched.machines import ClusterState
    from repro.workloads import build_workload
    from repro.workloads.swf import write_swf

    dataset = generate_dataset(inputs_per_app=args.inputs_per_app,
                               seed=args.seed)
    train_rows, _ = train_test_split(dataset.num_rows, 0.1, random_state=42)
    predictor = CrossArchPredictor.train(dataset, rows=train_rows)
    fault_profile = getattr(args, "fault_profile", "none")
    if fault_profile != "none":
        return _schedule_with_faults(args, dataset, predictor)
    jobs = build_workload(dataset, n_jobs=args.jobs, seed=args.seed + 1,
                          predictor=predictor)
    print(f"{'strategy':>12s} {'makespan(h)':>12s} {'bounded slowdown':>17s}")
    for name in args.strategies:
        result = Scheduler(strategy_by_name(name, seed=11),
                           ClusterState()).run(list(jobs))
        print(f"{name:>12s} {makespan(result) / 3600:12.3f} "
              f"{average_bounded_slowdown(result):17.2f}")
        if name == "model" and args.swf_output:
            write_swf(result, args.swf_output,
                      header="repro scheduling experiment")
            print(f"  SWF trace written to {args.swf_output}")
    return 0


def _schedule_with_faults(args, dataset, predictor) -> int:
    """The Fig. 7 experiment re-run in a hostile world.

    The workload's counter vectors pass through the fault injector's
    corruption channel and the :class:`ResilientPredictor` degradation
    chain before scheduling; each strategy then runs under its own
    (identically-seeded) injector so every strategy faces the same
    failure sequence.
    """
    from repro.resilience import (
        CorruptingPredictor,
        FaultInjector,
        FaultProfile,
        ResilientPredictor,
        RetryPolicy,
    )
    from repro.sched import (
        Scheduler,
        average_bounded_slowdown,
        degraded_prediction_fraction,
        goodput,
        makespan,
        resilience_summary,
        strategy_by_name,
    )
    from repro.sched.machines import ClusterState
    from repro.workloads import build_workload

    profile = FaultProfile.preset(args.fault_profile)
    resilient = ResilientPredictor.from_training(predictor, dataset)
    corrupting = CorruptingPredictor(
        resilient, FaultInjector(profile, seed=args.seed + 2)
    )
    jobs = build_workload(dataset, n_jobs=args.jobs, seed=args.seed + 1,
                          predictor=corrupting)
    retry = RetryPolicy(max_attempts=args.max_attempts,
                        checkpoint=args.checkpoint)
    degraded = degraded_prediction_fraction(resilient.tier_counts)
    print(f"fault profile {profile.name}: node MTBF/machine "
          f"{profile.node_mtbf:.0f}s, crash prob {profile.crash_prob:.0%}, "
          f"counter corruption {profile.corruption_prob:.0%}")
    print(f"degraded predictions: {degraded:.1%} "
          f"(tiers: {dict(resilient.tier_counts)})")
    print(f"{'strategy':>12s} {'makespan(h)':>12s} {'slowdown':>9s} "
          f"{'goodput':>8s} {'retries':>8s} {'completed':>10s}")
    for name in args.strategies:
        # A fresh injector per strategy: every strategy sees the same
        # failure sequence.
        scheduler = Scheduler(
            strategy_by_name(name, seed=11), ClusterState(),
            faults=FaultInjector(profile, seed=args.seed + 2), retry=retry,
        )
        result = scheduler.run(list(jobs))
        summary = resilience_summary(result)
        completed = result.num_jobs
        total = completed + summary["failed_jobs"]
        print(f"{name:>12s} {makespan(result) / 3600:12.3f} "
              f"{average_bounded_slowdown(result):9.2f} "
              f"{goodput(result):8.3f} {summary['retries']:8d} "
              f"{completed:6d}/{total:<4d}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "dataset": _cmd_generate,
    "report": _cmd_report,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "importance": _cmd_importance,
    "profile": _cmd_profile,
    "predict": _cmd_predict,
    "whatif": _cmd_whatif,
    "calibrate": _cmd_calibrate,
    "schedule": _cmd_schedule,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        # KeyError's str() wraps the message in quotes; unwrap it.
        reason = exc.args[0] if exc.args else exc
        print(f"error: {reason}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
