"""Deterministic self-profiling: per-function attribution for our own hot loops.

The paper predicts application performance from hardware counters; this
module turns the same methodology on the reproduction itself.  A
:func:`collect` run executes a workload under *deterministic* (fully
instrumented, not sampled) profiling and produces one JSON-serializable
report with three counter families:

* **Self-time attribution** — per-function self time, cumulative time,
  and call counts from :mod:`cProfile` (CPython's deterministic
  profiler: every call and return is instrumented, so call counts are
  exact and reproducible run to run; only the times vary with the
  host).
* **Allocation counters** — allocation sites, block counts, and bytes
  from :mod:`tracemalloc`.  numpy registers its array-buffer allocator
  with tracemalloc, so the numpy *temporaries* a hot loop churns
  through show up here as high-block-count sites, the usual smoking gun
  for a loop that should be fused or pushed into a kernel.
* **Cache-behavior proxy** — a working-set-size estimate per allocation
  site (bytes live at peak) classified against nominal cache capacities
  (L1/L2/L3/DRAM).  A site whose working set falls out of L2 is the
  first candidate for tiling/chunking; this is exactly the heuristic
  that sized the flat-ensemble row chunks and the native kernel's row
  tiles.

The report embeds its own SHA-256 (:func:`checksum_report`) over the
canonical payload so downstream consumers (CI smoke, ``repro report``)
can detect truncated or hand-edited artifacts independently of the run
manifest's file digests.

This module is bottom-layer: it profiles a zero-argument callable and
imports nothing from ``repro``, so any layer can be profiled without
import cycles (the ``repro perf`` CLI wires in the schedule/predict
workloads).
"""

from __future__ import annotations

import cProfile
import hashlib
import json
import pstats
import time
import tracemalloc
from typing import Any, Callable

__all__ = [
    "SCHEMA_VERSION",
    "CACHE_LEVELS",
    "collect",
    "checksum_report",
    "validate_report",
    "render_report",
]

SCHEMA_VERSION = 1

#: Nominal per-level cache capacities (bytes) for the working-set
#: classification.  These are deliberately generic desktop/server sizes
#: — the classification is a coarse proxy ("does this loop's working
#: set stream from DRAM?"), not a micro-architectural model.
CACHE_LEVELS: tuple[tuple[str, int], ...] = (
    ("L1", 32 * 1024),
    ("L2", 1024 * 1024),
    ("L3", 32 * 1024 * 1024),
)


def _cache_level(nbytes: int) -> str:
    for name, capacity in CACHE_LEVELS:
        if nbytes <= capacity:
            return name
    return "DRAM"


def _function_rows(stats: pstats.Stats, top: int,
                   wall_s: float) -> tuple[list[dict], dict]:
    """Top-*top* functions by self time, plus whole-run call counters."""
    rows = []
    total_calls = 0
    primitive_calls = 0
    for (filename, line, name), (cc, nc, tt, ct, _callers) in \
            stats.stats.items():  # type: ignore[attr-defined]
        total_calls += nc
        primitive_calls += cc
        rows.append({
            "function": name,
            "file": filename,
            "line": line,
            "ncalls": nc,
            "self_time_s": round(tt, 6),
            "cum_time_s": round(ct, 6),
            "self_frac": round(tt / wall_s, 4) if wall_s > 0 else 0.0,
        })
    rows.sort(key=lambda r: (-r["self_time_s"], r["file"], r["line"]))
    counters = {
        "total_calls": int(total_calls),
        "primitive_calls": int(primitive_calls),
    }
    return rows[:top], counters


def _allocation_rows(snapshot: tracemalloc.Snapshot,
                     top: int) -> tuple[list[dict], dict]:
    """Top-*top* allocation sites by bytes, plus whole-run totals."""
    stats = snapshot.statistics("lineno")
    numpy_bytes = 0
    numpy_blocks = 0
    total_bytes = 0
    total_blocks = 0
    rows = []
    for stat in stats:
        total_bytes += stat.size
        total_blocks += stat.count
        frame = stat.traceback[0]
        if "numpy" in frame.filename:
            numpy_bytes += stat.size
            numpy_blocks += stat.count
        rows.append({
            "file": frame.filename,
            "line": frame.lineno,
            "bytes": stat.size,
            "blocks": stat.count,
            "wss_estimate_bytes": stat.size,
            "cache_level": _cache_level(stat.size),
        })
    rows.sort(key=lambda r: (-r["bytes"], r["file"], r["line"]))
    totals = {
        "traced_bytes": int(total_bytes),
        "traced_blocks": int(total_blocks),
        "numpy_bytes": int(numpy_bytes),
        "numpy_blocks": int(numpy_blocks),
    }
    return rows[:top], totals


def collect(workload: Callable[[], Any], *, label: str = "workload",
            top: int = 20, meta: dict | None = None) -> dict:
    """Run *workload* under deterministic profiling; return the report.

    The callable is executed exactly once with :mod:`cProfile` and
    :mod:`tracemalloc` active (expect a few-times slowdown — profile a
    scaled-down workload, the attribution ratios are what matter).
    ``label`` names the workload in the report; ``meta`` is an optional
    free-form dict recorded verbatim (e.g. the CLI's config fields).

    The returned dict matches :func:`validate_report` and carries its
    own ``checksum``.
    """
    if top < 1:
        raise ValueError("top must be >= 1")
    profiler = cProfile.Profile()
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    t0 = time.perf_counter()
    profiler.enable()
    try:
        workload()
    finally:
        profiler.disable()
        wall_s = time.perf_counter() - t0
        snapshot = tracemalloc.take_snapshot()
        _, peak_bytes = tracemalloc.get_traced_memory()
        if not was_tracing:
            tracemalloc.stop()
    stats = pstats.Stats(profiler)
    functions, call_counters = _function_rows(stats, top, wall_s)
    allocations, alloc_totals = _allocation_rows(snapshot, top)
    report = {
        "schema_version": SCHEMA_VERSION,
        "workload": label,
        "wall_time_s": round(wall_s, 6),
        "counters": {**call_counters, **alloc_totals,
                     "peak_traced_bytes": int(peak_bytes)},
        "functions": functions,
        "allocations": allocations,
        "cache_levels": {name: size for name, size in CACHE_LEVELS},
        "meta": dict(meta or {}),
    }
    report["checksum"] = checksum_report(report)
    return report


def checksum_report(report: dict) -> str:
    """SHA-256 over the canonical JSON of *report* minus ``checksum``."""
    payload = {k: v for k, v in report.items() if k != "checksum"}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


_REQUIRED_KEYS = ("schema_version", "workload", "wall_time_s", "counters",
                  "functions", "allocations", "cache_levels", "checksum")
_FUNCTION_KEYS = ("function", "file", "line", "ncalls", "self_time_s",
                  "cum_time_s", "self_frac")
_ALLOCATION_KEYS = ("file", "line", "bytes", "blocks",
                    "wss_estimate_bytes", "cache_level")


def validate_report(report: object) -> dict:
    """Check a loaded ``perf_report.json``; returns it typed as a dict.

    Raises :class:`ValueError` naming the first structural defect:
    missing keys, a schema-version mismatch, malformed entry rows, or a
    checksum that does not match the payload.
    """
    if not isinstance(report, dict):
        raise ValueError(
            f"perf report must be an object, got {type(report).__name__}"
        )
    missing = [k for k in _REQUIRED_KEYS if k not in report]
    if missing:
        raise ValueError(f"perf report missing keys: {missing}")
    if report["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"perf report schema_version {report['schema_version']!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    for row in report["functions"]:
        gone = [k for k in _FUNCTION_KEYS if k not in row]
        if gone:
            raise ValueError(f"function entry missing {gone}: {row}")
    for row in report["allocations"]:
        gone = [k for k in _ALLOCATION_KEYS if k not in row]
        if gone:
            raise ValueError(f"allocation entry missing {gone}: {row}")
    expected = checksum_report(report)
    if report["checksum"] != expected:
        raise ValueError(
            f"perf report checksum mismatch: recorded "
            f"{report['checksum'][:12]}…, payload hashes to "
            f"{expected[:12]}…"
        )
    return report


def _short_path(filename: str) -> str:
    for marker in ("/repro/", "/numpy/"):
        idx = filename.rfind(marker)
        if idx >= 0:
            return filename[idx + 1:]
    return filename.rsplit("/", 1)[-1]


def render_report(report: dict, top: int = 3) -> str:
    """Human-readable summary: top self-time, allocation, and WSS lines.

    ``repro report <run-dir>`` prints this section whenever the run
    carries a ``perf_report.json``.
    """
    lines = [
        f"perf profile ({report['workload']}): "
        f"{report['wall_time_s']:.3f} s wall, "
        f"{report['counters']['total_calls']:,} calls, "
        f"peak {report['counters']['peak_traced_bytes'] / 1e6:.1f} MB traced",
        f"top {top} functions by self time:",
    ]
    for row in report["functions"][:top]:
        lines.append(
            f"  {row['self_time_s']:8.3f}s  {row['self_frac']:6.1%}  "
            f"{row['ncalls']:>9,}x  {row['function']}  "
            f"({_short_path(row['file'])}:{row['line']})"
        )
    lines.append(f"top {top} allocation sites (working-set proxy):")
    for row in report["allocations"][:top]:
        lines.append(
            f"  {row['bytes'] / 1e6:8.2f} MB  {row['blocks']:>7,} blocks  "
            f"[{row['cache_level']:>4}]  "
            f"{_short_path(row['file'])}:{row['line']}"
        )
    c = report["counters"]
    if c.get("numpy_blocks"):
        lines.append(
            f"numpy temporaries: {c['numpy_blocks']:,} blocks, "
            f"{c['numpy_bytes'] / 1e6:.2f} MB live at snapshot"
        )
    return "\n".join(lines)
