"""Frozen seed implementation of the scheduling simulator (golden oracle).

This is a byte-for-byte copy of ``sched/simulator.py`` as it stood
before the fast-engine rewrite, kept for two purposes:

* **Equivalence testing** — ``tests/test_sched_equivalence.py`` asserts
  the optimized :class:`repro.sched.Scheduler` produces bit-identical
  :class:`~repro.sched.simulator.ScheduleResult` outputs to this
  reference across strategies, queue policies, arrival patterns, and
  fault profiles.
* **Performance baselining** — ``benchmarks/test_perf_sched.py``
  measures the optimized engine's speedup against this pre-optimization
  implementation on the same workload and host.

Do not optimize or otherwise modify the scheduling logic here; it is
the contract the fast engine must honor.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.sched.job import Job
from repro.sched.machines import ClusterState
from repro.sched.policies import FCFSPolicy
from repro.sched.simulator import ScheduleResult

__all__ = ["ReferenceScheduler"]


class ReferenceScheduler:
    """Pre-optimization scheduler: Algorithm 1 with pluggable R1/R2.

    Parameters
    ----------
    strategy:
        Machine-assignment strategy (``Machine(j, i, M)``).
    cluster:
        Machine pool; defaults to the Table I clusters.
    backfill:
        Enable EASY backfilling (Algorithm 1 lines 9-16); disabling it
        gives plain FCFS for the ablation study.
    conservative:
        Approximate conservative backfilling: a candidate may backfill
        (on *any* machine) only if it completes before the head job's
        reservation time, so no backfilled job outlives the current
        reservation horizon.  Stricter and fairer than EASY, at lower
        utilization.
    backfill_depth:
        Maximum queue entries scanned per backfill pass (production
        schedulers bound this; keeps the simulation O(depth) per event).
    queue_policy:
        R1 — queue ordering policy (default FCFS, the paper's choice).
    backfill_policy:
        R2 — backfill candidate ordering policy (default FCFS).
    walltime_factor:
        Multiplier on runtimes when used as *walltime estimates* in
        backfill feasibility checks.  1.0 (default) reproduces the
        paper's perfect estimates; real users over-request 2-10x, which
        makes backfilling conservative about jobs that would actually
        have fit.  Actual execution always uses the true runtime.
    trace:
        Record a scheduling event log in ``result.extra["events"]``:
        tuples ``(time, kind, job_id, machine)`` with kind in
        {"start", "backfill_start", "reserve"} (plus {"crash",
        "node_fail", "node_recover", "requeue", "give_up"} in
        failure-aware mode).  Off by default (the log grows with the
        workload).
    faults:
        A :class:`repro.resilience.FaultInjector`.  When given (and not
        null), the simulation runs the failure-aware event loop; None
        (default) runs the original fault-free loop.
    retry:
        :class:`repro.resilience.RetryPolicy` governing resubmission of
        killed jobs; defaults to unlimited attempts with exponential
        backoff.  Only consulted in failure-aware mode.
    """

    def __init__(
        self,
        strategy,
        cluster: ClusterState | None = None,
        backfill: bool = True,
        conservative: bool = False,
        backfill_depth: int = 128,
        queue_policy=None,
        backfill_policy=None,
        walltime_factor: float = 1.0,
        trace: bool = False,
        faults=None,
        retry=None,
    ):
        if walltime_factor < 1.0:
            raise ValueError("walltime_factor must be >= 1 (users cannot "
                             "under-request without being killed)")
        self.strategy = strategy
        self.cluster = cluster if cluster is not None else ClusterState()
        self.backfill = backfill
        self.conservative = conservative
        self.backfill_depth = backfill_depth
        self.queue_policy = queue_policy or FCFSPolicy()
        self.backfill_policy = backfill_policy or FCFSPolicy()
        self.walltime_factor = walltime_factor
        self.trace = trace
        self.faults = faults
        self.retry = retry

    # ------------------------------------------------------------------
    def run(self, jobs: list[Job]) -> ScheduleResult:
        """Simulate scheduling of *jobs*; returns per-job outcomes."""
        if not jobs:
            raise ValueError("no jobs to schedule")
        if self.faults is not None:
            return self._run_faulty(jobs)
        return self._run_reliable(jobs)

    # ------------------------------------------------------------------
    def _run_reliable(self, jobs: list[Job]) -> ScheduleResult:
        """The fault-free loop (the paper's perfect world)."""
        arrivals = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        arrival_idx = 0
        cluster = self.cluster
        r1_key = self.queue_policy.key
        r2_key = self.backfill_policy.key

        n = len(jobs)
        queue: list[Job] = []
        head_idx = 0
        machines_out: dict[int, str] = {}
        start_out: dict[int, float] = {}
        scheduled: set[int] = set()
        started = 0
        backfilled = 0
        now = 0.0
        events: list[tuple[float, str, int, str]] = []

        def admit_arrivals() -> None:
            nonlocal arrival_idx, queue, head_idx
            added = False
            while (arrival_idx < n
                   and arrivals[arrival_idx].submit_time <= now):
                queue.append(arrivals[arrival_idx])
                arrival_idx += 1
                added = True
            if added:
                # Compact lazily-deleted entries, then restore R1 order.
                queue = [j for j in queue[head_idx:]
                         if j.job_id not in scheduled]
                queue.sort(key=r1_key)
                head_idx = 0

        def compact() -> None:
            nonlocal queue, head_idx
            if head_idx > 64 and head_idx * 2 > len(queue):
                queue = queue[head_idx:]
                head_idx = 0

        def advance_head() -> None:
            nonlocal head_idx
            while head_idx < len(queue) and \
                    queue[head_idx].job_id in scheduled:
                head_idx += 1

        def start_job(job: Job, machine_name: str) -> None:
            nonlocal started
            runtime = job.runtime_on(machine_name)
            cluster[machine_name].start(job.nodes_required, now + runtime)
            machines_out[job.job_id] = machine_name
            start_out[job.job_id] = now
            scheduled.add(job.job_id)
            started += 1

        while len(start_out) < n:
            admit_arrivals()

            made_progress = True
            while made_progress:
                advance_head()
                compact()
                if head_idx >= len(queue):
                    break
                made_progress = False
                head = queue[head_idx]
                m_name = self.strategy.assign(head, started, cluster)
                machine = cluster[m_name]
                if not machine.can_ever_fit(head.nodes_required):
                    raise RuntimeError(
                        f"job {head.job_id} needs {head.nodes_required} "
                        f"nodes; {m_name} has {machine.total_nodes}"
                    )
                if machine.can_fit(head.nodes_required):
                    start_job(head, m_name)
                    if self.trace:
                        events.append((now, "start", head.job_id, m_name))
                    head_idx += 1
                    made_progress = True
                    continue

                if not self.backfill or head_idx + 1 >= len(queue):
                    break
                # EASY: reserve head at its machine's shadow time, then
                # scan a bounded near-head window in R2 order.
                shadow = machine.shadow_time(head.nodes_required, now)
                if self.trace:
                    events.append((shadow, "reserve", head.job_id, m_name))
                window = [
                    j for j in
                    queue[head_idx + 1:
                          head_idx + 1 + 4 * self.backfill_depth]
                    if j.job_id not in scheduled
                ]
                window.sort(key=r2_key)
                for cand in window[: self.backfill_depth]:
                    c_name = self.strategy.assign(cand, started, cluster)
                    c_machine = cluster[c_name]
                    if not c_machine.can_ever_fit(cand.nodes_required):
                        continue
                    if not c_machine.can_fit(cand.nodes_required):
                        continue
                    # Feasibility uses the (possibly inflated) estimate;
                    # actual execution below uses the true runtime.
                    finishes = now + (cand.runtime_on(c_name)
                                      * self.walltime_factor)
                    if c_name == m_name and finishes > shadow:
                        # Would delay the head's reservation (the head
                        # consumes every node freed up to the shadow
                        # time by construction).
                        continue
                    if self.conservative and finishes > shadow:
                        # Conservative mode: nothing may outlive the
                        # reservation horizon, even on other machines.
                        continue
                    start_job(cand, c_name)
                    backfilled += 1
                    if self.trace:
                        events.append((now, "backfill_start",
                                       cand.job_id, c_name))
                break  # head still blocked; wait for an event

            if len(start_out) >= n:
                break
            # Advance time to the next event.
            next_done = cluster.next_completion()
            next_arrival = (arrivals[arrival_idx].submit_time
                            if arrival_idx < n else None)
            wake_times = [t for t in (next_done, next_arrival)
                          if t is not None]
            if not wake_times:
                raise RuntimeError("deadlock: no events but jobs unscheduled")
            now = max(now, min(wake_times))
            cluster.release_until(now)

        by_id = {j.job_id: j for j in jobs}
        ids = np.array(sorted(start_out), dtype=np.int64)
        starts = np.array([start_out[i] for i in ids])
        placed = [machines_out[i] for i in ids]
        runtimes = np.array(
            [by_id[i].runtime_on(machines_out[i]) for i in ids]
        )
        submits = np.array([by_id[i].submit_time for i in ids])
        return ScheduleResult(
            job_ids=ids,
            machines=placed,
            submit_times=submits,
            start_times=starts,
            end_times=starts + runtimes,
            runtimes=runtimes,
            strategy_name=getattr(self.strategy, "name", "custom"),
            backfilled=backfilled,
            extra={"events": events} if self.trace else {},
        )

    # ------------------------------------------------------------------
    def _run_faulty(self, jobs: list[Job]) -> ScheduleResult:
        """Failure-aware event loop: the paper's experiment in a hostile
        world.

        Same scheduling logic (Algorithm 1 + strategy + EASY backfill),
        extended with four event kinds: ``finish``, ``crash`` (job-level
        fault), ``fail``/``recover`` (node-level fault), and ``requeue``
        (retry becoming eligible).  With a null injector this loop makes
        identical scheduling decisions to :meth:`_run_reliable` — pinned
        by a test — because job starts, finishes, and backfill
        feasibility compute the exact same values when no fault event
        ever fires.
        """
        from repro.resilience.retry import RetryPolicy

        injector = self.faults
        retry = self.retry if self.retry is not None else RetryPolicy()
        arrivals = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        arrival_idx = 0
        cluster = self.cluster
        r1_key = self.queue_policy.key
        r2_key = self.backfill_policy.key

        n = len(jobs)
        by_id = {j.job_id: j for j in jobs}
        queue: list[Job] = []
        head_idx = 0
        scheduled: set[int] = set()
        started = 0
        backfilled = 0
        now = 0.0
        events: list[tuple[float, str, int, str]] = []

        # Resilience bookkeeping.
        attempts: dict[int, int] = {}        # job -> attempts started
        progress: dict[int, float] = {}      # job -> work fraction done
        running: dict[int, dict] = {}        # job -> live attempt info
        finished: dict[int, tuple[str, float, float]] = {}
        failed_perm: set[int] = set()
        wasted = 0.0                         # node-seconds of lost work
        node_failures = 0
        job_crashes = 0
        preemptions = 0                      # kills caused by node failures
        retries = 0

        # Event heap: (time, tiebreak, kind, a, b).
        evq: list[tuple[float, int, str, int | str, int]] = []
        ev_seq = 0

        def push(time: float, kind: str, a, b=0) -> None:
            nonlocal ev_seq
            heapq.heappush(evq, (time, ev_seq, kind, a, b))
            ev_seq += 1

        for m_name in cluster.names:
            gap = injector.next_failure_gap(m_name)
            if gap is not None:
                push(gap, "fail", m_name)

        def remaining(jid: int) -> float:
            return max(0.0, 1.0 - progress.get(jid, 0.0))

        def admit_arrivals() -> None:
            nonlocal arrival_idx, queue, head_idx
            added = False
            while (arrival_idx < n
                   and arrivals[arrival_idx].submit_time <= now):
                queue.append(arrivals[arrival_idx])
                arrival_idx += 1
                added = True
            if added:
                queue = [j for j in queue[head_idx:]
                         if j.job_id not in scheduled]
                queue.sort(key=r1_key)
                head_idx = 0

        def compact() -> None:
            nonlocal queue, head_idx
            if head_idx > 64 and head_idx * 2 > len(queue):
                queue = queue[head_idx:]
                head_idx = 0

        def advance_head() -> None:
            nonlocal head_idx
            while head_idx < len(queue) and \
                    queue[head_idx].job_id in scheduled:
                head_idx += 1

        def start_job(job: Job, machine_name: str) -> None:
            nonlocal started
            jid = job.job_id
            runtime = job.runtime_on(machine_name) * remaining(jid)
            end = now + runtime
            seq = cluster[machine_name].start(job.nodes_required, end)
            attempt = attempts.get(jid, 0) + 1
            attempts[jid] = attempt
            running[jid] = {
                "machine": machine_name, "start": now, "end": end,
                "nodes": job.nodes_required, "seq": seq, "attempt": attempt,
            }
            scheduled.add(jid)
            started += 1
            push(end, "finish", jid, attempt)
            crash_at = injector.crash_offset(jid, attempt, runtime)
            if crash_at is not None:
                push(now + crash_at, "crash", jid, attempt)

        def kill(jid: int, cause: str) -> None:
            """Terminate a running attempt and arrange its retry."""
            nonlocal wasted, retries, queue, head_idx
            info = running.pop(jid)
            cluster[info["machine"]].cancel(info["seq"])
            job = by_id[jid]
            elapsed = now - info["start"]
            if retry.checkpoint:
                progress[jid] = min(
                    1.0,
                    progress.get(jid, 0.0)
                    + elapsed / job.runtime_on(info["machine"]),
                )
            else:
                wasted += info["nodes"] * elapsed
            if self.trace:
                events.append((now, cause, jid, info["machine"]))
            if retry.gives_up(attempts[jid]):
                failed_perm.add(jid)  # stays in `scheduled`: never requeued
                if self.trace:
                    events.append((now, "give_up", jid, info["machine"]))
                return
            retries += 1
            push(now + retry.delay(attempts[jid], jid), "requeue", jid)

        def handle_requeue(jid: int) -> None:
            nonlocal queue, head_idx
            # Purge any stale queue copy (a backfilled job stays in the
            # window until compaction) *before* clearing the scheduled
            # mark, then re-admit under R1 order.
            queue = [j for j in queue[head_idx:]
                     if j.job_id not in scheduled]
            scheduled.discard(jid)
            queue.append(by_id[jid])
            queue.sort(key=r1_key)
            head_idx = 0
            if self.trace:
                events.append((now, "requeue", jid, ""))

        def handle_node_failure(m_name: str) -> None:
            nonlocal node_failures, preemptions, job_crashes
            machine = cluster[m_name]
            gap = injector.next_failure_gap(m_name)
            if gap is not None:
                push(now + gap, "fail", m_name)
            if machine.usable_nodes == 0:
                return  # already fully down; nothing left to break
            if machine.free_nodes == 0:
                # Every usable node is busy: the failing node takes its
                # job down with it.  Deterministic victim: the running
                # job with the most remaining work (latest end time).
                victim = max(
                    (jid for jid, info in running.items()
                     if info["machine"] == m_name),
                    key=lambda jid: (running[jid]["end"], jid),
                )
                preemptions += 1
                kill(victim, "node_kill")
            machine.take_offline(1)
            node_failures += 1
            if self.trace:
                events.append((now, "node_fail", -1, m_name))
            push(now + injector.repair_duration(m_name), "recover", m_name)

        def schedule_pass() -> None:
            nonlocal head_idx, backfilled
            made_progress = True
            while made_progress:
                advance_head()
                compact()
                if head_idx >= len(queue):
                    return
                made_progress = False
                head = queue[head_idx]
                try:
                    m_name = self.strategy.assign(head, started, cluster)
                except RuntimeError:
                    # Strategy found no usable machine.  Transient when
                    # caused by offline nodes; a configuration error when
                    # the job exceeds every machine outright.
                    if not any(cluster[nm].total_nodes >= head.nodes_required
                               for nm in cluster.names):
                        raise
                    return
                machine = cluster[m_name]
                if head.nodes_required > machine.total_nodes:
                    raise RuntimeError(
                        f"job {head.job_id} needs {head.nodes_required} "
                        f"nodes; {m_name} has {machine.total_nodes}"
                    )
                if machine.can_fit(head.nodes_required):
                    start_job(head, m_name)
                    if self.trace:
                        events.append((now, "start", head.job_id, m_name))
                    head_idx += 1
                    made_progress = True
                    continue

                if not self.backfill or head_idx + 1 >= len(queue):
                    return
                try:
                    shadow = machine.shadow_time(head.nodes_required, now)
                except RuntimeError:
                    return  # offline nodes block the reservation; wait
                if self.trace:
                    events.append((shadow, "reserve", head.job_id, m_name))
                window = [
                    j for j in
                    queue[head_idx + 1:
                          head_idx + 1 + 4 * self.backfill_depth]
                    if j.job_id not in scheduled
                ]
                window.sort(key=r2_key)
                for cand in window[: self.backfill_depth]:
                    try:
                        c_name = self.strategy.assign(cand, started, cluster)
                    except RuntimeError:
                        continue
                    c_machine = cluster[c_name]
                    if not c_machine.can_ever_fit(cand.nodes_required):
                        continue
                    if not c_machine.can_fit(cand.nodes_required):
                        continue
                    finishes = now + (cand.runtime_on(c_name)
                                      * remaining(cand.job_id)
                                      * self.walltime_factor)
                    if c_name == m_name and finishes > shadow:
                        continue
                    if self.conservative and finishes > shadow:
                        continue
                    start_job(cand, c_name)
                    backfilled += 1
                    if self.trace:
                        events.append((now, "backfill_start",
                                       cand.job_id, c_name))
                return  # head still blocked; wait for an event

        while len(finished) + len(failed_perm) < n:
            admit_arrivals()
            schedule_pass()
            if len(finished) + len(failed_perm) >= n:
                break

            wake_times = []
            if arrival_idx < n:
                wake_times.append(arrivals[arrival_idx].submit_time)
            if evq:
                wake_times.append(evq[0][0])
            if not wake_times:
                raise RuntimeError("deadlock: no events but jobs unresolved")
            now = max(now, min(wake_times))
            cluster.release_until(now)

            while evq and evq[0][0] <= now:
                _, _, kind, a, b = heapq.heappop(evq)
                if kind == "finish":
                    info = running.get(a)
                    if info is not None and info["attempt"] == b:
                        running.pop(a)
                        finished[a] = (
                            info["machine"], info["start"], info["end"]
                        )
                elif kind == "crash":
                    info = running.get(a)
                    if info is not None and info["attempt"] == b:
                        job_crashes += 1
                        kill(a, "crash")
                elif kind == "fail":
                    handle_node_failure(a)
                elif kind == "recover":
                    cluster[a].bring_online(1)
                    if self.trace:
                        events.append((now, "node_recover", -1, a))
                elif kind == "requeue":
                    handle_requeue(a)

        ids = np.array(sorted(finished), dtype=np.int64)
        placed = [finished[i][0] for i in ids]
        starts = np.array([finished[i][1] for i in ids])
        ends = np.array([finished[i][2] for i in ids])
        submits = np.array([by_id[i].submit_time for i in ids])
        extra = {
            "faults": {
                "profile": injector.profile.name,
                "node_failures": node_failures,
                "job_crashes": job_crashes,
                "preemptions": preemptions,
                "retries": retries,
                "failed_jobs": sorted(failed_perm),
                "wasted_node_seconds": float(wasted),
                "attempts": {
                    int(j): int(k) for j, k in attempts.items() if k > 1
                },
            }
        }
        if self.trace:
            extra["events"] = events
        return ScheduleResult(
            job_ids=ids,
            machines=placed,
            submit_times=submits,
            start_times=starts,
            end_times=ends,
            runtimes=ends - starts,
            strategy_name=getattr(self.strategy, "name", "custom"),
            backfilled=backfilled,
            extra=extra,
        )
