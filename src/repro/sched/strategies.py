"""Machine-assignment strategies (Section VII).

All strategies implement ``assign(job, index, cluster) -> machine name``
— the paper's ``Machine(j, i, M)`` interface, where *index* is the count
of jobs started so far (Algorithm 1 increments it per ``Start``).

* :class:`RoundRobinStrategy` — rotate machines per started job.
* :class:`RandomStrategy` — uniform random machine, sticky per job.
* :class:`UserRRStrategy` — "mimics typical user behavior": GPU-enabled
  applications round-robin over GPU systems, CPU-only applications over
  CPU-only systems.
* :class:`ModelBasedStrategy` — Algorithm 2: pick the fastest machine
  by predicted RPV; if it has no free nodes, fall through to the next
  fastest, returning the overall fastest when everything is full (so
  the job waits for its best machine).  Note: the paper's pseudocode
  says ``argmax``; RPVs are time ratios so the fastest machine is the
  *argmin* (see :mod:`repro.core.rpv`).
"""

from __future__ import annotations

import numpy as np

from repro.arch.machines import MACHINES, SYSTEM_ORDER
from repro.sched.job import Job
from repro.sched.machines import ClusterState

__all__ = [
    "RoundRobinStrategy",
    "RandomStrategy",
    "UserRRStrategy",
    "ModelBasedStrategy",
    "OracleStrategy",
    "strategy_by_name",
]


class RoundRobinStrategy:
    """Rotate across all machines by started-job index."""

    name = "round_robin"

    def assign(self, job: Job, index: int, cluster: ClusterState) -> str:
        names = cluster.names
        return names[index % len(names)]


class RandomStrategy:
    """Uniform random machine, deterministic and sticky per job id."""

    name = "random"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._cache: dict[int, str] = {}

    def assign(self, job: Job, index: int, cluster: ClusterState) -> str:
        choice = self._cache.get(job.job_id)
        if choice is None:
            names = cluster.names
            choice = names[int(self._rng.integers(len(names)))]
            self._cache[job.job_id] = choice
        return choice


class UserRRStrategy:
    """GPU apps round-robin over GPU systems, CPU apps over CPU systems."""

    name = "user_rr"

    def __init__(self) -> None:
        self._gpu_index = 0
        self._cpu_index = 0
        self._cache: dict[int, str] = {}

    def assign(self, job: Job, index: int, cluster: ClusterState) -> str:
        # Sticky per job so scheduler retries do not advance the rotation.
        choice = self._cache.get(job.job_id)
        if choice is not None:
            return choice
        gpu_names = [
            n for n in cluster.names
            if n in MACHINES and MACHINES[n].has_gpu
        ]
        cpu_names = [
            n for n in cluster.names
            if n not in MACHINES or not MACHINES[n].has_gpu
        ]
        if job.uses_gpu and gpu_names:
            choice = gpu_names[self._gpu_index % len(gpu_names)]
            self._gpu_index += 1
        else:
            pool = cpu_names or cluster.names
            choice = pool[self._cpu_index % len(pool)]
            self._cpu_index += 1
        self._cache[job.job_id] = choice
        return choice


class ModelBasedStrategy:
    """Algorithm 2: fastest predicted machine with full-machine fallback."""

    name = "model"
    #: Which RPV each job carries for this strategy.
    rpv_attr = "predicted_rpv"

    def __init__(self, systems: tuple[str, ...] = SYSTEM_ORDER):
        self.systems = tuple(systems)

    def assign(self, job: Job, index: int, cluster: ClusterState) -> str:
        rpv = getattr(job, self.rpv_attr)
        if rpv is None:
            raise ValueError(
                f"job {job.job_id} lacks {self.rpv_attr}; build the workload "
                "with a predictor attached"
            )
        rpv = np.asarray(rpv, dtype=np.float64)
        candidates = [s for s in self.systems if s in cluster.machines]
        if not candidates:
            raise RuntimeError("no strategy systems present in cluster")
        order = sorted(
            candidates, key=lambda s: rpv[self.systems.index(s)]
        )
        # Fastest machine with room now; if all full, the overall fastest
        # (Algorithm 2 lines 4-5: "if all s in M are full: return m").
        for name in order:
            machine = cluster[name]
            if machine.can_ever_fit(job.nodes_required) and machine.can_fit(
                job.nodes_required
            ):
                return name
        for name in order:
            if cluster[name].can_ever_fit(job.nodes_required):
                return name
        raise RuntimeError(
            f"job {job.job_id} ({job.nodes_required} nodes) fits no machine"
        )


class OracleStrategy(ModelBasedStrategy):
    """Model-based assignment using ground-truth RPVs (upper bound)."""

    name = "oracle"
    rpv_attr = "true_rpv"


class UncertaintyAwareStrategy(ModelBasedStrategy):
    """Model-based assignment that breaks near-ties by machine load.

    Extension beyond the paper: when the predicted fastest machine and
    a rival are within ``tie_margin`` (in RPV units — compare to the
    model's error), the prediction cannot reliably separate them, so
    the strategy prefers whichever near-tied machine currently has the
    most free nodes.  Jobs carrying a ``rpv_std`` entry in
    ``Job.extra``-style attributes could widen the margin further; the
    default uses a fixed margin.
    """

    name = "uncertainty"

    def __init__(self, tie_margin: float = 0.05,
                 systems: tuple[str, ...] = SYSTEM_ORDER):
        super().__init__(systems=systems)
        if tie_margin < 0:
            raise ValueError("tie_margin must be non-negative")
        self.tie_margin = tie_margin

    def assign(self, job: Job, index: int, cluster: ClusterState) -> str:
        rpv = getattr(job, self.rpv_attr)
        if rpv is None:
            raise ValueError(
                f"job {job.job_id} lacks {self.rpv_attr}; build the "
                "workload with a predictor attached"
            )
        rpv = np.asarray(rpv, dtype=np.float64)
        candidates = [s for s in self.systems if s in cluster.machines]
        fit = [s for s in candidates
               if cluster[s].can_ever_fit(job.nodes_required)]
        if not fit:
            raise RuntimeError(
                f"job {job.job_id} ({job.nodes_required} nodes) fits "
                "no machine"
            )
        best_value = min(rpv[self.systems.index(s)] for s in fit)
        tied = [
            s for s in fit
            if rpv[self.systems.index(s)] <= best_value + self.tie_margin
        ]
        with_room = [s for s in tied if cluster[s].can_fit(job.nodes_required)]
        if with_room:
            return max(with_room, key=lambda s: cluster[s].free_nodes)
        # No near-tied machine has room now: fall back to standard
        # model-based behavior (next-fastest with room, else fastest).
        return super().assign(job, index, cluster)


def strategy_by_name(name: str, seed: int = 0):
    """Factory for the four paper strategies plus the extensions."""
    table = {
        "round_robin": RoundRobinStrategy,
        "random": lambda: RandomStrategy(seed),
        "user_rr": UserRRStrategy,
        "model": ModelBasedStrategy,
        "oracle": OracleStrategy,
        "uncertainty": UncertaintyAwareStrategy,
    }
    if name not in table:
        raise KeyError(f"unknown strategy {name!r}; known: {sorted(table)}")
    return table[name]()
