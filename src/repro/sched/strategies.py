"""Machine-assignment strategies (Section VII).

All strategies implement ``assign(job, index, cluster) -> machine name``
— the paper's ``Machine(j, i, M)`` interface, where *index* is the count
of jobs started so far (Algorithm 1 increments it per ``Start``).

* :class:`RoundRobinStrategy` — rotate machines per started job.
* :class:`RandomStrategy` — uniform random machine, sticky per job.
* :class:`UserRRStrategy` — "mimics typical user behavior": GPU-enabled
  applications round-robin over GPU systems, CPU-only applications over
  CPU-only systems.
* :class:`ModelBasedStrategy` — Algorithm 2: pick the fastest machine
  by predicted RPV; if it has no free nodes, fall through to the next
  fastest, returning the overall fastest when everything is full (so
  the job waits for its best machine).  Note: the paper's pseudocode
  says ``argmax``; RPVs are time ratios so the fastest machine is the
  *argmin* (see :mod:`repro.core.rpv`).

Scheduler protocol
------------------
Beyond ``assign``, strategies may expose two optional attributes the
simulator consults:

* ``release(job_id)`` — called by the scheduler when a job will never
  be assigned again (it started, in fault-free mode; it finished or was
  permanently given up, in failure-aware mode).  Strategies use it to
  evict per-job cache entries, so sticky caches no longer grow without
  bound across a run (or across runs when an instance is reused).
* ``stateless_assign`` (bool) — declares that ``assign`` has no
  call-order-dependent side effects (any internal caching is a pure
  function of the job and cluster).  The scheduler then skips assign
  calls whose outcome provably cannot start a job — e.g. backfill
  candidates larger than every free block.  Strategies whose assign
  mutates shared state per call (:class:`RandomStrategy` advances an
  RNG, :class:`UserRRStrategy` advances a rotation) must leave this
  False so they see the exact same call sequence as the reference
  engine.
"""

from __future__ import annotations

import numpy as np

from repro.arch.machines import MACHINES, SYSTEM_ORDER
from repro.registry import Registry
from repro.sched.job import Job
from repro.sched.machines import ClusterState

__all__ = [
    "STRATEGIES",
    "RoundRobinStrategy",
    "RandomStrategy",
    "UserRRStrategy",
    "ModelBasedStrategy",
    "OracleStrategy",
    "UncertaintyAwareStrategy",
    "RiskAwareStrategy",
    "strategy_by_name",
]

#: Machine-assignment strategy classes, keyed by their short CLI names.
#: Classes register themselves with ``@STRATEGIES.register()`` (the name
#: comes from the class's ``name`` attribute); :func:`strategy_by_name`
#: instantiates them, passing ``seed`` to classes that declare
#: ``takes_seed``.
STRATEGIES: Registry = Registry("strategy")


@STRATEGIES.register()
class RoundRobinStrategy:
    """Rotate across all machines by started-job index."""

    name = "round_robin"
    stateless_assign = True  # pure function of (index, cluster)

    def assign(self, job: Job, index: int, cluster: ClusterState) -> str:
        names = cluster.names
        return names[index % len(names)]


@STRATEGIES.register()
class RandomStrategy:
    """Uniform random machine, deterministic and sticky per job id.

    Each first-time assignment draws from a shared RNG, so the call
    *order* determines the outcome — the scheduler must not elide calls
    (``stateless_assign`` stays False).  Entries are evicted via
    :meth:`release` once the scheduler guarantees the job will never be
    assigned again, bounding the cache to the in-flight job set.
    """

    name = "random"
    takes_seed = True

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._cache: dict[int, str] = {}

    def assign(self, job: Job, index: int, cluster: ClusterState) -> str:
        choice = self._cache.get(job.job_id)
        if choice is None:
            names = cluster.names
            choice = names[int(self._rng.integers(len(names)))]
            self._cache[job.job_id] = choice
        return choice

    def release(self, job_id: int) -> None:
        """Evict the sticky choice for a job that is permanently placed."""
        self._cache.pop(job_id, None)


@STRATEGIES.register()
class UserRRStrategy:
    """GPU apps round-robin over GPU systems, CPU apps over CPU systems.

    Like :class:`RandomStrategy`, first-time assignments advance shared
    rotation counters, so call order matters (``stateless_assign``
    False) and sticky entries are evicted via :meth:`release`.
    """

    name = "user_rr"

    def __init__(self) -> None:
        self._gpu_index = 0
        self._cpu_index = 0
        self._cache: dict[int, str] = {}

    def assign(self, job: Job, index: int, cluster: ClusterState) -> str:
        # Sticky per job so scheduler retries do not advance the rotation.
        choice = self._cache.get(job.job_id)
        if choice is not None:
            return choice
        gpu_names = [
            n for n in cluster.names
            if n in MACHINES and MACHINES[n].has_gpu
        ]
        cpu_names = [
            n for n in cluster.names
            if n not in MACHINES or not MACHINES[n].has_gpu
        ]
        if job.uses_gpu and gpu_names:
            choice = gpu_names[self._gpu_index % len(gpu_names)]
            self._gpu_index += 1
        else:
            pool = cpu_names or cluster.names
            choice = pool[self._cpu_index % len(pool)]
            self._cpu_index += 1
        self._cache[job.job_id] = choice
        return choice

    def release(self, job_id: int) -> None:
        """Evict the sticky choice for a job that is permanently placed."""
        self._cache.pop(job_id, None)


@STRATEGIES.register()
class ModelBasedStrategy:
    """Algorithm 2: fastest predicted machine with full-machine fallback.

    A job's machine-preference order (its RPV argsort restricted to the
    cluster's machines) is a pure function of the job, so it is computed
    once and memoized — the scheduler re-consults the strategy on every
    wake-up while a job waits for its best machine, which made the
    per-call sort the hottest code in the whole simulation.  The memo is
    keyed by job id, invalidated wholesale when a different cluster
    object shows up (candidate machines could differ), and evicted per
    job via :meth:`release`.
    """

    name = "model"
    #: Which RPV each job carries for this strategy.
    rpv_attr = "predicted_rpv"
    stateless_assign = True  # memo is a pure cache; no call-order state

    def __init__(self, systems: tuple[str, ...] = SYSTEM_ORDER):
        self.systems = tuple(systems)
        self._sys_index = {s: i for i, s in enumerate(self.systems)}
        self._cluster: ClusterState | None = None
        self._candidates: list[str] = []
        # job_id -> (preference-ordered MachineState list, rpv values)
        self._pref_cache: dict[int, tuple[list, dict[str, float]]] = {}

    def _preferences(
        self, job: Job, cluster: ClusterState
    ) -> tuple[list, dict[str, float]]:
        if cluster is not self._cluster:
            # New cluster object: the candidate set may differ, so every
            # memoized order is suspect.  Holding a strong reference
            # also guarantees `is` cannot alias a garbage-collected
            # cluster's recycled id.
            self._pref_cache.clear()
            self._cluster = cluster
            self._candidates = [
                s for s in self.systems if s in cluster.machines
            ]
        if not self._candidates:
            raise RuntimeError("no strategy systems present in cluster")
        cached = self._pref_cache.get(job.job_id)
        if cached is not None:
            return cached
        rpv = getattr(job, self.rpv_attr)
        if rpv is None:
            raise ValueError(
                f"job {job.job_id} lacks {self.rpv_attr}; build the workload "
                "with a predictor attached"
            )
        rpv = np.asarray(rpv, dtype=np.float64)
        idx = self._sys_index
        values = {s: float(rpv[idx[s]]) for s in self._candidates}
        order = sorted(self._candidates, key=values.__getitem__)
        machines = cluster.machines
        cached = ([machines[s] for s in order], values)
        self._pref_cache[job.job_id] = cached
        return cached

    def assign(self, job: Job, index: int, cluster: ClusterState) -> str:
        # Memo fast path inlined: the simulator re-consults the strategy
        # on every wake-up while a job waits, so the cache-hit lookup is
        # itself hot.  The identity check guards against a swapped
        # cluster exactly like :meth:`_preferences` does.
        if cluster is self._cluster:
            cached = self._pref_cache.get(job.job_id)
            if cached is None:
                cached = self._preferences(job, cluster)
        else:
            cached = self._preferences(job, cluster)
        order_machines = cached[0]
        need = job.nodes_required
        # Fastest machine with room now; if all full, the overall fastest
        # (Algorithm 2 lines 4-5: "if all s in M are full: return m").
        # can_ever_fit/can_fit are inlined: this is the single hottest
        # call site in the whole simulation.
        for machine in order_machines:
            if (machine.state == "up" and machine.free_nodes >= need
                    and machine.total_nodes - machine.offline_nodes >= need):
                return machine.name
        for machine in order_machines:
            if machine.total_nodes - machine.offline_nodes >= need:
                return machine.name
        raise RuntimeError(
            f"job {job.job_id} ({job.nodes_required} nodes) fits no machine"
        )

    def release(self, job_id: int) -> None:
        """Evict the memoized preference order for a finished job."""
        self._pref_cache.pop(job_id, None)


@STRATEGIES.register()
class OracleStrategy(ModelBasedStrategy):
    """Model-based assignment using ground-truth RPVs (upper bound)."""

    name = "oracle"
    rpv_attr = "true_rpv"


@STRATEGIES.register()
class UncertaintyAwareStrategy(ModelBasedStrategy):
    """Model-based assignment that breaks near-ties by machine load.

    Extension beyond the paper: when the predicted fastest machine and
    a rival are within ``tie_margin`` (in RPV units — compare to the
    model's error), the prediction cannot reliably separate them, so
    the strategy prefers whichever near-tied machine currently has the
    most free nodes.  Jobs carrying a ``rpv_std`` entry in
    ``Job.extra``-style attributes could widen the margin further; the
    default uses a fixed margin.
    """

    name = "uncertainty"

    def __init__(self, tie_margin: float = 0.05,
                 systems: tuple[str, ...] = SYSTEM_ORDER):
        super().__init__(systems=systems)
        if tie_margin < 0:
            raise ValueError("tie_margin must be non-negative")
        self.tie_margin = tie_margin

    def assign(self, job: Job, index: int, cluster: ClusterState) -> str:
        _, values = self._preferences(job, cluster)
        machines = cluster.machines
        need = job.nodes_required
        # Candidate iteration order (canonical system order, not RPV
        # order) matters: max() below returns the *first* maximal
        # element on free-node ties.
        fit = [s for s in self._candidates
               if machines[s].can_ever_fit(need)]
        if not fit:
            raise RuntimeError(
                f"job {job.job_id} ({job.nodes_required} nodes) fits "
                "no machine"
            )
        best_value = min(values[s] for s in fit)
        tied = [s for s in fit if values[s] <= best_value + self.tie_margin]
        with_room = [s for s in tied if machines[s].can_fit(need)]
        if with_room:
            return max(with_room, key=lambda s: machines[s].free_nodes)
        # No near-tied machine has room now: fall back to standard
        # model-based behavior (next-fastest with room, else fastest).
        return super().assign(job, index, cluster)


@STRATEGIES.register(aliases=("risk_aware",))
class RiskAwareStrategy(ModelBasedStrategy):
    """Model-based assignment whose trust scales with model confidence.

    The descriptor-conditioned predictor reports a per-system spread
    alongside each prediction (:attr:`~repro.sched.job.Job.rpv_std`).
    This strategy widens :class:`UncertaintyAwareStrategy`'s fixed tie
    margin by that spread: when the model is confident the behavior
    collapses to plain model-based assignment, and as predictive
    variance grows more machines count as "tied" and the choice falls
    back toward load balancing (the near-tied machine with the largest
    *free-node fraction*, so small machines are not starved the way a
    raw free-node count would).  Jobs without ``rpv_std`` get just the
    base margin, making the strategy safe on any workload.
    """

    name = "risk-aware"

    def __init__(self, base_margin: float = 0.02, risk_scale: float = 1.0,
                 systems: tuple[str, ...] = SYSTEM_ORDER):
        super().__init__(systems=systems)
        if base_margin < 0:
            raise ValueError("base_margin must be non-negative")
        if risk_scale < 0:
            raise ValueError("risk_scale must be non-negative")
        self.base_margin = base_margin
        self.risk_scale = risk_scale

    def _margin(self, job: Job, candidates: list[str]) -> float:
        margin = self.base_margin
        std = job.rpv_std
        if std is not None and self.risk_scale > 0:
            std = np.asarray(std, dtype=np.float64)
            idx = self._sys_index
            margin += self.risk_scale * float(
                np.mean([std[idx[s]] for s in candidates])
            )
        return margin

    def assign(self, job: Job, index: int, cluster: ClusterState) -> str:
        _, values = self._preferences(job, cluster)
        machines = cluster.machines
        need = job.nodes_required
        # Canonical-order candidate iteration, like UncertaintyAware:
        # max() keeps the first maximal element on exact fraction ties.
        fit = [s for s in self._candidates
               if machines[s].can_ever_fit(need)]
        if not fit:
            raise RuntimeError(
                f"job {job.job_id} ({job.nodes_required} nodes) fits "
                "no machine"
            )
        margin = self._margin(job, fit)
        best_value = min(values[s] for s in fit)
        tied = [s for s in fit if values[s] <= best_value + margin]
        with_room = [s for s in tied if machines[s].can_fit(need)]
        if with_room:
            return max(
                with_room,
                key=lambda s: machines[s].free_nodes
                / machines[s].total_nodes,
            )
        # Nothing near-tied has room: standard model-based fallback
        # (next-fastest with room, else overall fastest).
        return super().assign(job, index, cluster)


def strategy_by_name(name: str, seed: int = 0):
    """Instantiate a registered strategy by its short name.

    Raises :class:`repro.errors.UnknownNameError` with did-you-mean
    suggestions on a miss.  ``seed`` reaches strategies that declare
    ``takes_seed`` (currently :class:`RandomStrategy`).
    """
    cls = STRATEGIES[name]
    if getattr(cls, "takes_seed", False):
        return cls(seed)
    return cls()
