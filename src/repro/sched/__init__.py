"""Multi-resource scheduling simulation (Section VII).

Implements the paper's scheduling experiment: a global FCFS queue over
the four Table I machines with EASY backfilling (Algorithm 1), four
machine-assignment strategies (Round-Robin, Random, User+RR, and the
Model-based strategy of Algorithm 2), and the two evaluation metrics
(makespan and average bounded slowdown).

Job runtimes come from observed per-system times in the MP-HPC dataset,
exactly as the paper does ("We use the observed run times on each
machine from the data set to determine how long the job would run").
"""

from repro.sched.job import Job
from repro.sched.machines import ClusterState, MachineState
from repro.sched.metrics import (
    average_bounded_slowdown,
    average_wait_time,
    completed_fraction,
    degraded_prediction_fraction,
    goodput,
    makespan,
    per_machine_job_counts,
    resilience_summary,
    retry_count,
    wasted_node_seconds,
)
from repro.sched.policies import (
    POLICIES,
    FCFSPolicy,
    LJFPolicy,
    SJFPolicy,
    SmallestFirstPolicy,
    WidestFirstPolicy,
    policy_by_name,
)
from repro.sched.replicas import ReplicaSpec, run_replicas, schedule_digest
from repro.sched.simulator import ScheduleResult, Scheduler, SimStats
from repro.sched.strategies import (
    STRATEGIES,
    ModelBasedStrategy,
    OracleStrategy,
    RandomStrategy,
    RiskAwareStrategy,
    RoundRobinStrategy,
    UncertaintyAwareStrategy,
    UserRRStrategy,
    strategy_by_name,
)

__all__ = [
    "Job",
    "MachineState",
    "ClusterState",
    "Scheduler",
    "ScheduleResult",
    "SimStats",
    "ReplicaSpec",
    "run_replicas",
    "schedule_digest",
    "RoundRobinStrategy",
    "RandomStrategy",
    "UserRRStrategy",
    "ModelBasedStrategy",
    "OracleStrategy",
    "UncertaintyAwareStrategy",
    "RiskAwareStrategy",
    "strategy_by_name",
    "FCFSPolicy",
    "SJFPolicy",
    "LJFPolicy",
    "WidestFirstPolicy",
    "SmallestFirstPolicy",
    "policy_by_name",
    "POLICIES",
    "STRATEGIES",
    "makespan",
    "average_bounded_slowdown",
    "average_wait_time",
    "per_machine_job_counts",
    "goodput",
    "wasted_node_seconds",
    "retry_count",
    "completed_fraction",
    "degraded_prediction_fraction",
    "resilience_summary",
]
