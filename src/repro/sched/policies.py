"""Queue ordering policies — the R1/R2 parameters of Algorithm 1.

The paper's Algorithm 1 is parameterized by a queue ordering policy
``R1`` and a backfill ordering policy ``R2`` ("FCFS in our case" for
both).  This module implements the standard policy family so the
scheduler can be exercised beyond the paper's configuration:

* :class:`FCFSPolicy` — submission order (the paper's choice).
* :class:`SJFPolicy` — shortest job first (by the job's runtime on its
  fastest machine; favors turnaround).
* :class:`LJFPolicy` — longest job first (favors makespan when the
  tail is long).
* :class:`WidestFirstPolicy` — most nodes first (packs big jobs early).
* :class:`SmallestFirstPolicy` — fewest nodes first.

A policy is a key function over jobs; the scheduler sorts its queue by
``policy.key(job)`` with the submission-time/job-id pair as the final
tiebreaker, so every ordering is total and deterministic.
"""

from __future__ import annotations

from repro.registry import Registry
from repro.sched.job import Job

__all__ = [
    "POLICIES",
    "FCFSPolicy",
    "SJFPolicy",
    "LJFPolicy",
    "WidestFirstPolicy",
    "SmallestFirstPolicy",
    "policy_by_name",
]

#: Queue-ordering policy classes, keyed by their short names; classes
#: register themselves with ``@POLICIES.register()``.
POLICIES: Registry = Registry("policy")


@POLICIES.register()
class FCFSPolicy:
    """First-come-first-serve: order by (submit_time, job_id)."""

    name = "fcfs"

    def key(self, job: Job) -> tuple:
        return (job.submit_time, job.job_id)


@POLICIES.register()
class SJFPolicy:
    """Shortest job first, by best-case runtime across machines."""

    name = "sjf"

    def key(self, job: Job) -> tuple:
        return (min(job.runtimes.values()), job.submit_time, job.job_id)


@POLICIES.register()
class LJFPolicy:
    """Longest job first, by best-case runtime across machines."""

    name = "ljf"

    def key(self, job: Job) -> tuple:
        return (-min(job.runtimes.values()), job.submit_time, job.job_id)


@POLICIES.register()
class WidestFirstPolicy:
    """Jobs needing the most nodes first."""

    name = "widest"

    def key(self, job: Job) -> tuple:
        return (-job.nodes_required, job.submit_time, job.job_id)


@POLICIES.register()
class SmallestFirstPolicy:
    """Jobs needing the fewest nodes first."""

    name = "smallest"

    def key(self, job: Job) -> tuple:
        return (job.nodes_required, job.submit_time, job.job_id)


def policy_by_name(name: str):
    """Instantiate a registered queue policy by its short name.

    Raises :class:`repro.errors.UnknownNameError` with did-you-mean
    suggestions on a miss.
    """
    return POLICIES[name]()
