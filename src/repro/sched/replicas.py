"""Sharded simulation replicas with a bit-identical ordered merge.

Fig. 7/8-style experiments run the *same* workload through several
independent simulations (one per assignment strategy, or one per seed
in a robustness sweep).  Each replica is a pure function of
``(jobs, spec)`` — the simulator mutates only its own cluster and
strategy — so the replicas can run on :mod:`repro.parallel` worker
processes and be reassembled in spec order with results identical to a
sequential loop, bit for bit:

* every worker rebuilds its strategy and cluster from the spec (no
  shared mutable state crosses the process boundary);
* :func:`repro.parallel.executor.run_tasks` returns results in task
  submission order regardless of completion order;
* :class:`~repro.sched.simulator.ScheduleResult` round-trips through
  pickle exactly (int/float64 arrays and strings).

:func:`schedule_digest` condenses a result to a SHA-256 over its
placement-relevant fields; the golden test pins
``run_replicas(workers=k) == run_replicas(workers=1)`` through it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.parallel.executor import run_tasks
from repro.sched.machines import ClusterState
from repro.sched.policies import policy_by_name
from repro.sched.simulator import ScheduleResult, Scheduler
from repro.sched.strategies import strategy_by_name

__all__ = ["ReplicaSpec", "run_replicas", "schedule_digest"]


@dataclass(frozen=True)
class ReplicaSpec:
    """One replica: everything needed to rebuild its simulator.

    Plain data only (it crosses the pickle channel to workers):
    strategy/policy *names*, not instances.
    """

    strategy: str
    seed: int = 0
    #: Machine -> node count; None uses the Table I cluster.
    node_counts: dict[str, int] | None = None
    queue_policy: str = "fcfs"
    backfill_policy: str = "fcfs"
    #: Requested-walltime factor forwarded to the Scheduler.
    walltime_factor: float = 1.0
    #: Free-form tag carried through to the result's ``extra``.
    label: str = ""

    def build_scheduler(self) -> Scheduler:
        cluster = ClusterState(
            dict(self.node_counts) if self.node_counts else None
        )
        return Scheduler(
            strategy_by_name(self.strategy, seed=self.seed),
            cluster,
            queue_policy=policy_by_name(self.queue_policy),
            backfill_policy=policy_by_name(self.backfill_policy),
            walltime_factor=self.walltime_factor,
        )


def _run_replica(task) -> ScheduleResult:
    """Worker entry point (module-level: pools pickle it by reference)."""
    jobs, spec = task
    result = spec.build_scheduler().run(jobs)
    if spec.label:
        result.extra["replica_label"] = spec.label
    return result


def run_replicas(
    jobs,
    specs: list[ReplicaSpec],
    workers: int | None = 1,
) -> list[ScheduleResult]:
    """Run every replica over *jobs*; results in spec order.

    ``workers=1`` runs inline (no pool, no pickling); any other value
    shards replicas across processes.  Output is independent of
    *workers* — same objects' values, same order — so parallelism is a
    pure wall-time knob; pin it with :func:`schedule_digest` equality.

    The job list is shipped to each worker by pickle; replicas are
    whole simulations, so the one-time shipping cost is noise against
    the simulation itself.
    """
    job_list = list(jobs)
    tasks = [(job_list, spec) for spec in specs]
    return run_tasks(_run_replica, tasks, jobs=workers)


def schedule_digest(result: ScheduleResult) -> str:
    """SHA-256 over a result's placement-relevant content.

    Covers job ids, machine assignments, submit/start/end times, the
    strategy name, and the backfill count — everything the equivalence
    suite asserts on, in one comparable string.  Float times hash via
    their exact IEEE-754 bytes, so two digests agree only when the
    schedules are bit-identical.
    """
    h = hashlib.sha256()
    h.update(result.strategy_name.encode())
    h.update(str(result.backfilled).encode())
    h.update("\x00".join(result.machines).encode())
    for arr in (result.job_ids, result.submit_times,
                result.start_times, result.end_times):
        h.update(arr.tobytes())
    return h.hexdigest()
