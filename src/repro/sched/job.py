"""Job model for the scheduling simulation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Job"]


@dataclass
class Job:
    """One schedulable job sampled from the MP-HPC dataset.

    Attributes
    ----------
    job_id:
        Unique id (also the FCFS tiebreaker).
    app:
        Application name (drives the User+RR strategy).
    uses_gpu:
        Whether the application has GPU support.
    nodes_required:
        Node allocation (1 for the 1-core/1-node configurations, 2 for
        the 2-node configuration).
    runtimes:
        Observed execution time (seconds) per system name; the simulator
        uses these both as actual runtimes and as the (perfect) walltime
        estimates EASY backfilling needs.
    submit_time:
        Arrival time in seconds.
    predicted_rpv:
        Model-predicted RPV over systems (time ratios, smaller=faster)
        in canonical system order; required by the Model-based strategy.
    true_rpv:
        Ground-truth RPV, kept for oracle comparisons.
    rpv_std:
        Per-system predictive uncertainty aligned with
        ``predicted_rpv`` (ensemble spread or quantile half-width);
        optional — only workloads built with an uncertainty-capable
        predictor carry it, and only the risk-aware strategy reads it.
    """

    job_id: int
    app: str
    uses_gpu: bool
    nodes_required: int
    runtimes: dict[str, float]
    submit_time: float = 0.0
    predicted_rpv: np.ndarray | None = None
    true_rpv: np.ndarray | None = field(default=None, repr=False)
    rpv_std: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.nodes_required < 1:
            raise ValueError("nodes_required must be >= 1")
        if not self.runtimes:
            raise ValueError("runtimes must not be empty")
        for system, t in self.runtimes.items():
            if t <= 0:
                raise ValueError(f"non-positive runtime on {system}")
        if self.submit_time < 0:
            raise ValueError("submit_time must be >= 0")

    def runtime_on(self, system: str) -> float:
        try:
            return self.runtimes[system]
        except KeyError:
            raise KeyError(
                f"job {self.job_id} has no runtime for {system!r}; "
                f"known: {sorted(self.runtimes)}"
            ) from None
